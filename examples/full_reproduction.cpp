// full_reproduction — one binary, the whole paper: runs the campaign and
// writes a self-contained markdown report (plus SVG figures) with every
// reproduced figure's data next to the paper's claims. The artefact a
// reviewer would ask for.
//
// Usage:  full_reproduction [days] [output-dir]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "shears.hpp"

namespace {

using namespace shears;

std::string md_table(report::TextTable& table) {
  // Render the aligned text table inside a fenced block — keeps the
  // report dependency-free.
  return "```\n" + table.to_string() + "```\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 30;
  const std::string dir = argc > 2 ? argv[2] : ".";

  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = days > 0 ? days : 30;
  const atlas::MeasurementDataset dataset =
      atlas::Campaign(fleet, cloud, model, config).run();

  std::ostringstream md;
  md << "# latency-shears — full reproduction report\n\n"
     << "Campaign: " << fleet.size() << " probes / "
     << fleet.country_count() << " countries, " << cloud.size()
     << " regions / " << cloud.hosting_countries().size() << " countries, "
     << config.duration_days << " days, " << dataset.size()
     << " ping bursts (loss "
     << report::fmt_percent(dataset.loss_fraction()) << ").\n\n";

  // ---- Fig. 4 ----------------------------------------------------------
  const auto rows = core::country_min_latency(dataset);
  const auto bands = core::band_country_latencies(rows);
  const auto coverage = core::population_coverage(rows);
  md << "## Fig. 4 — country minimum latency\n\n";
  {
    report::TextTable t;
    t.set_header({"band", "countries", "paper"});
    t.add_row({"< 10 ms", std::to_string(bands.under_10), "32"});
    t.add_row({"10-20 ms", std::to_string(bands.from_10_to_20), "21"});
    t.add_row({">= 100 ms", std::to_string(bands.over_100), "~16"});
    md << md_table(t);
  }
  md << "\nPopulation-weighted: " << report::fmt_percent(coverage.under_pl)
     << " of the world under PL, " << report::fmt_percent(coverage.under_hrt)
     << " under HRT (the abstract's \"majority of the world's "
        "population\").\n\n";

  // ---- Fig. 5 / Fig. 6 -------------------------------------------------
  const auto mins = core::min_rtt_by_continent(dataset);
  const auto samples = core::best_region_samples_by_continent(dataset);
  md << "## Fig. 5 — per-probe minimum CDFs\n\n";
  {
    report::TextTable t;
    t.set_header({"continent", "probes", "F(MTP)", "F(50ms)", "F(PL)"});
    for (const geo::Continent c : geo::kAllContinents) {
      const auto& sample = mins[geo::index_of(c)];
      if (sample.empty()) continue;
      const stats::Ecdf ecdf(sample);
      t.add_row({std::string(to_string(c)), std::to_string(sample.size()),
                 report::fmt_percent(ecdf.fraction_at_or_below(20.0)),
                 report::fmt_percent(ecdf.fraction_at_or_below(50.0)),
                 report::fmt_percent(ecdf.fraction_at_or_below(100.0))});
    }
    md << md_table(t);
  }
  md << "\nPaper: ~80% EU/NA under MTP; Oceania ~all under 50 ms; ~75% of "
        "Africa+LatAm under PL.\n\n";

  md << "## Fig. 6 — all measurements to the closest DC\n\n";
  std::vector<report::Series> fig6_series;
  {
    report::TextTable t;
    t.set_header({"continent", "samples", "p25", "median", "F(PL)"});
    for (const geo::Continent c : geo::kAllContinents) {
      const auto& sample = samples[geo::index_of(c)];
      if (sample.empty()) continue;
      const stats::Ecdf ecdf(sample);
      t.add_row({std::string(to_string(c)), std::to_string(sample.size()),
                 report::fmt(ecdf.percentile(25.0), 1),
                 report::fmt(ecdf.median(), 1),
                 report::fmt_percent(ecdf.fraction_at_or_below(100.0))});
      report::Series s;
      s.name = std::string(to_code(c));
      s.points = ecdf.curve(std::size_t{160});
      fig6_series.push_back(std::move(s));
    }
    md << md_table(t);
  }

  report::SvgPlotOptions svg_options;
  svg_options.title = "Fig. 6 — CDF of all pings to each probe's closest DC";
  svg_options.log_x = true;
  svg_options.x_min = 1.0;
  svg_options.x_max = 300.0;
  const std::string svg_path = dir + "/reproduction_fig6.svg";
  if (report::write_text_file(
          svg_path,
          render_svg_cdf(fig6_series,
                         {{"MTP", apps::kMotionToPhotonMs},
                          {"PL", apps::kPerceivableLatencyMs},
                          {"HRT", apps::kHumanReactionTimeMs}},
                         svg_options))) {
    md << "\n![Fig. 6](reproduction_fig6.svg)\n\n";
  }

  // ---- Fig. 7 ----------------------------------------------------------
  const core::AccessComparison cmp = core::compare_access(dataset);
  const stats::RankSumResult mw =
      stats::mann_whitney_u(cmp.wireless, cmp.wired);
  md << "## Fig. 7 — wired vs wireless\n\n"
     << "wireless/wired median ratio **"
     << report::fmt(cmp.median_ratio, 2) << "x** (paper ~2.5x), added "
     << report::fmt(cmp.added_latency_ms, 1)
     << " ms (paper 10-40 ms); Mann-Whitney effect size "
     << report::fmt(mw.effect_size, 2) << ", p "
     << (mw.p_two_sided < 1e-12 ? "< 1e-12" : report::fmt(mw.p_two_sided, 6))
     << ".\n\n";

  // ---- Fig. 8 ----------------------------------------------------------
  const double eu_median =
      stats::Ecdf(samples[geo::index_of(geo::Continent::kEurope)]).median();
  const auto fz_rows =
      core::classify_catalog(apps::application_catalog(), eu_median);
  const auto market = core::market_share_summary(apps::application_catalog());
  md << "## Fig. 8 — feasibility zone\n\n";
  {
    report::TextTable t;
    t.set_header({"application", "in FZ", "verdict vs EU cloud"});
    for (const core::FeasibilityRow& row : fz_rows) {
      t.add_row({std::string(row.app->name), row.in_zone ? "YES" : "no",
                 std::string(to_string(row.verdict))});
    }
    md << md_table(t);
  }
  md << "\nFZ market $" << report::fmt(market.in_zone_busd, 0)
     << "B vs outside $" << report::fmt(market.out_of_zone_busd, 0)
     << "B — the zone \"pales\", as §5 concludes.\n";

  const std::string report_path = dir + "/REPRODUCTION.md";
  std::ofstream out(report_path);
  if (!out) {
    std::cerr << "cannot write " << report_path << '\n';
    return 1;
  }
  out << md.str();
  out.flush();
  if (!out) {
    std::cerr << "write to " << report_path << " failed (disk full?)\n";
    return 1;
  }
  std::cout << "wrote " << report_path << " and " << svg_path << '\n';
  return 0;
}
