// country_report — the full latency-shears profile for one country: cloud
// proximity by access technology, path decomposition, per-application
// verdicts, and edge-deployment economics. The report a regulator or ISP
// would pull before deciding whether edge investment makes sense there.
//
// Usage:  country_report [iso2]
#include <iostream>
#include <string>

#include "shears.hpp"

namespace {

using namespace shears;

const topology::CloudRegion* nearest_in_scope(
    const geo::Country& country, const net::Endpoint& user,
    const net::LatencyModel& model, const topology::CloudRegistry& cloud) {
  const topology::CloudRegion* best = nullptr;
  double best_rtt = 0.0;
  for (const topology::CloudRegion* region : cloud.regions()) {
    const auto rc = topology::region_continent(*region);
    if (rc != country.continent &&
        geo::measurement_fallback(country.continent) != rc) {
      continue;
    }
    const double rtt = model.baseline_rtt_ms(user, *region);
    if (best == nullptr || rtt < best_rtt) {
      best = region;
      best_rtt = rtt;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string iso2 = argc > 1 ? argv[1] : "KE";
  const geo::Country* country = geo::find_country(iso2);
  if (country == nullptr) {
    std::cerr << "unknown country code '" << iso2 << "'\n";
    return 1;
  }
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();

  std::cout << "# Latency-shears profile: " << country->name << "\n\n"
            << "continent " << to_string(country->continent)
            << ", connectivity tier " << static_cast<int>(country->tier)
            << ", population " << report::fmt(country->population_m, 1)
            << "M\n\n";

  // Cloud proximity per access technology.
  std::cout << "## Cloud proximity\n\n";
  report::TextTable proximity;
  proximity.set_header({"access", "nearest region", "expected RTT",
                        "regime"});
  for (const net::AccessTechnology access : net::kAllAccessTechnologies) {
    const net::Endpoint user{country->site, country->tier, access};
    const topology::CloudRegion* best =
        nearest_in_scope(*country, user, model, cloud);
    if (best == nullptr) continue;
    const double rtt = model.baseline_rtt_ms(user, *best);
    proximity.add_row({
        std::string(to_string(access)),
        std::string(best->city) + " (" + std::string(to_string(best->provider)) +
            ")",
        report::fmt(rtt, 1) + " ms",
        std::string(to_string(apps::classify_latency(rtt))),
    });
  }
  std::cout << proximity.to_string() << '\n';

  // Path decomposition for the representative wired user.
  const net::Endpoint wired{country->site, country->tier,
                            net::AccessTechnology::kDsl};
  const topology::CloudRegion* best =
      nearest_in_scope(*country, wired, model, cloud);
  std::cout << "## Where is the delay? (DSL user -> " << best->city << ")\n\n";
  const net::SegmentBreakdown breakdown =
      net::decompose_path(model, wired, *best);
  for (std::size_t i = 0; i < net::kPathSegmentCount; ++i) {
    const auto segment = static_cast<net::PathSegment>(i);
    std::cout << "- " << to_string(segment) << ": "
              << report::fmt(breakdown[segment], 1) << " ms ("
              << report::fmt_percent(breakdown.share(segment), 0) << ")\n";
  }

  // Application verdicts against the wired cloud experience.
  const double cloud_rtt = model.baseline_rtt_ms(wired, *best) * 1.2;
  std::cout << "\n## Application verdicts (cloud RTT ~"
            << report::fmt(cloud_rtt, 0) << " ms)\n\n";
  report::TextTable verdicts;
  verdicts.set_header({"application", "verdict"});
  for (const apps::Application& app : apps::application_catalog()) {
    verdicts.add_row({std::string(app.name),
                      std::string(to_string(core::classify(app, cloud_rtt)))});
  }
  std::cout << verdicts.to_string() << '\n';

  // Edge economics.
  std::cout << "## Edge deployment economics\n\n";
  const edge::EdgeGain lte_gain =
      edge::analyze_gain(model, *country, net::AccessTechnology::kLte, cloud,
                         edge::EdgePlacement::kBasestation);
  std::cout << "basestation edge vs cloud for LTE users: "
            << report::fmt(lte_gain.edge_rtt_ms, 1) << " vs "
            << report::fmt(lte_gain.cloud_rtt_ms, 1) << " ms (gain "
            << report::fmt_percent(lte_gain.relative_gain, 0) << ")\n";
  for (const double target : {20.0, 50.0, 100.0}) {
    const auto estimates = edge::sites_for_target(
        model, target, net::AccessTechnology::kFibre,
        edge::EdgePlacement::kCentralOffice);
    for (const edge::SiteEstimate& e : estimates) {
      if (e.country != country) continue;
      std::cout << "fibre users under " << report::fmt(target, 0) << " ms: "
                << (e.feasible
                        ? std::to_string(e.sites) + " edge site(s), radius " +
                              report::fmt(e.radius_km, 0) + " km"
                        : std::string("infeasible (access link too slow)"))
                << '\n';
    }
  }
  return 0;
}
