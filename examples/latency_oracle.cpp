// latency_oracle — the serving layer end to end:
//  1. run a campaign that streams its records straight into a columnar
//     store (atlas::MeasurementSink),
//  2. stand up the batched latency oracle over it (spatial indexes over
//     probes and cloud regions),
//  3. ask the paper's questions interactively: best provider RTT from a
//     coordinate over LTE, is cloud gaming feasible from a country, and
//     the top regions within a latency budget.
//
// Build & run:  ./build/examples/latency_oracle [days]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  // 1. Campaign with a live serving store attached: every run publishes
  //    its burst records into the store, no rebuild.
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel internet;
  atlas::CampaignConfig schedule;
  schedule.duration_days = argc > 1 ? std::atoi(argv[1]) : 7;

  serve::ColumnarStore store(&fleet, &cloud);
  obs::MetricsRegistry metrics;
  store.attach_metrics(&metrics);

  atlas::Campaign campaign(fleet, cloud, internet, schedule);
  campaign.attach_sink(&store);
  const atlas::MeasurementDataset dataset = campaign.run();
  store.refresh();
  std::cout << "store: " << store.rows_stored() << " rows in "
            << store.shard_count() << " (country, access) shards ("
            << store.rows_dropped() << " lost/privileged rows dropped)\n";

  // 2. The oracle: k-d tree spatial indexes over probes and regions,
  //    batched answers via the pre-aggregated shard summaries.
  serve::Oracle oracle(&store);
  oracle.attach_metrics(&metrics);

  // 3a. Best observed cloud RTT over LTE near Nairobi.
  serve::Query best;
  best.kind = serve::QueryKind::kBestRtt;
  best.where = {-1.29, 36.82};
  best.any_access = false;
  best.access = net::AccessTechnology::kLte;
  serve::Answer a = oracle.answer_one(best);
  std::cout << std::fixed << std::setprecision(1);
  if (a.ok) {
    std::cout << "best LTE RTT near Nairobi: " << a.best_ms << " ms to "
              << a.best_region->region_id << " ("
              << to_string(a.best_region->provider)
              << "), median " << a.median_ms << " / p95 " << a.p95_ms
              << " ms\n";
  }

  // 3b. The §5 verdict: is cloud gaming feasible from Germany today?
  serve::Query feas;
  feas.kind = serve::QueryKind::kFeasibility;
  feas.country_iso2 = "DE";
  feas.app_id = "cloud-gaming";
  a = oracle.answer_one(feas);
  if (a.ok) {
    std::cout << "cloud gaming from DE (best " << a.best_ms
              << " ms): " << to_string(a.verdict) << '\n';
  }

  // 3c. Top regions within a 30 ms budget from the US, any access.
  serve::Query topk;
  topk.kind = serve::QueryKind::kTopK;
  topk.country_iso2 = "US";
  topk.budget_ms = 30.0;
  topk.k = 5;
  a = oracle.answer_one(topk);
  std::cout << "US regions under 30 ms: " << a.regions.size() << '\n';
  for (const serve::RegionAnswer& r : a.regions) {
    std::cout << "  " << r.rtt_ms << " ms  " << r.region->region_id << " ("
              << to_string(r.region->provider) << ")\n";
  }

  // And the geodesic side: nearest datacenters to a coordinate.
  const auto nearest = oracle.nearest_regions({35.68, 139.69}, 3);  // Tokyo
  std::cout << "nearest regions to Tokyo:\n";
  for (const geo::SpatialHit& hit : nearest) {
    std::cout << "  " << std::setw(6) << hit.distance_km << " km  "
              << cloud.regions()[hit.id]->region_id << '\n';
  }

  std::cout << "\nserve.* metrics: queries="
            << metrics.counter("serve.queries").value()
            << ", answers_ok=" << metrics.counter("serve.answers_ok").value()
            << ", store rows=" << metrics.counter("serve.store.rows").value()
            << '\n';
  (void)dataset;
  return 0;
}
