// cloud_expansion_study — replay the decade that undermined the edge's
// latency argument: how each year's datacenter build-out moved countries
// under the perception thresholds, and what a 5G-grade last mile would
// change on top.
//
// Usage:  cloud_expansion_study [first_year] [last_year]
#include <cstdlib>
#include <iostream>

#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  int first = argc > 1 ? std::atoi(argv[1]) : 2008;
  int last = argc > 2 ? std::atoi(argv[2]) : 2020;
  if (first < 2004) first = 2004;
  if (last < first) last = first;

  const net::LatencyModel internet;
  std::vector<int> years;
  for (int y = first; y <= last; y += 2) years.push_back(y);
  if (years.back() != last) years.push_back(last);

  std::cout << "Cloud expansion study, " << first << "-" << last << "\n\n";
  report::TextTable table;
  table.set_header({"year", "regions", "countries <20ms", "countries <100ms",
                    "median best RTT"});
  const auto points = core::expansion_sweep(years, internet);
  for (const core::ExpansionPoint& p : points) {
    table.add_row({std::to_string(p.year), std::to_string(p.region_count),
                   std::to_string(p.countries_under_20ms),
                   std::to_string(p.countries_under_100ms),
                   report::fmt(p.median_best_rtt_ms, 1) + " ms"});
  }
  std::cout << table.to_string() << '\n';

  // What would the same analysis look like if 5G delivered? Scale the
  // wireless medians down and compare a wireless user's proximity to the
  // 2020 cloud in three representative countries.
  std::cout << "wireless users vs the " << last << " cloud, status quo vs "
               "a delivered-5G last mile:\n";
  const auto cloud = topology::CloudRegistry::footprint_as_of(last);
  net::LatencyModelConfig promised;
  promised.wireless_latency_scale = 0.1;
  const net::LatencyModel internet_5g(promised);
  report::TextTable wireless_table;
  wireless_table.set_header({"country", "LTE today", "with 5G-grade access"});
  for (const char* iso2 : {"DE", "US", "IN", "NG"}) {
    const geo::Country* c = geo::find_country(iso2);
    const net::Endpoint user{c->site, c->tier, net::AccessTechnology::kLte};
    double today = 1e9;
    double promised_rtt = 1e9;
    for (const topology::CloudRegion* r : cloud.regions()) {
      today = std::min(today, internet.baseline_rtt_ms(user, *r));
      promised_rtt = std::min(promised_rtt, internet_5g.baseline_rtt_ms(user, *r));
    }
    wireless_table.add_row({std::string(c->name),
                            report::fmt(today, 1) + " ms",
                            report::fmt(promised_rtt, 1) + " ms"});
  }
  std::cout << wireless_table.to_string() << '\n';
  std::cout << "even a delivered 5G promise leaves the wide-area path — "
               "which the cloud build-out, not the edge, has been fixing\n";
  return 0;
}
