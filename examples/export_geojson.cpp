// export_geojson — writes the Fig. 4 country-minimum map as GeoJSON
// (one Point feature per country with its band), plus the regions layer;
// drop it on any GIS tool to get the paper's map.
//
// Usage:  export_geojson [days] [output.geojson]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "shears.hpp"

namespace {

const char* band_of(double rtt_ms) {
  if (rtt_ms < 10.0) return "<10ms";
  if (rtt_ms < 20.0) return "10-20ms";
  if (rtt_ms < 50.0) return "20-50ms";
  if (rtt_ms < 100.0) return "50-100ms";
  return ">=100ms";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shears;

  const int days = argc > 1 ? std::atoi(argv[1]) : 30;
  const std::string path = argc > 2 ? argv[2] : "fig4_map.geojson";

  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = days > 0 ? days : 30;
  const auto dataset = atlas::Campaign(fleet, cloud, model, config).run();
  const auto rows = core::country_min_latency(dataset);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  out << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  bool first = true;
  for (const core::CountryMinLatency& row : rows) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        << "\"coordinates\":[" << row.country->site.lon_deg << ','
        << row.country->site.lat_deg << "]},\"properties\":{"
        << "\"kind\":\"country\",\"iso2\":\"" << row.country->iso2
        << "\",\"name\":\"" << row.country->name << "\",\"min_rtt_ms\":"
        << row.min_rtt_ms << ",\"band\":\"" << band_of(row.min_rtt_ms)
        << "\",\"best_region\":\"" << row.best_region->city << "\"}}";
  }
  for (const topology::CloudRegion* region : cloud.regions()) {
    out << ",\n{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        << "\"coordinates\":[" << region->location.lon_deg << ','
        << region->location.lat_deg << "]},\"properties\":{"
        << "\"kind\":\"region\",\"provider\":\""
        << to_string(region->provider) << "\",\"id\":\"" << region->region_id
        << "\"}}";
  }
  out << "\n]}\n";
  out.flush();
  if (!out) {
    std::cerr << "write to " << path << " failed (disk full?)\n";
    return 1;
  }
  std::cout << "wrote " << rows.size() << " country features and "
            << cloud.size() << " region features to " << path << '\n';
  return 0;
}
