#!/usr/bin/env sh
# Rebuilds the Release tree and records the perf-regression baseline in
# one command:
#
#   bench/run_benches.sh [build-dir] [days]
#
# Runs the campaign cache comparison plus the telemetry overhead gate
# (bench_micro_campaign) and the burst kernel comparison
# (bench_micro_latency_model) at the paper's nine-month scale (270 days by
# default) and merges both binaries' numbers into BENCH_campaign.json in
# the current directory — including campaign_telemetry_overhead_pct, the
# instrumented-vs-plain throughput delta. Override the output file with
# SHEARS_BENCH_JSON, the pair count with SHEARS_BENCH_REPEATS, the
# telemetry gate with SHEARS_TELEMETRY_GATE_PCT (default 2%), and the
# snapshot warm-start gate with SHEARS_SNAPSHOT_GATE (default 10x), and
# the optimizer incremental-scoring gate with SHEARS_OPT_GATE (default
# 10x).
# Exits non-zero if the cached and uncached datasets ever diverge, if an
# attached MetricsRegistry perturbs the dataset, or if telemetry costs
# more than the gate allows.
set -eu

BUILD_DIR="${1:-build-bench}"
DAYS="${2:-270}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JSON="${SHEARS_BENCH_JSON:-BENCH_campaign.json}"
JSON_SERVE="${SHEARS_BENCH_JSON_SERVE:-results/BENCH_serve.json}"

cmake -B "$BUILD_DIR" -S "$SOURCE_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_micro_campaign \
  bench_micro_latency_model bench_serve bench_front bench_store_scan \
  bench_snapshot bench_opt >/dev/null

rm -f "$JSON"
echo "== burst kernel comparison (batched acceptance bar: 3x) =="
SHEARS_BENCH_JSON="$JSON" SHEARS_BATCHED_GATE="${SHEARS_BATCHED_GATE:-3}" \
  "$BUILD_DIR/bench/bench_micro_latency_model" --benchmark_filter=NONE
echo
echo "== store scan kernels ($DAYS days) =="
SHEARS_BENCH_DAYS="$DAYS" SHEARS_BENCH_JSON="$JSON" \
  SHEARS_SCAN_GATE="${SHEARS_SCAN_GATE:-1.2}" \
  "$BUILD_DIR/bench/bench_store_scan"
echo
echo "== campaign cache comparison + telemetry overhead ($DAYS days) =="
SHEARS_BENCH_DAYS="$DAYS" SHEARS_BENCH_JSON="$JSON" \
  "$BUILD_DIR/bench/bench_micro_campaign" --benchmark_filter=NONE
echo
echo "== serving layer: store build + oracle vs full scan ($DAYS days) =="
mkdir -p "$(dirname "$JSON_SERVE")"
rm -f "$JSON_SERVE"
SHEARS_BENCH_DAYS="$DAYS" SHEARS_BENCH_JSON="$JSON_SERVE" \
  "$BUILD_DIR/bench/bench_serve"
echo
echo "== serving front-end: overload session, qps under SLO ($DAYS days) =="
SHEARS_BENCH_DAYS="$DAYS" SHEARS_BENCH_JSON="$JSON_SERVE" \
  "$BUILD_DIR/bench/bench_front"
echo
echo "== store snapshot: warm start vs campaign replay ($DAYS days) =="
SHEARS_BENCH_DAYS="$DAYS" SHEARS_BENCH_JSON="$JSON_SERVE" \
  SHEARS_SNAPSHOT_GATE="${SHEARS_SNAPSHOT_GATE:-10}" \
  "$BUILD_DIR/bench/bench_snapshot"
echo
echo "== footprint optimizer: incremental scoring vs rebuild ($DAYS days) =="
SHEARS_BENCH_DAYS="$DAYS" SHEARS_BENCH_JSON="$JSON_SERVE" \
  SHEARS_OPT_GATE="${SHEARS_OPT_GATE:-10}" \
  "$BUILD_DIR/bench/bench_opt"
echo
echo "recorded: $JSON $JSON_SERVE"
