// Ablation A5 — what would an edge deployment actually buy? Reproduces
// the Hadzic/Cartas reality check (§5) and the economies-of-scale
// argument: per-user latency gain of a basestation-grade edge over the
// nearest cloud region, and the global site count needed to hit latency
// targets.
#include <iostream>

#include "edge/deployment.hpp"
#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Ablation A5: edge-deployment gains and costs\n"
            << "paper shape targets: basestation edge gains little for "
               "wireless users in served regions (Hadzic/Cartas); gains are "
               "real in under-served regions; MTP over LTE is infeasible at "
               "any site density; wired targets need >> 101 sites\n\n";

  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();

  report::TextTable gains;
  gains.set_header({"user", "edge RTT", "cloud RTT", "gain", "relative"});
  struct Scenario {
    const char* iso2;
    net::AccessTechnology access;
  };
  for (const Scenario& s : {Scenario{"DE", net::AccessTechnology::kLte},
                            Scenario{"DE", net::AccessTechnology::kFibre},
                            Scenario{"US", net::AccessTechnology::kLte},
                            Scenario{"BR", net::AccessTechnology::kDsl},
                            Scenario{"KE", net::AccessTechnology::kLte},
                            Scenario{"TD", net::AccessTechnology::kEthernet}}) {
    const geo::Country* country = geo::find_country(s.iso2);
    const edge::EdgeGain gain =
        edge::analyze_gain(model, *country, s.access, cloud,
                           edge::EdgePlacement::kBasestation);
    gains.add_row({
        std::string(country->name) + ", " + std::string(to_string(s.access)),
        report::fmt(gain.edge_rtt_ms, 1),
        report::fmt(gain.cloud_rtt_ms, 1),
        report::fmt(gain.absolute_gain_ms, 1),
        report::fmt_percent(gain.relative_gain, 0),
    });
  }
  std::cout << gains.to_string() << '\n';

  std::cout << "global edge sites needed per latency target (vs 101 cloud "
               "regions today):\n";
  report::TextTable sites;
  sites.set_header({"target", "access", "placement", "feasible countries",
                    "total sites"});
  struct Sweep {
    double target;
    net::AccessTechnology access;
    edge::EdgePlacement placement;
  };
  for (const Sweep& sweep :
       {Sweep{20.0, net::AccessTechnology::kLte,
              edge::EdgePlacement::kBasestation},
        Sweep{50.0, net::AccessTechnology::kLte,
              edge::EdgePlacement::kBasestation},
        Sweep{10.0, net::AccessTechnology::kFibre,
              edge::EdgePlacement::kCentralOffice},
        Sweep{20.0, net::AccessTechnology::kFibre,
              edge::EdgePlacement::kCentralOffice},
        Sweep{50.0, net::AccessTechnology::kFibre,
              edge::EdgePlacement::kMetroPop}}) {
    const auto estimates = edge::sites_for_target(model, sweep.target,
                                                  sweep.access, sweep.placement);
    std::size_t feasible = 0;
    for (const edge::SiteEstimate& e : estimates) feasible += e.feasible;
    const auto total = edge::total_sites(estimates);
    sites.add_row({
        report::fmt(sweep.target, 0) + " ms",
        std::string(to_string(sweep.access)),
        std::string(to_string(sweep.placement)),
        std::to_string(feasible) + "/" + std::to_string(estimates.size()),
        total ? std::to_string(*total) : "infeasible everywhere",
    });
  }
  std::cout << sites.to_string() << '\n';
  std::cout << "reading: the MTP-over-LTE row is infeasible at ANY density — "
               "the feasibility zone's 10 ms floor; wired targets are "
               "feasible but need orders of magnitude more sites than the "
               "cloud's 101 regions (§5 economies of scale)\n";
  return 0;
}
