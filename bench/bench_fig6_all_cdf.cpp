// Figure 6 — CDF of *all* ping measurements from all probes to their
// closest datacenter, grouped by continent (the "reality" companion to
// Fig. 5's best case).
#include <iostream>

#include "apps/thresholds.hpp"
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "report/plot.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Figure 6: CDF of all ping measurements from all probes to their "
      "closest datacenter",
      ">75% of NA/EU/OC measurements under PL; top 25% of NA/EU under MTP; "
      "EU shows a long (eastern-EU) tail; Africa is worst");

  const auto dataset = setup.run();
  const auto samples = core::best_region_samples_by_continent(dataset);

  std::vector<report::Series> series;
  report::TextTable table;
  table.set_header({"continent", "samples", "p25", "median", "p75", "p95",
                    "F(MTP)", "F(PL)", "F(HRT)"});
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& sample = samples[geo::index_of(c)];
    if (sample.empty()) continue;
    const stats::Ecdf ecdf(sample);
    table.add_row({
        std::string(to_string(c)),
        std::to_string(sample.size()),
        report::fmt(ecdf.percentile(25.0), 1),
        report::fmt(ecdf.median(), 1),
        report::fmt(ecdf.percentile(75.0), 1),
        report::fmt(ecdf.percentile(95.0), 1),
        report::fmt_percent(ecdf.fraction_at_or_below(apps::kMotionToPhotonMs)),
        report::fmt_percent(
            ecdf.fraction_at_or_below(apps::kPerceivableLatencyMs)),
        report::fmt_percent(
            ecdf.fraction_at_or_below(apps::kHumanReactionTimeMs)),
    });
    report::Series s;
    s.name = std::string(to_code(c));
    s.points = ecdf.curve(std::size_t{160});
    series.push_back(std::move(s));
  }
  std::cout << table.to_string() << '\n';

  report::CdfPlotOptions options;
  options.x_min = 1.0;
  options.x_max = 300.0;
  options.log_x = true;
  std::cout << render_cdf_plot(series,
                               {{"MTP", apps::kMotionToPhotonMs},
                                {"PL", apps::kPerceivableLatencyMs},
                                {"HRT", apps::kHumanReactionTimeMs}},
                               options);

  report::SvgPlotOptions svg_options;
  svg_options.title = "Fig. 6 — CDF of all pings to each probe's closest DC";
  svg_options.log_x = true;
  svg_options.x_min = 1.0;
  svg_options.x_max = 300.0;
  const std::string svg_path = "fig6_all_cdf.svg";
  if (report::write_text_file(
          svg_path, render_svg_cdf(series,
                                   {{"MTP", apps::kMotionToPhotonMs},
                                    {"PL", apps::kPerceivableLatencyMs},
                                    {"HRT", apps::kHumanReactionTimeMs}},
                                   svg_options))) {
    std::cout << "\nSVG written to " << svg_path << '\n';
  }

  const stats::Ecdf eu(samples[geo::index_of(geo::Continent::kEurope)]);
  const stats::Ecdf na(samples[geo::index_of(geo::Continent::kNorthAmerica)]);
  std::cout << "\nEU top-quartile " << report::fmt(eu.percentile(25.0), 1)
            << " ms, NA top-quartile " << report::fmt(na.percentile(25.0), 1)
            << " ms (paper: both under MTP)\n";
  return 0;
}
