// Serving front-end acceptance bench: an overloaded open-arrival
// session over the real store + oracle, on the front-end's simulated
// clock. The headline number is qps-under-SLO — the completed rate the
// admission machinery sustains while the p99 of answered requests stays
// inside the tail target — which is a *simulated* rate, deterministic
// for the configuration below; the wall-clock row measures how fast the
// simulator itself chews through the session (requests/s of real time).
//
// Gates (exit non-zero): the session must shed (the regime is ~8x
// overload by construction), the p99 of completed requests must meet
// the SLO, and the server must drain. Numbers land in the bench JSON
// (SHEARS_BENCH_JSON, default BENCH_serve.json alongside bench_serve) —
// bench/run_benches.sh routes them to results/BENCH_serve.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "atlas/measurement.hpp"
#include "bench_common.hpp"
#include "front/server.hpp"
#include "front/traffic.hpp"
#include "front/transport/loopback.hpp"
#include "front/transport/socket_server.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"

namespace {

using namespace shears;
using clock_type = std::chrono::steady_clock;

/// The peak-load regime of scenarios/serving_peak_load.ini and the
/// overload soak: 100 us + 200 us/query against 40 kqps offered, 3 ms
/// deadlines, retry backoffs sized so deadline + worst-case backoffs
/// stay under the 5 ms SLO.
front::FrontConfig peak_front_config() {
  front::FrontConfig config;
  config.queue_capacity = 256;
  config.max_batch = 64;
  config.batch_overhead_us = 100;
  config.per_query_us = 200;
  config.client_rate_qps = 2000;
  config.client_burst = 16;
  return config;
}

front::TrafficConfig peak_traffic_config() {
  front::TrafficConfig config;
  config.arrival = front::ArrivalMode::kOpen;
  config.clients = 64;
  config.offered_qps = 40'000;
  config.zipf_exponent = 1.1;
  config.duration_us = 1'000'000;  // one simulated second of peak
  config.slo_ms = 5.0;
  config.seed = 2020;
  config.client.deadline_us = 3000;
  config.client.max_retries = 2;
  config.client.backoff_base_us = 500;
  config.client.backoff_cap_us = 1000;
  return config;
}

/// The loopback regime: closed-loop clients hammering over real TCP
/// with per-client token buckets set well below the offered rate, so
/// the bucket (not the oracle) is the bottleneck — sheds must engage
/// while the completed rate stays at the buckets' allowance.
front::FrontConfig loopback_front_config() {
  front::FrontConfig config;
  config.client_rate_qps = 500;
  config.client_burst = 16;
  return config;
}

front::LoopbackConfig loopback_traffic_config() {
  front::LoopbackConfig config;
  config.clients = 8;
  config.requests_per_client = 500;
  config.slo_ms = 5.0;
  config.seed = 2020;
  config.client.max_retries = 3;
  config.client.backoff_base_us = 500;
  config.client.backoff_cap_us = 2'000;
  return config;
}

/// Runs the socket-transport half of the bench; returns 0 when its
/// gates hold (or sockets are unavailable and the section is skipped).
int run_loopback_bench(const serve::Oracle& oracle,
                       serve::ColumnarStore& store,
                       const std::vector<serve::Query>& corpus) {
  if (!front::sockets_available()) {
    std::printf("\nSKIP: loopback sockets unavailable in this sandbox; "
                "socket-transport gates not evaluated\n");
    return 0;
  }
  front::FrontServer server(&oracle, &store, loopback_front_config());
  front::LoopbackConfig config = loopback_traffic_config();
  // Wall-clock tail target; overridable for instrumented (sanitizer)
  // or constrained runners where real latencies stretch.
  if (const char* env = std::getenv("SHEARS_LOOPBACK_SLO_MS")) {
    config.slo_ms = std::atof(env);
  }
  const front::LoopbackReport report =
      front::run_loopback(server, corpus, config);

  const std::uint64_t shed = report.server.shed_queue_full +
                             report.server.shed_deadline +
                             report.server.shed_throttled;
  bench::bench_record_value("front_loopback_qps_under_slo",
                            report.slo_met ? report.qps : 0.0);
  bench::bench_record_value("front_loopback_p99_ms", report.p99_ms);
  bench::bench_record_value(
      "front_loopback_shed_fraction",
      report.server.requests > 0
          ? static_cast<double>(shed) /
                static_cast<double>(report.server.requests)
          : 0.0);

  std::printf("\nloopback sockets: offered %llu (retries %llu), completed "
              "%llu, shed %llu, failed %llu in %.1f ms\n",
              static_cast<unsigned long long>(report.offered),
              static_cast<unsigned long long>(report.retries),
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(report.failed),
              report.duration_ms);
  std::printf("loopback latency p50/p95/p99: %.3f / %.3f / %.3f ms  "
              "(SLO %.1f ms), qps %.0f\n",
              report.p50_ms, report.p95_ms, report.p99_ms, report.slo_ms,
              report.qps);
  std::printf("transport: %llu accepted, %llu KiB in, %llu KiB out, "
              "%llu partial writes\n",
              static_cast<unsigned long long>(report.transport.accepted),
              static_cast<unsigned long long>(report.transport.bytes_in >> 10),
              static_cast<unsigned long long>(report.transport.bytes_out >>
                                              10),
              static_cast<unsigned long long>(
                  report.transport.partial_writes));

  // Wall-clock gates are environment-sensitive; the floor is overridable
  // for constrained CI runners (simulated gates above are not).
  double gate_qps = 1'000.0;
  if (const char* env = std::getenv("SHEARS_LOOPBACK_GATE_QPS")) {
    gate_qps = std::atof(env);
  }
  if (shed == 0) {
    std::printf("FAIL: loopback overload produced no shedding\n");
    return 1;
  }
  if (!report.slo_met || report.qps < gate_qps) {
    std::printf("FAIL: loopback sustained %.0f qps (p99 %.3f ms) against "
                "gate %.0f qps under %.1f ms\n",
                report.qps, report.p99_ms, gate_qps, report.slo_ms);
    return 1;
  }
  if (!report.drained) {
    std::printf("FAIL: transport did not drain after the session\n");
    return 1;
  }
  std::printf("loopback gates met: >=%.0f qps under SLO over real sockets, "
              "shed under overload, clean drain\n",
              gate_qps);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_title(
      "serving front-end: admission control under 8x overload",
      "p99 of answered requests inside the SLO while the excess is shed");

  auto campaign = bench::make_standard_campaign(argc, argv);
  campaign.bench_name = "front_campaign";
  const atlas::MeasurementDataset dataset = campaign.run();

  serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{0});
  const serve::Oracle oracle(&store, serve::OracleConfig{});
  front::FrontServer server(&oracle, &store, peak_front_config());
  const std::vector<serve::Query> corpus =
      front::make_corpus(dataset.fleet(), 4096);

  const front::TrafficConfig traffic = peak_traffic_config();
  const auto start = clock_type::now();
  const front::TrafficReport report =
      front::run_traffic(server, corpus, traffic);
  const double wall_s =
      std::chrono::duration<double>(clock_type::now() - start).count();

  const std::uint64_t shed = report.server.shed_queue_full +
                             report.server.shed_deadline +
                             report.server.shed_throttled;
  // Simulated session throughput vs how fast the simulator ran it.
  bench::bench_record("front_session", wall_s,
                      static_cast<double>(report.sent));
  bench::bench_record_value("front_qps_under_slo",
                            report.slo_met ? report.qps : 0.0);
  bench::bench_record_value("front_p99_ms", report.p99_ms);
  // Fraction of request *attempts* (retries included) the admission
  // machinery turned away.
  bench::bench_record_value(
      "front_shed_fraction",
      report.server.requests > 0
          ? static_cast<double>(shed) /
                static_cast<double>(report.server.requests)
          : 0.0);

  std::printf("offered %llu (retries %llu), completed %llu, shed %llu, "
              "failed %llu\n",
              static_cast<unsigned long long>(report.offered),
              static_cast<unsigned long long>(report.retries),
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(report.failed));
  std::printf("latency p50/p95/p99: %.3f / %.3f / %.3f ms  (SLO %.1f ms)\n",
              report.p50_ms, report.p95_ms, report.p99_ms, report.slo_ms);
  std::printf("qps under SLO: %.0f  (simulated; wall %.3f s, %.0f req/s "
              "simulated per real second)\n",
              report.qps, wall_s,
              wall_s > 0.0 ? static_cast<double>(report.sent) / wall_s : 0.0);

  if (shed == 0) {
    std::printf("FAIL: overload regime produced no shedding\n");
    return 1;
  }
  if (!report.slo_met) {
    std::printf("FAIL: p99 %.3f ms misses the %.1f ms SLO\n", report.p99_ms,
                report.slo_ms);
    return 1;
  }
  if (!report.drained) {
    std::printf("FAIL: server did not drain after the session\n");
    return 1;
  }
  std::printf("front-end gates met: shed under overload, tail inside SLO, "
              "clean drain\n");

  return run_loopback_bench(oracle, store, corpus);
}
