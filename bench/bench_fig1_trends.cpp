// Figure 1 — the zeitgeist of edge vs cloud computing, 2004-2019:
// search popularity and publication counts, era boundaries, and growth
// analytics.
#include <cmath>
#include <iostream>

#include "report/table.hpp"
#include "trends/crawler.hpp"
#include "trends/trends.hpp"

int main() {
  using namespace shears;
  using trends::Topic;

  std::cout << "Figure 1: popularity and publications of \"edge computing\" "
               "vs \"cloud computing\"\n"
            << "paper shape target: cloud search peaks ~2011/2012 then "
               "declines; edge rises after ~2015\n\n";

  report::TextTable table;
  table.set_header({"year", "search(edge)", "search(cloud)", "pubs(edge)",
                    "pubs(cloud)"});
  for (int year = trends::kFirstYear; year <= trends::kLastYear; ++year) {
    table.add_row({
        std::to_string(year),
        report::fmt(value_in(search_popularity(Topic::kEdgeComputing), year), 0),
        report::fmt(value_in(search_popularity(Topic::kCloudComputing), year), 0),
        report::fmt(value_in(publications(Topic::kEdgeComputing), year), 0),
        report::fmt(value_in(publications(Topic::kCloudComputing), year), 0),
    });
  }
  std::cout << table.to_string() << '\n';

  const trends::EraBoundaries eras = trends::segment_eras();
  std::cout << "era segmentation: CDN era through " << eras.cdn_until
            << ", cloud era through " << eras.cloud_until
            << ", edge era after\n";

  const auto edge_fit =
      log_growth_fit(publications(Topic::kEdgeComputing), 2013, 2019);
  std::cout << "edge publications exponential-growth fit 2013-2019: "
            << report::fmt((std::exp(edge_fit.slope) - 1.0) * 100.0, 0)
            << "% per year (r^2 = " << report::fmt(edge_fit.r_squared, 3)
            << ")\n";
  // Methodology reproduction: recount the publication series with the
  // Scholar-style crawler over the synthetic corpus (paper used a custom
  // crawler [38]).
  const trends::SyntheticCorpus corpus = trends::SyntheticCorpus::generate({});
  const trends::KeywordCrawler crawler(corpus);
  const auto crawled_edge = crawler.count_by_year("edge computing");
  const auto crawled_cloud = crawler.count_by_year("cloud computing");
  const int crawled_crossover =
      growth_crossover_year(crawled_edge, crawled_cloud, 1.5);
  std::cout << "crawler methodology check: corpus of " << corpus.size()
            << " records (1/10 scale); crawled edge 2019 count "
            << report::fmt(value_in(crawled_edge, 2019), 0)
            << " (truth/10 = "
            << report::fmt(
                   value_in(publications(Topic::kEdgeComputing), 2019) / 10.0, 0)
            << "); growth crossover from crawl: " << crawled_crossover
            << "\n";

  std::cout << "edge pubs CAGR 2015-2019: "
            << report::fmt(cagr(publications(Topic::kEdgeComputing), 2015, 2019) *
                               100.0, 0)
            << "%  |  cloud pubs CAGR 2015-2019: "
            << report::fmt(cagr(publications(Topic::kCloudComputing), 2015, 2019) *
                               100.0, 1)
            << "%\n";
  return 0;
}
