// Microbenchmarks for the statistics kernels used by the analyses.
#include <benchmark/benchmark.h>

#include <vector>

#include "stats/distributions.hpp"
#include "stats/ecdf.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace {

using namespace shears::stats;

std::vector<double> make_sample(std::size_t n) {
  Xoshiro256 rng(7);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(sample_lognormal_median(rng, 25.0, 1.6));
  }
  return v;
}

void BM_RngNext(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_LognormalSample(benchmark::State& state) {
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_lognormal_median(rng, 25.0, 1.6));
  }
}
BENCHMARK(BM_LognormalSample);

void BM_SummaryAdd(benchmark::State& state) {
  Xoshiro256 rng(3);
  Summary s;
  for (auto _ : state) {
    s.add(rng.next_double());
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SummaryAdd);

void BM_EcdfBuild(benchmark::State& state) {
  const auto sample = make_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Ecdf ecdf(sample);
    benchmark::DoNotOptimize(ecdf);
  }
}
BENCHMARK(BM_EcdfBuild)->Range(1 << 10, 1 << 20);

void BM_EcdfQuantile(benchmark::State& state) {
  const Ecdf ecdf(make_sample(1 << 16));
  double q = 0.0;
  for (auto _ : state) {
    q += 1e-7;
    if (q >= 1.0) q = 0.0;
    benchmark::DoNotOptimize(ecdf.quantile(q));
  }
}
BENCHMARK(BM_EcdfQuantile);

void BM_EcdfFraction(benchmark::State& state) {
  const Ecdf ecdf(make_sample(1 << 16));
  double x = 0.0;
  for (auto _ : state) {
    x += 0.01;
    if (x >= 200.0) x = 0.0;
    benchmark::DoNotOptimize(ecdf.fraction_at_or_below(x));
  }
}
BENCHMARK(BM_EcdfFraction);

}  // namespace

BENCHMARK_MAIN();
