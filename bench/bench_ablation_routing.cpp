// Ablation A6 — path-model cross-validation: the tier-stretch abstraction
// vs explicit routing over the exchange/submarine-cable fabric. If the
// stretch model is a fair abstraction, both engines must agree on every
// figure-level conclusion.
#include <iostream>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "route/graph.hpp"
#include "route/path_provider.hpp"
#include "stats/ecdf.hpp"
#include "stats/ranktest.hpp"
#include "stats/regression.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Ablation A6: stretch-model routing vs explicit cable-graph "
               "routing\n"
            << "shape target: both engines agree on orderings and threshold "
               "shares (the stretch abstraction is sound)\n\n";

  // Deterministic cross-validation over all (country, in-scope region)
  // pairs.
  net::LatencyModel stretch_model;
  net::LatencyModel graph_model;
  const route::GraphPathProvider provider(route::TransportGraph::instance());
  graph_model.set_path_provider(&provider);

  std::vector<double> stretch_rtts;
  std::vector<double> graph_rtts;
  for (const geo::Country& country : geo::all_countries()) {
    const net::Endpoint user{country.site, country.tier,
                             net::AccessTechnology::kEthernet};
    for (const topology::CloudRegion& region : topology::all_regions()) {
      const geo::Continent rc = topology::region_continent(region);
      if (rc != country.continent &&
          geo::measurement_fallback(country.continent) != rc) {
        continue;
      }
      stretch_rtts.push_back(stretch_model.baseline_rtt_ms(user, region));
      graph_rtts.push_back(graph_model.baseline_rtt_ms(user, region));
    }
  }
  const stats::KsResult ks =
      stats::kolmogorov_smirnov(stretch_rtts, graph_rtts);
  std::cout << "pairs compared: " << stretch_rtts.size()
            << "; Pearson r = "
            << report::fmt(stats::pearson(stretch_rtts, graph_rtts), 3)
            << "; Spearman rho = "
            << report::fmt(stats::spearman(stretch_rtts, graph_rtts), 3)
            << "; KS distance between RTT distributions: "
            << report::fmt(ks.statistic, 3) << "\n\n";

  // Campaign-level comparison on a reduced fleet.
  atlas::PlacementConfig placement;
  placement.probe_count = 800;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  atlas::CampaignConfig config;
  config.duration_days = 10;

  report::TextTable table;
  table.set_header({"engine", "countries <10ms", "countries >=100ms",
                    "EU F(MTP)", "AF median (ms)"});
  for (const bool use_graph : {false, true}) {
    net::LatencyModel model;
    if (use_graph) model.set_path_provider(&provider);
    const auto dataset =
        atlas::Campaign(fleet, registry, model, config).run();
    const auto bands =
        core::band_country_latencies(core::country_min_latency(dataset));
    const auto mins = core::min_rtt_by_continent(dataset);
    const stats::Ecdf eu(mins[geo::index_of(geo::Continent::kEurope)]);
    const stats::Ecdf af(mins[geo::index_of(geo::Continent::kAfrica)]);
    table.add_row({
        use_graph ? "cable graph" : "tier stretch",
        std::to_string(bands.under_10),
        std::to_string(bands.over_100),
        report::fmt_percent(eu.fraction_at_or_below(20.0)),
        report::fmt(af.median(), 1),
    });
  }
  std::cout << table.to_string() << '\n';
  std::cout << "reading: band counts and continent orderings agree across "
               "engines; the paper's conclusions do not hinge on the stretch "
               "abstraction\n";
  return 0;
}
