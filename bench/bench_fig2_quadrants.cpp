// Figure 2 + the §3 threshold table — the application landscape: each
// edge-motivating application's latency band, per-entity data volume,
// 2025 market size, and quadrant.
#include <iostream>

#include "apps/application.hpp"
#include "apps/thresholds.hpp"
#include "report/table.hpp"

int main() {
  using namespace shears;

  std::cout << "Figure 2: driving edge applications by latency/bandwidth "
               "requirements\n"
            << "paper shape target: apps partition into Q1-Q4; Q2 (the hype "
               "quadrant) carries the largest expected market\n\n";

  std::cout << "Perception thresholds (Section 3):\n";
  report::TextTable thresholds;
  thresholds.set_header({"threshold", "value", "meaning"});
  thresholds.add_row({"MTP", report::fmt(apps::kMotionToPhotonMs, 0) + " ms",
                      "motion-to-photon (immersive sync)"});
  thresholds.add_row({"MTP display share",
                      report::fmt(apps::kMtpDisplayShareMs, 0) + " ms",
                      "consumed by display hardware"});
  thresholds.add_row({"MTP compute budget",
                      report::fmt(apps::kMtpComputeBudgetMs, 0) + " ms",
                      "left for compute + network"});
  thresholds.add_row({"NASA HUD", report::fmt(apps::kNasaHudComputeMs, 1) + " ms",
                      "strictest HUD compute requirement"});
  thresholds.add_row({"PL", report::fmt(apps::kPerceivableLatencyMs, 0) + " ms",
                      "perceivable latency"});
  thresholds.add_row({"HRT", report::fmt(apps::kHumanReactionTimeMs, 0) + " ms",
                      "human reaction time"});
  std::cout << thresholds.to_string() << '\n';

  report::TextTable table;
  table.set_header({"application", "latency (ms)", "GB/entity/day",
                    "market 2025 ($B)", "quadrant", "hyped driver"});
  for (const apps::Application& a : apps::application_catalog()) {
    table.add_row({
        std::string(a.name),
        report::fmt(a.latency_floor_ms, 1) + " - " +
            report::fmt(a.latency_ceiling_ms, 0),
        report::fmt(a.data_gb_per_entity_day, 2),
        report::fmt(a.market_2025_busd, 0),
        std::string(to_string(quadrant_of(a))),
        a.hyped_edge_driver ? "yes" : "no",
    });
  }
  std::cout << table.to_string() << '\n';

  double market[5] = {};
  std::size_t count[5] = {};
  for (const apps::Application& a : apps::application_catalog()) {
    const auto q = static_cast<int>(quadrant_of(a));
    market[q] += a.market_2025_busd;
    ++count[q];
  }
  report::TextTable summary;
  summary.set_header({"quadrant", "apps", "market 2025 ($B)"});
  for (int q = 1; q <= 4; ++q) {
    summary.add_row({"Q" + std::to_string(q), std::to_string(count[q]),
                     report::fmt(market[q], 0)});
  }
  std::cout << summary.to_string();
  return 0;
}
