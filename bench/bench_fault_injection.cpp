// Fault-injection overhead on campaign throughput. The acceptance bar:
// an attached-but-empty schedule (or none at all) must cost < 10% over
// the pre-fault engine; active faults may cost more (they do extra
// exposure queries and perturbed sampling).
#include <benchmark/benchmark.h>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "faults/fault_schedule.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

atlas::CampaignConfig day_config() {
  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.threads = 1;  // single-threaded for stable numbers
  return config;
}

void BM_CampaignNoSchedule(benchmark::State& state) {
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const atlas::Campaign campaign(fleet, registry, model, day_config());
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignNoSchedule)->Unit(benchmark::kMillisecond);

void BM_CampaignEmptySchedule(benchmark::State& state) {
  // Faults wired in but no fault active anywhere: the fast path.
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const faults::FaultSchedule schedule;  // empty
  const atlas::Campaign campaign(fleet, registry, model, day_config(),
                                 &schedule);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignEmptySchedule)->Unit(benchmark::kMillisecond);

void BM_CampaignActiveFaults(benchmark::State& state) {
  // A busy schedule plus retries and quarantine — the worst case.
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  faults::FaultScheduleConfig fault_config;
  fault_config.region_outage_rate = 0.02;
  fault_config.route_flap_rate = 0.05;
  fault_config.storm_rate = 0.04;
  fault_config.probe_hang_rate = 0.03;
  fault_config.clock_skew_rate = 0.01;
  fault_config.blackout_rate = 0.002;
  const faults::FaultSchedule schedule(fault_config);
  atlas::CampaignConfig config = day_config();
  config.retry.max_retries = 2;
  config.quarantine.enabled = true;
  const atlas::Campaign campaign(fleet, registry, model, config, &schedule);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignActiveFaults)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
