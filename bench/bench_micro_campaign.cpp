// Microbenchmarks for topology queries and campaign-engine throughput.
#include <benchmark/benchmark.h>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

void BM_NearestRegion(benchmark::State& state) {
  const auto registry = topology::CloudRegistry::campaign_footprint();
  double lat = -60.0;
  for (auto _ : state) {
    lat += 0.37;
    if (lat > 60.0) lat = -60.0;
    benchmark::DoNotOptimize(registry.nearest({lat, lat * 2.5}));
  }
}
BENCHMARK(BM_NearestRegion);

void BM_FleetGeneration(benchmark::State& state) {
  atlas::PlacementConfig config;
  config.probe_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto fleet = atlas::ProbeFleet::generate(config);
    benchmark::DoNotOptimize(fleet);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetGeneration)->Arg(400)->Arg(3200);

void BM_CampaignDay(benchmark::State& state) {
  // Throughput of one full campaign day across the standard fleet
  // (3200 probes x 8 ticks), single-threaded for stable numbers.
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.threads = 1;
  const atlas::Campaign campaign(fleet, registry, model, config);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignDay)->Unit(benchmark::kMillisecond);

void BM_CampaignDayParallel(benchmark::State& state) {
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.threads = 0;  // hardware concurrency
  const atlas::Campaign campaign(fleet, registry, model, config);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignDayParallel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
