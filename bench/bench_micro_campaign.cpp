// Microbenchmarks for topology queries and campaign-engine throughput,
// plus the perf-regression headline: a full-fleet campaign timed with the
// sampling cache off (the original per-packet recomputing engine) and on,
// asserting the two datasets are byte-identical and recording the speedup
// in the bench JSON (see bench_common.hpp).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "bench_common.hpp"
#include "net/latency_model.hpp"
#include "obs/metrics.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

void BM_NearestRegion(benchmark::State& state) {
  const auto registry = topology::CloudRegistry::campaign_footprint();
  double lat = -60.0;
  for (auto _ : state) {
    lat += 0.37;
    if (lat > 60.0) lat = -60.0;
    benchmark::DoNotOptimize(registry.nearest({lat, lat * 2.5}));
  }
}
BENCHMARK(BM_NearestRegion);

void BM_FleetGeneration(benchmark::State& state) {
  atlas::PlacementConfig config;
  config.probe_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto fleet = atlas::ProbeFleet::generate(config);
    benchmark::DoNotOptimize(fleet);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetGeneration)->Arg(400)->Arg(3200);

void BM_CampaignDay(benchmark::State& state) {
  // Throughput of one full campaign day across the standard fleet
  // (3200 probes x 8 ticks), single-threaded for stable numbers.
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.threads = 1;
  const atlas::Campaign campaign(fleet, registry, model, config);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignDay)->Unit(benchmark::kMillisecond);

void BM_CampaignDayUncached(benchmark::State& state) {
  // The same day with the sampling cache disabled: the per-packet
  // recomputing engine this optimisation replaced. The pair
  // BM_CampaignDay / BM_CampaignDayUncached is the quick regression view
  // of the cache speedup.
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.threads = 1;
  config.sampling_cache = false;
  const atlas::Campaign campaign(fleet, registry, model, config);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignDayUncached)->Unit(benchmark::kMillisecond);

void BM_CampaignDayParallel(benchmark::State& state) {
  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.threads = 0;  // hardware concurrency
  const atlas::Campaign campaign(fleet, registry, model, config);
  for (auto _ : state) {
    auto dataset = campaign.run();
    benchmark::DoNotOptimize(dataset);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(dataset.size()));
  }
}
BENCHMARK(BM_CampaignDayParallel)->Unit(benchmark::kMillisecond);

/// The acceptance run: one full-fleet campaign of SHEARS_BENCH_DAYS days
/// (default 30; 270 reproduces the paper's nine-month scale), timed with
/// the sampling cache off and on. Both datasets must match byte for byte
/// — the cache is a pure hot-path optimisation — and the speedup is
/// recorded under `campaign_cache_speedup` in the bench JSON.
int run_cache_comparison() {
  using clock = std::chrono::steady_clock;
  int days = 30;
  if (const char* env = std::getenv("SHEARS_BENCH_DAYS")) {
    if (const int v = std::atoi(env); v > 0) days = v;
  }
  int repeats = 5;
  if (const char* env = std::getenv("SHEARS_BENCH_REPEATS")) {
    if (const int v = std::atoi(env); v > 0) repeats = v;
  }

  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = days;
  config.threads = 1;  // the ratio is about work per burst, not cores

  config.sampling_cache = false;
  const atlas::Campaign uncached(fleet, registry, model, config);
  config.sampling_cache = true;
  auto start = clock::now();
  const atlas::Campaign cached(fleet, registry, model, config);
  const double cache_build_s =
      std::chrono::duration<double>(clock::now() - start).count();

  // Each repetition times the two engines back to back and contributes
  // one pairwise ratio; the median pair survives machine-load swings that
  // a single A/B run (or even per-mode minima taken at distant times)
  // does not. The order alternates between pairs so that neither engine
  // systematically occupies the thermally-throttled slot right after the
  // other's long run. Wall clocks are reported as per-mode minima.
  double uncached_s = 1e300;
  double cached_s = 1e300;
  std::vector<double> ratios;
  std::size_t measurements = 0;
  bool identical = true;
  for (int r = 0; r < repeats; ++r) {
    double u = 0.0;
    double c = 0.0;
    const auto time_uncached = [&] {
      start = clock::now();
      auto ds = uncached.run();
      u = std::chrono::duration<double>(clock::now() - start).count();
      return ds;
    };
    const auto time_cached = [&] {
      start = clock::now();
      auto ds = cached.run();
      c = std::chrono::duration<double>(clock::now() - start).count();
      return ds;
    };
    if (r % 2 == 0) {
      const auto reference = time_uncached();
      const auto dataset = time_cached();
      measurements = dataset.size();
      if (r == 0) {
        identical = dataset.size() == reference.size();
        for (std::size_t i = 0; identical && i < dataset.size(); ++i) {
          const atlas::Measurement& a = dataset.records()[i];
          const atlas::Measurement& b = reference.records()[i];
          identical = a.probe_id == b.probe_id &&
                      a.region_index == b.region_index && a.tick == b.tick &&
                      a.min_ms == b.min_ms && a.avg_ms == b.avg_ms &&
                      a.max_ms == b.max_ms && a.sent == b.sent &&
                      a.received == b.received && a.retries == b.retries &&
                      a.faults == b.faults;
        }
      }
    } else {
      const auto dataset = time_cached();
      const auto reference = time_uncached();
      measurements = dataset.size();
    }
    uncached_s = std::min(uncached_s, u);
    cached_s = std::min(cached_s, c);
    ratios.push_back(c > 0.0 ? u / c : 0.0);
  }
  std::sort(ratios.begin(), ratios.end());
  // Headline: ratio of per-mode minima — noise on a shared box only ever
  // adds time, so each mode's fastest run is its best noise-free
  // estimate. The median per-pair ratio rides along as a drift-robust
  // cross-check.
  const double speedup = cached_s > 0.0 ? uncached_s / cached_s : 0.0;
  const double pair_speedup = ratios[ratios.size() / 2];

  const auto items = static_cast<double>(measurements);
  bench::bench_record("campaign_uncached", uncached_s, items);
  bench::bench_record("campaign_cached", cached_s, items);
  bench::bench_record_value("campaign_cache_build_seconds", cache_build_s);
  bench::bench_record_value("campaign_cache_speedup", speedup);
  bench::bench_record_value("campaign_cache_speedup_median_pair",
                            pair_speedup);
  bench::bench_record_value("campaign_cache_identical", identical ? 1.0 : 0.0);

  std::printf(
      "\ncache comparison (%d days, %zu measurements, 1 thread, %d pairs)\n"
      "  uncached: %.3f s  (%.0f measurements/s)\n"
      "  cached:   %.3f s  (%.0f measurements/s)  + %.3f s one-time cache "
      "build\n"
      "  speedup:  %.2fx (per-mode minima; median pair %.2fx)   datasets "
      "%s\n",
      days, measurements, repeats, uncached_s, items / uncached_s, cached_s,
      items / cached_s, cache_build_s, speedup, pair_speedup,
      identical ? "byte-identical" : "DIVERGED");
  return identical ? 0 : 1;
}

/// The observability gate: the same cached campaign timed with no
/// registry attached and with full instrumentation (attach_metrics), in
/// alternating pairs with per-mode minima like run_cache_comparison.
/// Asserts the two datasets are byte-identical — metrics must observe,
/// never perturb — and that the instrumented run costs at most
/// SHEARS_TELEMETRY_GATE_PCT percent throughput (default 2; the perf
/// smoke test raises it to 50 because a 2-day run is noise-dominated).
/// Records campaign_telemetry_overhead_pct / campaign_telemetry_identical.
int run_telemetry_overhead() {
  using clock = std::chrono::steady_clock;
  int days = 30;
  if (const char* env = std::getenv("SHEARS_BENCH_DAYS")) {
    if (const int v = std::atoi(env); v > 0) days = v;
  }
  int repeats = 5;
  if (const char* env = std::getenv("SHEARS_BENCH_REPEATS")) {
    if (const int v = std::atoi(env); v > 0) repeats = v;
  }
  double gate_pct = 2.0;
  if (const char* env = std::getenv("SHEARS_TELEMETRY_GATE_PCT")) {
    if (const double v = std::atof(env); v > 0.0) gate_pct = v;
  }

  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = days;
  config.threads = 1;

  const atlas::Campaign plain(fleet, registry, model, config);
  atlas::Campaign instrumented(fleet, registry, model, config);
  obs::MetricsRegistry metrics;
  instrumented.attach_metrics(&metrics);

  double plain_s = 1e300;
  double instrumented_s = 1e300;
  std::size_t measurements = 0;
  bool identical = true;
  for (int r = 0; r < repeats; ++r) {
    double p = 0.0;
    double i = 0.0;
    auto start = clock::now();
    const auto time_plain = [&] {
      start = clock::now();
      auto ds = plain.run();
      p = std::chrono::duration<double>(clock::now() - start).count();
      return ds;
    };
    const auto time_instrumented = [&] {
      start = clock::now();
      auto ds = instrumented.run();
      i = std::chrono::duration<double>(clock::now() - start).count();
      return ds;
    };
    if (r % 2 == 0) {
      const auto reference = time_plain();
      const auto dataset = time_instrumented();
      measurements = dataset.size();
      if (r == 0) {
        identical = dataset.size() == reference.size();
        for (std::size_t k = 0; identical && k < dataset.size(); ++k) {
          const atlas::Measurement& a = dataset.records()[k];
          const atlas::Measurement& b = reference.records()[k];
          identical = a.probe_id == b.probe_id &&
                      a.region_index == b.region_index && a.tick == b.tick &&
                      a.min_ms == b.min_ms && a.avg_ms == b.avg_ms &&
                      a.max_ms == b.max_ms && a.sent == b.sent &&
                      a.received == b.received && a.retries == b.retries &&
                      a.faults == b.faults;
        }
      }
    } else {
      const auto dataset = time_instrumented();
      const auto reference = time_plain();
      measurements = dataset.size();
    }
    plain_s = std::min(plain_s, p);
    instrumented_s = std::min(instrumented_s, i);
  }
  const double overhead_pct =
      plain_s > 0.0 ? (instrumented_s / plain_s - 1.0) * 100.0 : 0.0;
  const bool within_gate = overhead_pct <= gate_pct;

  const auto items = static_cast<double>(measurements);
  bench::bench_record("campaign_instrumented", instrumented_s, items);
  bench::bench_record_value("campaign_telemetry_overhead_pct", overhead_pct);
  bench::bench_record_value("campaign_telemetry_identical",
                            identical ? 1.0 : 0.0);

  std::printf(
      "\ntelemetry overhead (%d days, %zu measurements, 1 thread, %d pairs)\n"
      "  plain:        %.3f s\n"
      "  instrumented: %.3f s\n"
      "  overhead:     %.2f%% (gate %.1f%%: %s)   datasets %s\n",
      days, measurements, repeats, plain_s, instrumented_s, overhead_pct,
      gate_pct, within_gate ? "ok" : "EXCEEDED",
      identical ? "byte-identical" : "DIVERGED");
  return identical && within_gate ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int cache_rc = run_cache_comparison();
  const int telemetry_rc = run_telemetry_overhead();
  return cache_rc != 0 || telemetry_rc != 0 ? 1 : 0;
}
