// Figure 3 — the measurement infrastructure: (a) cloud regions of seven
// providers, (b) the probe fleet's distribution.
#include <iostream>

#include "bench_common.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Figure 3: measurement end-points and vantage points",
      "101 regions of 7 providers in 21 countries; 3200+ probes in 166+ "
      "countries, EU/NA-dense");

  report::TextTable providers;
  providers.set_header({"provider", "regions", "backbone"});
  for (const topology::CloudProvider p : topology::kAllProviders) {
    providers.add_row({
        std::string(to_string(p)),
        std::to_string(setup.registry.of_provider(p).size()),
        backbone_class(p) == topology::BackboneClass::kPrivate ? "private"
                                                               : "public",
    });
  }
  std::cout << providers.to_string() << '\n';

  std::cout << "total regions: " << setup.registry.size() << " in "
            << setup.registry.hosting_countries().size() << " countries\n\n";

  report::TextTable by_continent;
  by_continent.set_header({"continent", "regions", "probes", "probe share"});
  for (const geo::Continent c : geo::kAllContinents) {
    const auto regions = setup.registry.in_continent(c).size();
    const auto probes = setup.fleet.in_continent(c).size();
    by_continent.add_row({
        std::string(to_string(c)),
        std::to_string(regions),
        std::to_string(probes),
        report::fmt_percent(static_cast<double>(probes) / setup.fleet.size()),
    });
  }
  std::cout << by_continent.to_string() << '\n';

  std::cout << "fleet: " << setup.fleet.size() << " probes in "
            << setup.fleet.country_count() << " countries\n";

  std::size_t privileged = 0;
  std::size_t wired = 0;
  std::size_t wireless = 0;
  for (const atlas::Probe& p : setup.fleet.probes()) {
    privileged += p.privileged();
    wired += p.tagged_wired();
    wireless += p.tagged_wireless();
  }
  std::cout << "privileged (filtered from analyses): " << privileged
            << "; tagged wired: " << wired << "; tagged wireless: " << wireless
            << "\n";

  // The Fig. 3 map itself: probes as dots, regions as diamonds.
  report::MapLayer probes_layer;
  probes_layer.name = "RIPE-like probes";
  probes_layer.radius = 1.3;
  for (const atlas::Probe& p : setup.fleet.probes()) {
    probes_layer.lon_lat.emplace_back(p.endpoint.location.lon_deg,
                                      p.endpoint.location.lat_deg);
  }
  report::MapLayer regions_layer;
  regions_layer.name = "cloud regions";
  regions_layer.diamond = true;
  regions_layer.colour = "#D55E00";
  for (const topology::CloudRegion* r : setup.registry.regions()) {
    regions_layer.lon_lat.emplace_back(r->location.lon_deg,
                                       r->location.lat_deg);
  }
  const std::string map_path = "fig3_infrastructure_map.svg";
  if (report::write_text_file(
          map_path,
          report::render_svg_map({probes_layer, regions_layer},
                                 "Fig. 3 - probes and cloud regions"))) {
    std::cout << "map written to " << map_path << '\n';
  }
  return 0;
}
