// Ablation A2 — the 5G what-if (§5): sweeps the wireless last-mile
// latency scale from the 2019/2020 status quo toward the ITU promise and
// tracks the Fig. 7 wireless/wired gap.
#include <cstdlib>
#include <iostream>

#include "atlas/placement.hpp"
#include "core/whatif.hpp"
#include "report/table.hpp"
#include "topology/registry.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  std::cout << "Ablation A2: wireless last-mile improvement sweep (the 5G "
               "promise)\n"
            << "paper shape target: the ~2.5x wireless/wired gap closes "
               "toward parity as wireless latency approaches the promise\n\n";

  atlas::PlacementConfig placement;
  placement.probe_count = argc > 1 ? std::atoi(argv[1]) : 1200;
  if (placement.probe_count < 400) placement.probe_count = 1200;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  atlas::CampaignConfig campaign;
  campaign.duration_days = 10;

  const auto points = core::wireless_improvement_sweep(
      {1.0, 0.75, 0.5, 0.25, 0.1, 0.03}, fleet, registry, {}, campaign);

  report::TextTable table;
  table.set_header({"wireless scale", "wired median (ms)",
                    "wireless median (ms)", "ratio", "added (ms)"});
  for (const core::WirelessImprovementPoint& p : points) {
    table.add_row({
        report::fmt(p.wireless_scale, 2),
        report::fmt(p.wired_median_ms, 1),
        report::fmt(p.wireless_median_ms, 1),
        report::fmt(p.median_ratio, 2) + "x",
        report::fmt(p.added_latency_ms, 1),
    });
  }
  std::cout << table.to_string() << '\n';

  std::cout << "status quo (scale 1.0) reproduces Fig. 7's ~2.5x; scale 0.03 "
               "approximates the 1 ms ITU target — even then the wired path "
               "RTT floor remains, which is the paper's point about the "
               "wireless floor bounding edge gains (~10 ms)\n";
  return 0;
}
