// ISP diversity — §4.1's "probes installed in varying network
// environments", quantified: per-operator medians inside representative
// countries show how much of a user's cloud latency is decided by their
// ISP choice rather than geography.
#include <iostream>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "ISP diversity: per-operator cloud proximity within a country\n"
            << "shape target: incumbents (dense peering) beat budget "
               "carriers; mobile operators trail fixed ones — the last-mile "
               "operator, not geography, sets the floor\n\n";

  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 15;
  const auto dataset = atlas::Campaign(fleet, registry, model, config).run();

  for (const char* iso2 : {"DE", "US", "BR", "IN"}) {
    const geo::Country* country = geo::find_country(iso2);
    std::cout << "--- " << country->name << " ---\n";
    report::TextTable table;
    table.set_header({"operator", "ASN", "segment", "market share",
                      "probes", "median min RTT"});
    for (const core::IspStats& s : core::isp_comparison(dataset, iso2)) {
      table.add_row({
          s.isp->name,
          "AS" + std::to_string(s.isp->asn),
          s.isp->mobile ? "mobile" : "fixed",
          report::fmt_percent(s.isp->market_share, 0),
          std::to_string(s.probe_count),
          report::fmt(s.median_min_rtt_ms, 1) + " ms",
      });
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
