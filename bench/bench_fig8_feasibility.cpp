// Figure 8 — the feasibility zone: Fig. 2's applications against the
// measured latency/bandwidth reality boundaries, with per-region verdicts
// and the market-share contrast.
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "core/feasibility.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Figure 8: edge applications with feasibility zones",
      "FZ = latency 10-250 ms x >=1 GB/entity/day; contains traffic "
      "monitoring & cloud gaming but NOT the hype drivers; FZ market share "
      "pales against the rest");

  const auto dataset = setup.run();
  const auto samples = core::best_region_samples_by_continent(dataset);
  const double eu_median =
      stats::Ecdf(samples[geo::index_of(geo::Continent::kEurope)]).median();
  const double af_p75 =
      stats::Ecdf(samples[geo::index_of(geo::Continent::kAfrica)])
          .percentile(75.0);

  std::cout << "measured cloud RTT contexts: well-connected (EU median) = "
            << report::fmt(eu_median, 1)
            << " ms; under-served (Africa p75) = " << report::fmt(af_p75, 1)
            << " ms\n\n";

  const core::FeasibilityConfig config;
  const auto eu_rows =
      core::classify_catalog(apps::application_catalog(), eu_median, config);
  const auto af_rows =
      core::classify_catalog(apps::application_catalog(), af_p75, config);

  report::TextTable table;
  table.set_header({"application", "in FZ", "verdict (well-connected)",
                    "verdict (under-served)", "market ($B)", "hyped"});
  for (std::size_t i = 0; i < eu_rows.size(); ++i) {
    const apps::Application& app = *eu_rows[i].app;
    table.add_row({
        std::string(app.name),
        eu_rows[i].in_zone ? "YES" : "no",
        std::string(to_string(eu_rows[i].verdict)),
        std::string(to_string(af_rows[i].verdict)),
        report::fmt(app.market_2025_busd, 0),
        app.hyped_edge_driver ? "yes" : "no",
    });
  }
  std::cout << table.to_string() << '\n';

  const core::MarketShareSummary market =
      core::market_share_summary(apps::application_catalog(), config);
  std::cout << "market share inside FZ: $" << report::fmt(market.in_zone_busd, 0)
            << "B across " << market.in_zone_apps << " apps\n"
            << "market share outside FZ: $"
            << report::fmt(market.out_of_zone_busd, 0) << "B (of which hyped "
            << "edge drivers: $" << report::fmt(market.hyped_out_of_zone_busd, 0)
            << "B)\n"
            << "ratio outside/inside: "
            << report::fmt(market.out_of_zone_busd /
                               (market.in_zone_busd > 0 ? market.in_zone_busd
                                                        : 1.0), 1)
            << "x  (paper: FZ market \"pales\" in comparison)\n\n";

  std::size_t eu_cloud = 0;
  std::size_t af_edge = 0;
  for (std::size_t i = 0; i < eu_rows.size(); ++i) {
    eu_cloud += eu_rows[i].verdict == core::EdgeVerdict::kCloudSufficient;
    af_edge += af_rows[i].verdict == core::EdgeVerdict::kEdgeFeasible;
  }
  std::cout << "headline: behind the EU cloud, " << eu_cloud << "/"
            << eu_rows.size() << " apps are cloud-sufficient; behind the "
            << "African p75 cloud, " << af_edge
            << " become edge-feasible (paper Section 6: deployment should "
               "focus on under-served regions)\n";
  return 0;
}
