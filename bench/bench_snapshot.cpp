// Snapshot persistence acceptance bench: what a serving restart costs
// with and without a snapshot.
//
// The cold path replays the standard campaign into a columnar store
// (the ingest every restart pays without persistence); the warm path
// loads the snapshot back. Both end in the exact same stale store —
// columns and counters restored, summaries not yet built — because the
// summary rebuild (refresh()) is identical work on either path and
// would only dilute the comparison; it is timed once, separately. The
// gate compares the two routes to that common state: the lazy mmap
// load (every checksum, fingerprint and row still validated) must beat
// the replay by SHEARS_SNAPSHOT_GATE (default 10; the perf smoke test
// keeps every assertion but shrinks the campaign and the gate). The
// eager loads — which also rebuild the summaries and verify them
// bit-exact against the recorded scalars — are timed and recorded
// alongside. Every loaded store must reproduce the saved image
// byte-for-byte when re-serialised: always asserted, never relaxed.
// Numbers land in the bench JSON (SHEARS_BENCH_JSON) — see
// bench/run_benches.sh, which routes them to results/BENCH_serve.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "atlas/campaign.hpp"
#include "bench_common.hpp"
#include "serve/columnar.hpp"
#include "serve/snapshot.hpp"

namespace {

using namespace shears;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Re-serialises `store` and asserts it reproduces the saved image bit
/// for bit — the whole exactness contract in one comparison.
bool image_identical(const serve::ColumnarStore& store,
                     const std::string& expected, const char* what) {
  std::ostringstream resaved;
  serve::save_snapshot(store, resaved);
  if (resaved.str() == expected) return true;
  std::printf("FAIL: store loaded via %s does not reproduce the snapshot "
              "image\n",
              what);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_title("store snapshot: save/load vs campaign replay",
                     "a warm start from disk >= 10x a cold campaign replay");

  // Cold path: the standard campaign (30 days default; 270 = paper
  // scale) streamed into the store through the sink hook — exactly the
  // serving cold start. The store is stale (columns + counters) when
  // the run finishes; the summary build is timed separately below.
  auto standard = bench::make_standard_campaign(argc, argv);
  standard.bench_name = "snapshot_campaign";
  serve::ColumnarStore store(&standard.fleet, &standard.registry);
  atlas::Campaign campaign(standard.fleet, standard.registry, standard.model,
                           standard.config);
  campaign.attach_sink(&store);
  auto start = clock_type::now();
  (void)campaign.run();
  const double replay_s = seconds_since(start);
  const auto rows = static_cast<double>(store.rows_stored());
  bench::bench_record("snapshot_replay", replay_s, rows);
  std::printf("cold replay: %.0f rows ingested in %.3f s\n", rows, replay_s);

  // The summary rebuild both paths share (a pure function of the
  // columns — identical work after a replay or after a load).
  start = clock_type::now();
  store.refresh();
  const double refresh_s = seconds_since(start);
  bench::bench_record("snapshot_refresh", refresh_s, rows);
  std::printf("summary refresh (shared by both paths): %.3f s\n", refresh_s);

  // Save once (atomic tmp + rename), and keep the canonical image for
  // the byte-identity assertions.
  const std::string path = "bench_store.snap";
  start = clock_type::now();
  serve::save_snapshot(store, path);
  const double save_s = seconds_since(start);
  bench::bench_record("snapshot_save", save_s, rows);
  std::ostringstream canonical;
  serve::save_snapshot(store, canonical);
  const std::string expected_image = canonical.str();
  const double file_mb =
      static_cast<double>(expected_image.size()) / (1024.0 * 1024.0);
  bench::bench_record_value("snapshot_file_mb", file_mb);
  std::printf("save: %.3f s, %.1f MiB on disk\n", save_s, file_mb);

  // Eager loads: columns restored, summaries rebuilt and verified
  // bit-exact against the recorded scalars — the turn-key warm start.
  for (const bool mmap : {false, true}) {
    serve::SnapshotLoadOptions options;
    options.mmap = mmap;
    start = clock_type::now();
    const serve::ColumnarStore loaded = serve::load_snapshot(
        path, &standard.fleet, &standard.registry, serve::StoreConfig{0},
        options);
    const double load_s = seconds_since(start);
    bench::bench_record(mmap ? "snapshot_load_mmap" : "snapshot_load_read",
                        load_s, rows);
    if (!image_identical(loaded, expected_image, mmap ? "mmap" : "read")) {
      return 1;
    }
    std::printf("load (%s, eager): %.3f s — re-saved image byte-identical\n",
                mmap ? "mmap" : "read", load_s);
  }

  // Lazy mmap load: the warm-start counterpart of the cold replay —
  // the same stale store the replay left behind, with every checksum,
  // fingerprint and row validated on the way in.
  serve::SnapshotLoadOptions lazy;
  lazy.mmap = true;
  lazy.lazy_summaries = true;
  start = clock_type::now();
  serve::ColumnarStore restored = serve::load_snapshot(
      path, &standard.fleet, &standard.registry, serve::StoreConfig{0}, lazy);
  const double lazy_s = seconds_since(start);
  bench::bench_record("snapshot_load_lazy", lazy_s, rows);
  restored.refresh();
  if (!image_identical(restored, expected_image, "mmap, lazy")) return 1;
  std::printf("load (mmap, lazy): %.3f s — re-saved image byte-identical\n",
              lazy_s);
  std::remove(path.c_str());

  const double speedup = lazy_s > 0.0 ? replay_s / lazy_s : 0.0;
  bench::bench_record_value("snapshot_vs_replay_speedup", speedup);
  double gate = 10.0;
  if (const char* env = std::getenv("SHEARS_SNAPSHOT_GATE")) {
    gate = std::atof(env);  // 0 disables (forced-slow-disk CI runners)
  }
  std::printf("warm start vs cold replay (to restored columns): %.1fx  "
              "(gate %.0fx)\n",
              speedup, gate);
  if (gate > 0.0 && speedup < gate) {
    std::printf("FAIL: snapshot load speedup below gate\n");
    return 1;
  }
  return 0;
}
