// Figure 5 — CDF of the minimum RTT of every probe to its nearest
// datacenter, grouped by continent.
#include <iostream>

#include "apps/thresholds.hpp"
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "report/plot.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Figure 5: CDF of minimum RTT of all probes to nearest datacenter, "
      "by continent",
      "~80% of EU/NA probes within MTP (20 ms); Oceania ~all within 50 ms; "
      "~75% of Africa+LatAm probes within PL (100 ms)");

  const auto dataset = setup.run();
  const auto mins = core::min_rtt_by_continent(dataset);

  std::vector<report::Series> series;
  report::TextTable table;
  table.set_header({"continent", "probes", "F(20ms)", "F(50ms)", "F(100ms)",
                    "median (ms)", "p90 (ms)"});
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& sample = mins[geo::index_of(c)];
    if (sample.empty()) continue;
    const stats::Ecdf ecdf(sample);
    table.add_row({
        std::string(to_string(c)),
        std::to_string(sample.size()),
        report::fmt_percent(ecdf.fraction_at_or_below(20.0)),
        report::fmt_percent(ecdf.fraction_at_or_below(50.0)),
        report::fmt_percent(ecdf.fraction_at_or_below(100.0)),
        report::fmt(ecdf.median(), 1),
        report::fmt(ecdf.percentile(90.0), 1),
    });
    report::Series s;
    s.name = std::string(to_code(c));
    s.points = ecdf.curve(std::size_t{160});
    series.push_back(std::move(s));
  }
  std::cout << table.to_string() << '\n';

  report::CdfPlotOptions options;
  options.x_min = 1.0;
  options.x_max = 300.0;
  options.log_x = true;
  std::cout << render_cdf_plot(series,
                               {{"MTP", apps::kMotionToPhotonMs},
                                {"PL", apps::kPerceivableLatencyMs},
                                {"HRT", apps::kHumanReactionTimeMs}},
                               options);

  // Publication-quality output alongside the ASCII rendering.
  report::SvgPlotOptions svg_options;
  svg_options.title = "Fig. 5 — CDF of minimum probe RTT to nearest DC";
  svg_options.log_x = true;
  svg_options.x_min = 1.0;
  svg_options.x_max = 300.0;
  const std::string svg_path = "fig5_min_cdf.svg";
  if (report::write_text_file(
          svg_path, render_svg_cdf(series,
                                   {{"MTP", apps::kMotionToPhotonMs},
                                    {"PL", apps::kPerceivableLatencyMs},
                                    {"HRT", apps::kHumanReactionTimeMs}},
                                   svg_options))) {
    std::cout << "\nSVG written to " << svg_path << '\n';
  }

  // The combined Africa+Latin-America claim quoted in §4.2.
  std::vector<double> af_latam = mins[geo::index_of(geo::Continent::kAfrica)];
  const auto& sa = mins[geo::index_of(geo::Continent::kSouthAmerica)];
  af_latam.insert(af_latam.end(), sa.begin(), sa.end());
  const stats::Ecdf combined(std::move(af_latam));
  std::cout << "\nAfrica+LatAm probes under PL: "
            << report::fmt_percent(combined.fraction_at_or_below(100.0))
            << "  (paper: ~75%)\n";
  return 0;
}
