// Store scan-kernel bench: min / feasibility-count / percentile scans
// over the columnar store's raw RTT columns, scalar reference vs the
// active (AVX2 when available) kernels.
//
// The two families must agree bit for bit on every column — always
// asserted. Throughput (floats scanned per second) lands in the bench
// JSON as store_scan_scalar / store_scan, with the ratio gated by
// SHEARS_SCAN_GATE (default 0 = report only; run_benches.sh sets the
// acceptance bar on SIMD builds).
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "atlas/measurement.hpp"
#include "bench_common.hpp"
#include "serve/columnar.hpp"
#include "serve/scan.hpp"

namespace {

using namespace shears;
using clock_type = std::chrono::steady_clock;

struct ScanTotals {
  double floats_scanned = 0.0;
  float min_xor = 0.0f;  ///< xor-folded bits, for identity + DoNotOptimize
  std::uint64_t count_sum = 0;
  std::uint64_t quantile_bits = 0;
};

/// One full pass with one kernel family: min + budget count over every
/// column, p95 over every column large enough to be interesting.
ScanTotals scan_pass(const std::vector<std::span<const float>>& columns,
                     const serve::ScanKernels& kernels) {
  ScanTotals totals;
  std::uint32_t min_bits = 0;
  for (const std::span<const float> column : columns) {
    if (column.empty()) continue;
    min_bits ^= std::bit_cast<std::uint32_t>(
        kernels.min(column.data(), column.size()));
    totals.count_sum += kernels.count_le(column.data(), column.size(), 100.0f);
    totals.quantile_bits ^= std::bit_cast<std::uint64_t>(
        serve::quantile_type7(kernels, column.data(), column.size(), 0.95));
    totals.floats_scanned += static_cast<double>(column.size()) * 3.0;
  }
  totals.min_xor = std::bit_cast<float>(min_bits);
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_title("store scan kernels",
                     "vectorized min/count/percentile column scans");

  auto campaign = bench::make_standard_campaign(argc, argv);
  campaign.bench_name = "store_scan_campaign";
  const atlas::MeasurementDataset dataset = campaign.run();
  const serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{1});

  std::vector<std::span<const float>> columns;
  for (const serve::ColumnarStore::ShardView& view : store.shards()) {
    columns.push_back(view.rtt_ms);
  }
  std::printf("store: %zu rows across %zu columns\n", store.rows_stored(),
              columns.size());

  const serve::ScanKernels& scalar = serve::scalar_scan_kernels();
  const serve::ScanKernels& active = serve::active_scan_kernels();
  std::printf("kernels: scalar reference vs active \"%s\"\n", active.name);

  constexpr int kPasses = 40;
  auto start = clock_type::now();
  ScanTotals scalar_totals;
  for (int i = 0; i < kPasses; ++i) {
    scalar_totals = scan_pass(columns, scalar);
  }
  const double scalar_s =
      std::chrono::duration<double>(clock_type::now() - start).count();

  start = clock_type::now();
  ScanTotals active_totals;
  for (int i = 0; i < kPasses; ++i) {
    active_totals = scan_pass(columns, active);
  }
  const double active_s =
      std::chrono::duration<double>(clock_type::now() - start).count();

  // Byte-identity between the families is the exact-path gate.
  if (std::bit_cast<std::uint32_t>(scalar_totals.min_xor) !=
          std::bit_cast<std::uint32_t>(active_totals.min_xor) ||
      scalar_totals.count_sum != active_totals.count_sum ||
      scalar_totals.quantile_bits != active_totals.quantile_bits) {
    std::printf("FAIL: %s kernels diverge from the scalar reference\n",
                active.name);
    return 1;
  }

  const double items = scalar_totals.floats_scanned *
                       static_cast<double>(kPasses);
  bench::bench_record("store_scan_scalar", scalar_s, items);
  bench::bench_record("store_scan", active_s, items);
  const double speedup = active_s > 0.0 ? scalar_s / active_s : 0.0;
  bench::bench_record_value("store_scan_speedup", speedup);

  double gate = 0.0;
  if (const char* env = std::getenv("SHEARS_SCAN_GATE")) {
    gate = std::atof(env);
  }
  std::printf(
      "scan kernels: scalar %.3f s, %s %.3f s — %.2fx (gate %.1fx), "
      "results byte-identical\n",
      scalar_s, active.name, active_s, speedup, gate);
  if (gate > 0.0 && speedup < gate) {
    std::printf("FAIL: scan kernel speedup below gate\n");
    return 1;
  }
  return 0;
}
