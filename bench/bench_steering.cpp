// Steering study (after Jin et al. [36], the paper's closest relative):
// how much latency do real steering layers leave on the table versus the
// measured-best oracle the campaign minima represent?
#include <iostream>

#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "route/steering.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Steering study: measured-best oracle vs DNS geo-mapping vs "
               "BGP anycast\n"
            << "shape target: geography is a good-but-imperfect proxy; "
               "anycast adds a misrouted tail (Jin et al. [36])\n\n";

  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  const route::SteeringConfig config;

  report::TextTable table;
  table.set_header({"policy", "users", "misrouted", "mean penalty",
                    "p90 penalty", "worst"});
  for (const route::SteeringPolicy policy :
       {route::SteeringPolicy::kMeasuredBest,
        route::SteeringPolicy::kGeoNearest,
        route::SteeringPolicy::kAnycast}) {
    const route::SteeringPenalty p =
        route::evaluate_steering(model, cloud, policy, config, 2020);
    table.add_row({
        std::string(to_string(policy)),
        std::to_string(p.users),
        std::to_string(p.misrouted),
        report::fmt(p.mean_penalty_ms, 2) + " ms",
        report::fmt(p.p90_penalty_ms, 2) + " ms",
        report::fmt(p.worst_penalty_ms, 1) + " ms",
    });
  }
  std::cout << table.to_string() << '\n';
  std::cout << "implication for the paper: campaign minima (the oracle) are "
               "an optimistic bound on what applications see behind real "
               "steering — strengthening, not weakening, the 'cloud is close "
               "enough' conclusion wherever the oracle already meets a "
               "threshold\n";
  return 0;
}
