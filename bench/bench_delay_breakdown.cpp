// §4.3 "Where is the Delay?" — decomposes expected RTT into path segments
// for representative user populations, quantifying the section's two
// findings: under-served regions lose their budget to stretched transit,
// wireless users lose it on the last mile.
#include <iostream>

#include "geo/country.hpp"
#include "net/segments.hpp"
#include "report/table.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Section 4.3: where is the delay?\n"
            << "paper shape targets: (1) insufficient infrastructure -> "
               "transit dominates in under-served regions; (2) the wireless "
               "last mile dominates for wireless users in served regions\n\n";

  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();

  struct Scenario {
    const char* label;
    const char* iso2;
    net::AccessTechnology access;
  };
  const Scenario scenarios[] = {
      {"Germany, ethernet", "DE", net::AccessTechnology::kEthernet},
      {"Germany, DSL", "DE", net::AccessTechnology::kDsl},
      {"Germany, LTE", "DE", net::AccessTechnology::kLte},
      {"United States, cable", "US", net::AccessTechnology::kCable},
      {"Brazil, DSL", "BR", net::AccessTechnology::kDsl},
      {"India, LTE", "IN", net::AccessTechnology::kLte},
      {"Kenya, DSL", "KE", net::AccessTechnology::kDsl},
      {"Chad, ethernet", "TD", net::AccessTechnology::kEthernet},
  };

  report::TextTable table;
  table.set_header({"user", "nearest region", "RTT (ms)", "last-mile",
                    "access-net", "transit", "peering", "DC"});
  for (const Scenario& s : scenarios) {
    const geo::Country* country = geo::find_country(s.iso2);
    const net::Endpoint user{country->site, country->tier, s.access};
    // Nearest region under the campaign's continent scoping.
    const topology::CloudRegion* best = nullptr;
    double best_rtt = 0.0;
    for (const topology::CloudRegion* region : cloud.regions()) {
      const auto rc = topology::region_continent(*region);
      if (rc != country->continent &&
          geo::measurement_fallback(country->continent) != rc) {
        continue;
      }
      const double rtt = model.baseline_rtt_ms(user, *region);
      if (best == nullptr || rtt < best_rtt) {
        best = region;
        best_rtt = rtt;
      }
    }
    const net::SegmentBreakdown breakdown =
        net::decompose_path(model, user, *best);
    table.add_row({
        s.label,
        std::string(best->city),
        report::fmt(breakdown.total(), 1),
        report::fmt_percent(breakdown.share(net::PathSegment::kLastMile), 0),
        report::fmt_percent(breakdown.share(net::PathSegment::kAccessNetwork), 0),
        report::fmt_percent(breakdown.share(net::PathSegment::kTransit), 0),
        report::fmt_percent(
            breakdown.share(net::PathSegment::kPeeringOrBackbone), 0),
        report::fmt_percent(breakdown.share(net::PathSegment::kDatacenter), 0),
    });
  }
  std::cout << table.to_string() << '\n';
  std::cout << "reading: the German LTE row is last-mile-bound (edge cannot "
               "fix it); the Chad row is transit-bound (only closer "
               "infrastructure fixes it) — the two §4.3 findings\n";
  return 0;
}
