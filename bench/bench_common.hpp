// Shared plumbing for the figure benches: every bench regenerates one
// table/figure of the paper from a standard campaign. A day count can be
// passed as argv[1] — 30 (default) gives second-scale runs whose shapes
// already match; 270 reproduces the paper's nine-month campaign and its
// ~3M-datapoint scale.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::bench {

// ---------------------------------------------------------------------------
// Perf-regression JSON emission.
//
// Every bench binary appends its timings to one JSON file (default
// `BENCH_campaign.json` in the working directory, overridable via
// SHEARS_BENCH_JSON; set it to the empty string to disable). Entries are
// keyed by name and merged line-by-line, so the figure benches and both
// micro benches can accumulate into the same file across separate
// processes — `bench/run_benches.sh` relies on that.

/// Path of the bench JSON file; empty disables recording.
inline std::string bench_json_path() {
  const char* env = std::getenv("SHEARS_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string("BENCH_campaign.json");
}

/// Inserts/replaces the single-line entry `{"name": <name>, <fields>}` in
/// the bench JSON file. The file is one entry per line so a plain
/// read-filter-rewrite merges results from multiple binaries without a
/// JSON parser.
inline void bench_json_record_line(const std::string& name,
                                   const std::string& fields) {
  const std::string path = bench_json_path();
  if (path.empty()) return;
  const std::string key = "\"name\": \"" + name + "\"";
  std::vector<std::string> entries;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("  {\"name\": \"", 0) != 0) continue;   // header/footer
      if (line.find(key) != std::string::npos) continue;     // superseded
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      entries.push_back(line);
    }
  }
  entries.push_back("  {" + key + ", " + fields + "}");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("bench: cannot open " + path + " for writing");
  }
  out << "{\"bench\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << entries[i] << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "]}\n";
  out.flush();
  if (!out) {
    // The file was truncated before the rewrite — losing the recorded
    // history silently would defeat the perf-regression gate.
    throw std::runtime_error("bench: write to " + path + " failed");
  }
}

/// Records a timed run: wall clock, item count, and derived throughput
/// (items per second — the perf-regression headline number).
inline void bench_record(const std::string& name, double wall_seconds,
                         double items) {
  std::ostringstream fields;
  fields << std::fixed << std::setprecision(6)
         << "\"wall_seconds\": " << wall_seconds
         << ", \"items\": " << std::setprecision(0) << items
         << ", \"items_per_second\": " << std::setprecision(1)
         << (wall_seconds > 0.0 ? items / wall_seconds : 0.0);
  bench_json_record_line(name, fields.str());
}

/// Records a bare scalar (e.g. a speedup ratio).
inline void bench_record_value(const std::string& name, double value) {
  std::ostringstream fields;
  fields << std::fixed << std::setprecision(6) << "\"value\": " << value;
  bench_json_record_line(name, fields.str());
}

/// Day count for the standard campaign: argv[1] wins, then
/// SHEARS_BENCH_DAYS, then 30.
inline int bench_duration_days(int argc, char** argv) {
  int days = 0;
  if (argc > 1) days = std::atoi(argv[1]);
  if (days <= 0) {
    if (const char* env = std::getenv("SHEARS_BENCH_DAYS")) {
      days = std::atoi(env);
    }
  }
  return days > 0 ? days : 30;
}

struct StandardCampaign {
  atlas::ProbeFleet fleet;
  topology::CloudRegistry registry;
  net::LatencyModel model;
  atlas::CampaignConfig config;
  /// Key the run's timing is recorded under (binary basename).
  std::string bench_name = "campaign";

  [[nodiscard]] atlas::MeasurementDataset run() const {
    const auto start = std::chrono::steady_clock::now();
    auto dataset = atlas::Campaign(fleet, registry, model, config).run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    bench_record(bench_name, seconds, static_cast<double>(dataset.size()));
    return dataset;
  }
};

inline StandardCampaign make_standard_campaign(int argc, char** argv) {
  atlas::CampaignConfig config;
  config.duration_days = bench_duration_days(argc, argv);
  std::string name = argc > 0 && argv[0] != nullptr ? argv[0] : "campaign";
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return StandardCampaign{
      atlas::ProbeFleet::generate({}),
      topology::CloudRegistry::campaign_footprint(),
      net::LatencyModel{},
      config,
      name,
  };
}

inline void print_title(const std::string& figure, const std::string& claim) {
  std::cout << "==============================================================="
               "=========\n"
            << figure << "\n"
            << "paper shape target: " << claim << "\n"
            << "==============================================================="
               "=========\n";
}

}  // namespace shears::bench
