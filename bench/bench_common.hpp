// Shared plumbing for the figure benches: every bench regenerates one
// table/figure of the paper from a standard campaign. A day count can be
// passed as argv[1] — 30 (default) gives second-scale runs whose shapes
// already match; 270 reproduces the paper's nine-month campaign and its
// ~3M-datapoint scale.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::bench {

struct StandardCampaign {
  atlas::ProbeFleet fleet;
  topology::CloudRegistry registry;
  net::LatencyModel model;
  atlas::CampaignConfig config;

  [[nodiscard]] atlas::MeasurementDataset run() const {
    return atlas::Campaign(fleet, registry, model, config).run();
  }
};

inline StandardCampaign make_standard_campaign(int argc, char** argv) {
  atlas::CampaignConfig config;
  config.duration_days = argc > 1 ? std::atoi(argv[1]) : 30;
  if (config.duration_days <= 0) config.duration_days = 30;
  return StandardCampaign{
      atlas::ProbeFleet::generate({}),
      topology::CloudRegistry::campaign_footprint(),
      net::LatencyModel{},
      config,
  };
}

inline void print_title(const std::string& figure, const std::string& claim) {
  std::cout << "==============================================================="
               "=========\n"
            << figure << "\n"
            << "paper shape target: " << claim << "\n"
            << "==============================================================="
               "=========\n";
}

}  // namespace shears::bench
