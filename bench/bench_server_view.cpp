// The server-side view (Schlinker et al. [60], quoted in §1 and §5):
// per cloud region, the latency distribution over the clients it serves.
// The paper leans on Facebook's result that clients "rarely observe
// latencies above 40 ms"; this bench reproduces that view from the
// campaign dataset.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Server-side view: per-region client RTT distributions",
      "in well-served markets the serving region sees most clients under "
      "40 ms (the Facebook anchor); under-served catchments are the "
      "exception, not the rule");

  const auto dataset = setup.run();
  const auto views = core::server_side_view(dataset);

  std::cout << "regions serving clients: " << views.size() << "\n\n";
  report::TextTable table;
  table.set_header({"region", "provider", "clients", "median", "p90",
                    "<=40ms"});
  for (std::size_t i = 0; i < views.size() && i < 15; ++i) {
    const core::RegionView& v = views[i];
    table.add_row({
        std::string(v.region->region_id) + " (" + std::string(v.region->city) +
            ")",
        std::string(to_string(v.region->provider)),
        std::to_string(v.clients),
        report::fmt(v.median_ms, 1) + " ms",
        report::fmt(v.p90_ms, 1) + " ms",
        report::fmt_percent(v.under_40ms),
    });
  }
  std::cout << table.to_string() << '\n';

  // Global weighted share of samples under 40 ms.
  double under = 0.0;
  double total = 0.0;
  std::size_t regions_mostly_under = 0;
  for (const core::RegionView& v : views) {
    under += v.under_40ms * static_cast<double>(v.samples);
    total += static_cast<double>(v.samples);
    regions_mostly_under += v.under_40ms >= 0.5;
  }
  std::cout << "all serving regions: "
            << report::fmt_percent(total > 0 ? under / total : 0.0)
            << " of client samples under 40 ms (Facebook: \"rarely above "
               "40 ms\"); " << regions_mostly_under << "/" << views.size()
            << " regions serve a mostly-under-40ms population\n";
  return 0;
}
