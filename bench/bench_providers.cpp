// Provider comparison (CloudCmp-style, [40] in the paper): per-provider
// reachability from the same fleet — median best RTT, share of probes
// under MTP/PL, split by backbone class.
#include <iostream>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Provider comparison: per-provider proximity from one fleet\n"
            << "shape target: hyperscalers (dense footprints + private "
               "backbones) lead; public-transit providers trail\n\n";

  const auto fleet = atlas::ProbeFleet::generate({});
  const net::LatencyModel model;

  report::TextTable table;
  table.set_header({"provider", "regions", "backbone", "median best RTT",
                    "F(MTP)", "F(PL)"});
  for (const topology::CloudProvider provider : topology::kAllProviders) {
    const auto registry = topology::CloudRegistry::for_providers({provider});
    atlas::CampaignConfig config;
    config.duration_days = 10;
    const auto dataset =
        atlas::Campaign(fleet, registry, model, config).run();
    const auto mins = core::min_rtt_by_continent(dataset);
    std::vector<double> all;
    for (const auto& continent : mins) {
      all.insert(all.end(), continent.begin(), continent.end());
    }
    const stats::Ecdf ecdf(all);
    table.add_row({
        std::string(to_string(provider)),
        std::to_string(registry.size()),
        backbone_class(provider) == topology::BackboneClass::kPrivate
            ? "private"
            : "public",
        report::fmt(ecdf.median(), 1),
        report::fmt_percent(ecdf.fraction_at_or_below(20.0)),
        report::fmt_percent(ecdf.fraction_at_or_below(100.0)),
    });
  }
  std::cout << table.to_string() << '\n';
  std::cout << "note: per-provider numbers measure each provider alone; the "
               "paper's figures use the union of all 101 regions\n";
  return 0;
}
