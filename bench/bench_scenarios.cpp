// Scenario comparison — runs every shipped scenario file and contrasts
// the headline statistics. One table answers: how do the paper's numbers
// move in a 5G world, against the 2014 cloud, with hyperscalers only, or
// over a much noisier Internet?
#include <fstream>
#include <iostream>

#include "atlas/campaign.hpp"
#include "config/scenario.hpp"
#include "core/access_comparison.hpp"
#include "core/analysis.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"

#ifndef SHEARS_SOURCE_DIR
#define SHEARS_SOURCE_DIR "."
#endif

int main() {
  using namespace shears;

  std::cout << "Scenario sweep: the shipped what-if worlds side by side\n\n";

  const char* files[] = {
      "five_g_delivers.ini", "cloud_2014.ini", "hyperscalers_only.ini",
      "stress_noisy_network.ini",
  };

  report::TextTable table;
  table.set_header({"scenario", "regions", "<10ms", ">=100ms", "EU F(MTP)",
                    "wireless/wired"});

  // Baseline: the defaults (2019/2020 world, 30 days).
  const auto run_row = [&table](const config::Scenario& scenario) {
    const atlas::ProbeFleet fleet =
        atlas::ProbeFleet::generate(scenario.fleet);
    const topology::CloudRegistry registry = scenario.make_registry();
    const net::LatencyModel model(scenario.model);
    atlas::CampaignConfig config = scenario.campaign;
    if (config.duration_days > 30) config.duration_days = 30;  // keep quick
    const auto dataset =
        atlas::Campaign(fleet, registry, model, config).run();
    const auto bands =
        core::band_country_latencies(core::country_min_latency(dataset));
    const auto mins = core::min_rtt_by_continent(dataset);
    const stats::Ecdf eu(mins[geo::index_of(geo::Continent::kEurope)]);
    const core::AccessComparison cmp = core::compare_access(dataset);
    table.add_row({
        scenario.name,
        std::to_string(registry.size()),
        std::to_string(bands.under_10),
        std::to_string(bands.over_100),
        report::fmt_percent(eu.fraction_at_or_below(20.0)),
        report::fmt(cmp.median_ratio, 2) + "x",
    });
  };

  config::Scenario base;
  base.name = "baseline-2020";
  base.campaign.duration_days = 30;
  run_row(base);

  for (const char* file : files) {
    const std::string path =
        std::string(SHEARS_SOURCE_DIR) + "/scenarios/" + file;
    std::ifstream in(path);
    if (!in) {
      std::cerr << "missing " << path << '\n';
      continue;
    }
    run_row(config::parse_scenario(in));
  }
  std::cout << table.to_string() << '\n';
  std::cout << "reading: a delivered 5G collapses the wireless gap but "
               "leaves the country bands; the 2014 cloud is the world the "
               "edge pitch was written for; a noisier Internet shifts "
               "levels, not conclusions\n";
  return 0;
}
