// Diurnal analysis — the congestion cycle the three-hourly schedule
// (§4.1) samples: median RTT by probe-local hour, overall and split by
// access class. Not a paper figure; validates that the longitudinal
// Fig. 7 comparison is not a time-of-day artefact.
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "report/plot.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Diurnal profile: median RTT by probe-local hour",
      "evening peak (congested last miles), overnight trough; the wired vs "
      "wireless gap persists at every hour");

  const auto dataset = setup.run();
  const core::DiurnalProfile profile =
      core::diurnal_profile(dataset, setup.config.interval_hours);

  report::TextTable table;
  table.set_header({"local hour", "bursts", "median RTT (ms)"});
  for (int h = 0; h < 24; h += setup.config.interval_hours) {
    const auto idx = static_cast<std::size_t>(h);
    table.add_row({std::to_string(h) + ":00",
                   std::to_string(profile.count[idx]),
                   report::fmt(profile.median_ms[idx], 1)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "peak hour: " << profile.peak_hour()
            << ":00 local, peak/trough ratio "
            << report::fmt(profile.peak_to_trough(), 2) << "\n\n";

  std::vector<std::pair<std::string, double>> bars;
  for (int h = 0; h < 24; h += setup.config.interval_hours) {
    const auto idx = static_cast<std::size_t>(h);
    if (profile.count[idx] == 0) continue;
    bars.emplace_back(std::to_string(h) + ":00", profile.median_ms[idx]);
  }
  std::cout << report::render_bars(bars) << '\n';
  std::cout << "caveat: hourly buckets mix populations (local hour "
               "correlates with longitude, hence continent); the peak/trough "
               "ratio across all 24 buckets includes that composition "
               "effect, the 3-hourly rows above are the cleaner signal\n";
  return 0;
}
