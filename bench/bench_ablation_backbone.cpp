// Ablation A3 — private vs public provider backbones (§4.1's provider
// distinction): compares per-probe best RTT achieved against the
// private-backbone providers (Amazon/Google/Azure/Alibaba) with the
// public-transit ones (Digital Ocean/Linode/Vultr).
#include <iostream>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

struct BackboneStats {
  std::size_t probes = 0;
  double median = 0.0;
  double p90 = 0.0;
  double under_mtp = 0.0;
};

BackboneStats run_for(const atlas::ProbeFleet& fleet,
                      const topology::CloudRegistry& registry) {
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 10;
  const auto dataset =
      atlas::Campaign(fleet, registry, model, config).run();
  const auto mins = core::min_rtt_by_continent(dataset);
  std::vector<double> all;
  for (const auto& continent : mins) {
    all.insert(all.end(), continent.begin(), continent.end());
  }
  const stats::Ecdf ecdf(all);
  return {all.size(), ecdf.median(), ecdf.percentile(90.0),
          ecdf.fraction_at_or_below(20.0)};
}

}  // namespace

int main() {
  std::cout << "Ablation A3: private-backbone vs public-transit providers\n"
            << "paper shape target: private backbones (wide ISP peering) "
               "deliver lower medians and tighter tails than public-transit "
               "providers\n\n";

  atlas::PlacementConfig placement;
  placement.probe_count = 1600;
  const auto fleet = atlas::ProbeFleet::generate(placement);

  const auto private_reg = topology::CloudRegistry::for_providers(
      {topology::CloudProvider::kAmazon, topology::CloudProvider::kGoogle,
       topology::CloudProvider::kAzure, topology::CloudProvider::kAlibaba});
  const auto public_reg = topology::CloudRegistry::for_providers(
      {topology::CloudProvider::kDigitalOcean,
       topology::CloudProvider::kLinode, topology::CloudProvider::kVultr});

  const BackboneStats priv = run_for(fleet, private_reg);
  const BackboneStats pub = run_for(fleet, public_reg);

  report::TextTable table;
  table.set_header({"backbone", "regions", "probes", "median best RTT",
                    "p90 best RTT", "share under MTP"});
  table.add_row({"private (AWS/GCP/Azure/Alibaba)",
                 std::to_string(private_reg.size()),
                 std::to_string(priv.probes), report::fmt(priv.median, 1),
                 report::fmt(priv.p90, 1), report::fmt_percent(priv.under_mtp)});
  table.add_row({"public (DO/Linode/Vultr)", std::to_string(public_reg.size()),
                 std::to_string(pub.probes), report::fmt(pub.median, 1),
                 report::fmt(pub.p90, 1), report::fmt_percent(pub.under_mtp)});
  std::cout << table.to_string() << '\n';

  std::cout << "note: the public set also fields fewer regions ("
            << public_reg.size() << " vs " << private_reg.size()
            << "), compounding the transit penalty — both effects push "
               "public-transit latencies up\n";
  return 0;
}
