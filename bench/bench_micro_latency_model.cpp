// Microbenchmarks for the latency model — the simulator's hot path: a
// nine-month campaign samples tens of millions of pings. The custom main
// also times a recomputing-vs-cached burst loop and records both in the
// bench JSON (see bench_common.hpp).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "bench_common.hpp"
#include "geo/country.hpp"
#include "net/burst_lanes.hpp"
#include "net/latency_model.hpp"
#include "stats/distributions.hpp"
#include "stats/lanes.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

const topology::CloudRegion& frankfurt() {
  for (const topology::CloudRegion& r : topology::all_regions()) {
    if (r.region_id == "eu-central-1") return r;
  }
  std::abort();
}

void BM_PathCharacterize(benchmark::State& state) {
  const net::PathModelConfig config;
  const geo::GeoPoint src{48.21, 16.37};
  const geo::GeoPoint dst{50.11, 8.68};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::characterize_path(
        config, src, geo::ConnectivityTier::kTier1, dst,
        topology::BackboneClass::kPrivate));
  }
}
BENCHMARK(BM_PathCharacterize);

void BM_BaselineRtt(benchmark::State& state) {
  const net::LatencyModel model;
  const net::Endpoint src{{48.21, 16.37}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kCable};
  const topology::CloudRegion& dst = frankfurt();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.baseline_rtt_ms(src, dst));
  }
}
BENCHMARK(BM_BaselineRtt);

void BM_PingOnce(benchmark::State& state) {
  const net::LatencyModel model;
  const net::Endpoint src{{48.21, 16.37}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kCable};
  const topology::CloudRegion& dst = frankfurt();
  stats::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ping_once(src, dst, rng));
  }
}
BENCHMARK(BM_PingOnce);

void BM_PingBurst3(benchmark::State& state) {
  const net::LatencyModel model;
  const net::Endpoint src{{40.71, -74.01}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kLte};
  const topology::CloudRegion& dst = frankfurt();
  stats::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ping(src, dst, 3, rng));
  }
}
BENCHMARK(BM_PingBurst3);

void BM_PingBurst3Cached(benchmark::State& state) {
  // The campaign hot path: the pair's path and access profile come from
  // the sampling cache instead of being recomputed per packet.
  const net::LatencyModel model;
  const net::Endpoint src{{40.71, -74.01}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kLte};
  const topology::CloudRegion& dst = frankfurt();
  const net::CachedPath path = model.cache_path(src, dst);
  const net::CachedProfile profile = model.cache_profile(src);
  stats::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ping_cached(path, profile, 3, 1.0, {}, rng));
  }
}
BENCHMARK(BM_PingBurst3Cached);

void BM_AccessSample(benchmark::State& state) {
  const net::AccessProfile profile = net::profile_for(
      net::AccessTechnology::kLte, geo::ConnectivityTier::kTier2);
  stats::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::sample_access_latency(profile, rng));
  }
}
BENCHMARK(BM_AccessSample);

/// Times a recomputing-vs-cached burst loop over one representative pair
/// (same RNG seed for both — the streams stay aligned, so the two loops
/// do identical sampling work) and records both in the bench JSON.
void run_burst_comparison() {
  using clock = std::chrono::steady_clock;
  constexpr int kBursts = 500000;

  const net::LatencyModel model;
  const net::Endpoint src{{40.71, -74.01}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kLte};
  const topology::CloudRegion& dst = frankfurt();

  stats::Xoshiro256 rng(7);
  double sink = 0.0;
  auto start = clock::now();
  for (int i = 0; i < kBursts; ++i) {
    sink += model.ping_perturbed(src, dst, 3, 1.0, {}, rng).avg_ms;
  }
  const double uncached_s =
      std::chrono::duration<double>(clock::now() - start).count();

  const net::CachedPath path = model.cache_path(src, dst);
  const net::CachedProfile profile = model.cache_profile(src);
  stats::Xoshiro256 cached_rng(7);
  double cached_sink = 0.0;
  start = clock::now();
  for (int i = 0; i < kBursts; ++i) {
    cached_sink += model.ping_cached(path, profile, 3, 1.0, {}, cached_rng).avg_ms;
  }
  const double cached_s =
      std::chrono::duration<double>(clock::now() - start).count();

  bench::bench_record("burst_uncached", uncached_s, kBursts);
  bench::bench_record("burst_cached", cached_s, kBursts);
  bench::bench_record_value("burst_cache_speedup",
                            cached_s > 0.0 ? uncached_s / cached_s : 0.0);
  std::printf(
      "\nburst comparison (%d bursts): uncached %.3f s, cached %.3f s, "
      "%.2fx%s\n",
      kBursts, uncached_s, cached_s, uncached_s / cached_s,
      sink == cached_sink ? ", identical samples" : " — SAMPLES DIVERGED");
}

/// Times the cached scalar burst loop against the 8-lane batched kernel
/// on the same representative pair (ISSUE 7's tentpole number). The two
/// loops do the same sampling work per burst — same burst state, same
/// per-lane RNG discipline — so items/s is an apples-to-apples kernel
/// comparison. Gated by SHEARS_BATCHED_GATE (default 2x; run_benches.sh
/// raises it to the 3x acceptance bar; 0 disables).
int run_batched_comparison() {
  using clock = std::chrono::steady_clock;
  constexpr int kBursts = 500000;
  constexpr int kPackets = 3;

  const net::LatencyModel model;
  const net::Endpoint src{{40.71, -74.01}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kLte};
  const topology::CloudRegion& dst = frankfurt();
  const net::CachedPath path = model.cache_path(src, dst);
  const net::CachedProfile profile = model.cache_profile(src);

  stats::Xoshiro256 rng(11);
  double scalar_sink = 0.0;
  auto start = clock::now();
  for (int i = 0; i < kBursts; ++i) {
    scalar_sink +=
        model.ping_cached(path, profile, kPackets, 1.0, {}, rng).avg_ms;
  }
  const double scalar_s =
      std::chrono::duration<double>(clock::now() - start).count();

  const double excess_sigma =
      stats::lognormal_sigma_of_spread(model.config().excess_spread);
  const net::detail::BurstState state = net::detail::make_burst_state(
      path, profile, 1.0, {}, excess_sigma);
  net::BurstStateLanes lanes_state;
  for (std::size_t l = 0; l < net::kBurstLanes; ++l) {
    lanes_state.set_lane(l, state);
  }
  stats::Xoshiro256 batched_root(11);
  std::array<std::uint64_t, net::kBurstLanes> ids{};
  for (std::size_t l = 0; l < net::kBurstLanes; ++l) ids[l] = l;
  stats::XoshiroLanes lanes_rng = stats::XoshiroLanes::striped(
      batched_root, std::span<const std::uint64_t>(ids.data(), ids.size()));
  std::array<net::PingResult, net::kBurstLanes> results;
  const int blocks = kBursts / static_cast<int>(net::kBurstLanes);
  double batched_sink = 0.0;
  start = clock::now();
  for (int i = 0; i < blocks; ++i) {
    net::sample_burst_lanes(model.config(), lanes_state, excess_sigma,
                            kPackets, lanes_rng, results);
    for (std::size_t l = 0; l < net::kBurstLanes; ++l) {
      batched_sink += results[l].avg_ms;
    }
  }
  const double batched_s =
      std::chrono::duration<double>(clock::now() - start).count();
  const double batched_items =
      static_cast<double>(blocks) * static_cast<double>(net::kBurstLanes);

  bench::bench_record("burst_batched", batched_s, batched_items);
  const double scalar_rate = static_cast<double>(kBursts) / scalar_s;
  const double batched_rate = batched_items / batched_s;
  const double speedup = scalar_rate > 0.0 ? batched_rate / scalar_rate : 0.0;
  bench::bench_record_value("burst_batched_speedup", speedup);

  double gate = 2.0;
  if (const char* env = std::getenv("SHEARS_BATCHED_GATE")) {
    gate = std::atof(env);
  }
  std::printf(
      "batched comparison (%d bursts x %d packets): scalar %.3f s "
      "(%.0f/s), batched %.3f s (%.0f/s), %.2fx (gate %.1fx)\n",
      kBursts, kPackets, scalar_s, scalar_rate, batched_s, batched_rate,
      speedup, gate);
  (void)scalar_sink;
  (void)batched_sink;
  if (gate > 0.0 && speedup < gate) {
    std::printf("FAIL: batched kernel speedup below gate\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_burst_comparison();
  return run_batched_comparison();
}
