// Microbenchmarks for the latency model — the simulator's hot path: a
// nine-month campaign samples tens of millions of pings.
#include <benchmark/benchmark.h>

#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

const topology::CloudRegion& frankfurt() {
  for (const topology::CloudRegion& r : topology::all_regions()) {
    if (r.region_id == "eu-central-1") return r;
  }
  std::abort();
}

void BM_PathCharacterize(benchmark::State& state) {
  const net::PathModelConfig config;
  const geo::GeoPoint src{48.21, 16.37};
  const geo::GeoPoint dst{50.11, 8.68};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::characterize_path(
        config, src, geo::ConnectivityTier::kTier1, dst,
        topology::BackboneClass::kPrivate));
  }
}
BENCHMARK(BM_PathCharacterize);

void BM_BaselineRtt(benchmark::State& state) {
  const net::LatencyModel model;
  const net::Endpoint src{{48.21, 16.37}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kCable};
  const topology::CloudRegion& dst = frankfurt();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.baseline_rtt_ms(src, dst));
  }
}
BENCHMARK(BM_BaselineRtt);

void BM_PingOnce(benchmark::State& state) {
  const net::LatencyModel model;
  const net::Endpoint src{{48.21, 16.37}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kCable};
  const topology::CloudRegion& dst = frankfurt();
  stats::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ping_once(src, dst, rng));
  }
}
BENCHMARK(BM_PingOnce);

void BM_PingBurst3(benchmark::State& state) {
  const net::LatencyModel model;
  const net::Endpoint src{{40.71, -74.01}, geo::ConnectivityTier::kTier1,
                          net::AccessTechnology::kLte};
  const topology::CloudRegion& dst = frankfurt();
  stats::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ping(src, dst, 3, rng));
  }
}
BENCHMARK(BM_PingBurst3);

void BM_AccessSample(benchmark::State& state) {
  const net::AccessProfile profile = net::profile_for(
      net::AccessTechnology::kLte, geo::ConnectivityTier::kTier2);
  stats::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::sample_access_latency(profile, rng));
  }
}
BENCHMARK(BM_AccessSample);

}  // namespace

BENCHMARK_MAIN();
