// Serving-layer acceptance bench: columnar-store build throughput
// (rows/s) and oracle query throughput (qps) across a thread × batch
// grid, against the brute-force full-scan reference.
//
// The indexed batched path must (a) answer byte-identically to the
// reference on the compared subset — always asserted, never relaxed —
// and (b) beat the reference's throughput by at least
// SHEARS_SERVE_GATE_SPEEDUP at batch 4096 (default 10; the perf smoke
// test keeps the gate but shrinks the campaign). Numbers land in the
// bench JSON (SHEARS_BENCH_JSON, default BENCH_serve.json here) — see
// bench/run_benches.sh, which routes them to results/BENCH_serve.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "atlas/measurement.hpp"
#include "bench_common.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "serve/reference.hpp"

namespace {

using namespace shears;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Deterministic mixed batch over the fleet: all three kinds, location
/// and ISO-2 resolution, access filters, real catalog slugs.
std::vector<serve::Query> make_queries(const atlas::ProbeFleet& fleet,
                                       std::size_t count) {
  const std::span<const atlas::Probe> probes = fleet.probes();
  const std::span<const apps::Application> catalog =
      apps::application_catalog();
  std::vector<serve::Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const atlas::Probe& probe = probes[(i * 131) % probes.size()];
    serve::Query q;
    q.kind = static_cast<serve::QueryKind>(i % 3);
    q.where = probe.endpoint.location;
    if (i % 2 == 0) q.country_iso2 = probe.country->iso2;
    q.any_access = (i % 5) != 0;
    q.access = probe.endpoint.access;
    if (q.kind == serve::QueryKind::kFeasibility) {
      q.app_id = catalog[i % catalog.size()].id;
    }
    if (q.kind == serve::QueryKind::kTopK) {
      q.budget_ms = 20.0 + static_cast<double>(i % 7) * 40.0;
      q.k = static_cast<std::uint32_t>(1 + i % 8);
    }
    queries.push_back(q);
  }
  return queries;
}

/// Answers `queries` repeatedly in slices of `batch`, returns qps.
double time_batched(const serve::Oracle& oracle,
                    const std::vector<serve::Query>& queries,
                    std::size_t batch, std::vector<serve::Answer>& out) {
  out.resize(queries.size());
  const auto start = clock_type::now();
  for (std::size_t at = 0; at < queries.size(); at += batch) {
    const std::size_t n = std::min(batch, queries.size() - at);
    oracle.answer(std::span<const serve::Query>(queries).subspan(at, n),
                  std::span<serve::Answer>(out).subspan(at, n));
  }
  const double wall = seconds_since(start);
  return wall > 0.0 ? static_cast<double>(queries.size()) / wall : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_title("serving layer: columnar store + latency oracle",
                     "indexed batched queries >= 10x a full-scan reference");

  // The standard campaign dataset (30 days default; 270 = paper scale).
  auto campaign = bench::make_standard_campaign(argc, argv);
  campaign.bench_name = "serve_campaign";
  const atlas::MeasurementDataset dataset = campaign.run();
  const auto rows = static_cast<double>(dataset.size());

  // Store build throughput (rows ingested + summaries refreshed per
  // second), hardware concurrency.
  auto start = clock_type::now();
  const serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{0});
  const double build_s = seconds_since(start);
  bench::bench_record("serve_store_build", build_s, rows);
  std::printf("store build: %zu rows in %.3f s (%.0f rows/s, %zu shards)\n",
              dataset.size(), build_s, rows / build_s, store.shard_count());

  // Query throughput across the thread x batch grid.
  const std::vector<serve::Query> queries = make_queries(dataset.fleet(), 4096);
  std::vector<serve::Answer> answers;
  double qps_b4096 = 0.0;
  double qps_t1_b4096 = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    serve::OracleConfig config;
    config.threads = threads;
    const serve::Oracle oracle(&store, config);
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
      const double qps = time_batched(oracle, queries, batch, answers);
      if (threads == 8 && batch == 4096) qps_b4096 = qps;
      if (threads == 1 && batch == 4096) qps_t1_b4096 = qps;
      bench::bench_record("serve_qps_t" + std::to_string(threads) + "_b" +
                              std::to_string(batch),
                          static_cast<double>(queries.size()) / qps,
                          static_cast<double>(queries.size()));
      std::printf("oracle: %4zu-query batches, %zu thread(s): %12.0f qps\n",
                  batch, threads, qps);
    }
  }

  // Fan-out sanity: asking for more threads must never cost throughput
  // at the big batch size (the regression the per-shard work cutoff in
  // core::resolve_threads fixes). Re-measure best-of-3 before judging —
  // a single pass is scheduler-noise-limited — and leave 15% headroom.
  if (qps_b4096 < 0.85 * qps_t1_b4096) {
    serve::OracleConfig c1;
    c1.threads = 1;
    serve::OracleConfig c8;
    c8.threads = 8;
    const serve::Oracle o1(&store, c1);
    const serve::Oracle o8(&store, c8);
    for (int i = 0; i < 3; ++i) {
      qps_t1_b4096 =
          std::max(qps_t1_b4096, time_batched(o1, queries, 4096, answers));
      qps_b4096 =
          std::max(qps_b4096, time_batched(o8, queries, 4096, answers));
    }
  }
  bench::bench_record_value(
      "serve_qps_parallel_ratio_b4096",
      qps_t1_b4096 > 0.0 ? qps_b4096 / qps_t1_b4096 : 0.0);
  std::printf("fan-out ratio (t8/t1 @ batch 4096): %.2f\n",
              qps_t1_b4096 > 0.0 ? qps_b4096 / qps_t1_b4096 : 0.0);
  if (qps_b4096 < 0.85 * qps_t1_b4096) {
    std::printf("FAIL: 8-thread oracle slower than 1-thread at batch 4096\n");
    return 1;
  }

  // Full-scan reference on a subset (each query re-scans every record —
  // a full 4096 would take minutes at paper scale). Byte-identity on the
  // subset is always asserted strictly.
  const std::size_t ref_count = std::min<std::size_t>(queries.size(), 256);
  const std::vector<serve::Query> subset(queries.begin(),
                                         queries.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 ref_count));
  const serve::ReferenceOracle reference(&dataset);
  start = clock_type::now();
  const std::vector<serve::Answer> expected = reference.answer(subset);
  const double ref_s = seconds_since(start);
  const double ref_qps =
      ref_s > 0.0 ? static_cast<double>(ref_count) / ref_s : 0.0;
  bench::bench_record("serve_fullscan_reference", ref_s,
                      static_cast<double>(ref_count));
  std::printf("reference: %zu full-scan queries in %.3f s (%.0f qps)\n",
              ref_count, ref_s, ref_qps);

  serve::OracleConfig config;
  config.threads = 8;
  const serve::Oracle oracle(&store, config);
  const std::vector<serve::Answer> got = oracle.answer(subset);
  std::string why;
  const bool identical = serve::answers_identical(expected, got, why);
  bench::bench_record_value("serve_identical", identical ? 1.0 : 0.0);
  if (!identical) {
    std::printf("FAIL: oracle diverges from full-scan reference: %s\n",
                why.c_str());
    return 1;
  }

  const double speedup = ref_qps > 0.0 ? qps_b4096 / ref_qps : 0.0;
  bench::bench_record_value("serve_speedup_vs_fullscan_b4096", speedup);
  double gate = 10.0;
  if (const char* env = std::getenv("SHEARS_SERVE_GATE_SPEEDUP")) {
    if (const double v = std::atof(env); v > 0.0) gate = v;
  }
  std::printf(
      "speedup (batch 4096, 8 threads, vs full scan): %.1fx  (gate %.0fx)  "
      "answers byte-identical\n",
      speedup, gate);
  if (speedup < gate) {
    std::printf("FAIL: speedup below gate\n");
    return 1;
  }
  return 0;
}
