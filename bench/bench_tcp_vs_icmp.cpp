// §5 extension — TCP-based probing vs ICMP: validates that application-
// level latencies (TCP connect, HTTP TTFB) track the ping-based results
// the paper's conclusions rest on.
#include <iostream>
#include <vector>

#include "geo/country.hpp"
#include "net/tcp.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Section 5 extension: ICMP ping vs TCP connect vs HTTP TTFB\n"
            << "shape target: TCP tracks ICMP plus a small additive "
               "overhead; TTFB adds one more RTT plus server time — "
               "ping-based conclusions carry over to application traffic\n\n";

  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();

  struct Scenario {
    const char* iso2;
    net::AccessTechnology access;
  };
  const Scenario scenarios[] = {
      {"DE", net::AccessTechnology::kFibre},
      {"US", net::AccessTechnology::kCable},
      {"IN", net::AccessTechnology::kLte},
      {"KE", net::AccessTechnology::kDsl},
  };

  report::TextTable table;
  table.set_header({"user", "ping median", "tcp connect median",
                    "http ttfb median", "tcp - ping"});
  for (const Scenario& s : scenarios) {
    const geo::Country* country = geo::find_country(s.iso2);
    const net::Endpoint user{country->site, country->tier, s.access};
    const auto nearest = cloud.nearest(country->site);
    const topology::CloudRegion& region = *nearest->region;

    stats::Xoshiro256 rng(stats::fnv1a64(s.iso2, 2));
    std::vector<double> pings;
    std::vector<double> connects;
    std::vector<double> ttfbs;
    for (int i = 0; i < 20000; ++i) {
      const net::PingObservation p = model.ping_once(user, region, rng);
      if (!p.lost) pings.push_back(p.rtt_ms);
      const net::TcpConnectResult t = net::tcp_connect(model, user, region, rng);
      if (t.connected && t.syn_attempts == 1) connects.push_back(t.connect_ms);
      const net::HttpProbeResult h = net::http_ttfb(model, user, region, rng);
      if (h.ok) ttfbs.push_back(h.ttfb_ms);
    }
    const double ping = stats::Ecdf(std::move(pings)).median();
    const double tcp = stats::Ecdf(std::move(connects)).median();
    const double ttfb = stats::Ecdf(std::move(ttfbs)).median();
    table.add_row({
        std::string(country->name) + ", " + std::string(to_string(s.access)),
        report::fmt(ping, 1),
        report::fmt(tcp, 1),
        report::fmt(ttfb, 1),
        report::fmt(tcp - ping, 2),
    });
  }
  std::cout << table.to_string() << '\n';
  std::cout << "the Facebook comparison (§5): TCP-level latencies for served "
               "wired users remain well under 40 ms\n";
  return 0;
}
