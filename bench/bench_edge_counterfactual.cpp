// A7 — the edge counterfactual: what Figs. 5/6 would have looked like if
// a ubiquitous basestation-grade edge had existed instead of the cloud.
// The punchline of the whole paper in one table: in well-connected
// regions the edge CDF barely improves on the measured cloud CDF for
// wired users, and cannot beat the last mile for wireless ones.
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "edge/deployment.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Ablation A7: the edge counterfactual (ubiquitous basestation edge "
      "vs the measured cloud)",
      "in EU/NA the edge gains a few ms at the median; it shines only "
      "where the cloud is far (Africa, LatAm) — §6's deployment advice");

  const auto dataset = setup.run();
  const auto cloud_samples = core::best_region_samples_by_continent(dataset);
  const auto edge_world = edge::simulate_edge_campaign(
      setup.fleet, setup.model, edge::EdgePlacement::kBasestation,
      /*bursts_per_probe=*/60, /*seed=*/99);

  report::TextTable table;
  table.set_header({"continent", "cloud median", "edge median",
                    "median gain", "cloud F(MTP)", "edge F(MTP)"});
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& cloud = cloud_samples[geo::index_of(c)];
    const auto& edge_s = edge_world.samples[geo::index_of(c)];
    if (cloud.empty() || edge_s.empty()) continue;
    const stats::Ecdf cloud_ecdf(cloud);
    const stats::Ecdf edge_ecdf(edge_s);
    table.add_row({
        std::string(to_string(c)),
        report::fmt(cloud_ecdf.median(), 1) + " ms",
        report::fmt(edge_ecdf.median(), 1) + " ms",
        report::fmt(cloud_ecdf.median() - edge_ecdf.median(), 1) + " ms",
        report::fmt_percent(cloud_ecdf.fraction_at_or_below(20.0)),
        report::fmt_percent(edge_ecdf.fraction_at_or_below(20.0)),
    });
  }
  std::cout << table.to_string() << '\n';
  std::cout << "reading: even a basestation at every cell site leaves "
               "wireless users above MTP (the last mile IS the latency); "
               "the big medians gains concentrate in under-served "
               "continents, where §6 says deployment should focus\n";
  return 0;
}
