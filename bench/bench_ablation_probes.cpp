// Ablation A4 — probe-density sensitivity: how stable is the Fig. 4
// country-minimum statistic as the fleet shrinks? Validates that the
// paper-scale fleet (3200+) is comfortably past the knee.
#include <iostream>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "topology/registry.hpp"

int main() {
  using namespace shears;

  std::cout << "Ablation A4: probe-density sensitivity of the Fig. 4 bands\n"
            << "shape target: band counts stabilise once most countries "
               "field several probes; tiny fleets under-estimate the fast "
               "bands (best probe not yet sampled)\n\n";

  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  report::TextTable table;
  table.set_header({"probes", "countries measured", "<10ms", "10-20ms",
                    ">=100ms"});
  for (const std::size_t count : {200u, 400u, 800u, 1600u, 3200u, 6400u}) {
    atlas::PlacementConfig placement;
    placement.probe_count = count;
    const auto fleet = atlas::ProbeFleet::generate(placement);
    atlas::CampaignConfig config;
    config.duration_days = 10;
    const auto dataset =
        atlas::Campaign(fleet, registry, model, config).run();
    const auto bands =
        core::band_country_latencies(core::country_min_latency(dataset));
    table.add_row({
        std::to_string(count),
        std::to_string(bands.total()),
        std::to_string(bands.under_10),
        std::to_string(bands.from_10_to_20),
        std::to_string(bands.over_100),
    });
  }
  std::cout << table.to_string();
  return 0;
}
