// Footprint-optimizer acceptance bench: what the overlay evaluator buys
// over the naive planner loop. A naive what-if scorer rebuilds the whole
// columnar store for every candidate site it considers; the optimizer's
// incremental path pays one base pass over the raw columns and then
// scores every candidate from per-candidate probe lists.
//
// Gates (env-tunable, see bench/CMakeLists.txt for the smoke cut):
//  - scoring the full candidate slate incrementally must beat the naive
//    rebuild-per-candidate loop by SHEARS_OPT_GATE (default 10x),
//  - the incremental coverage must equal the rebuilt store's recount
//    exactly, and the chosen plan must be byte-identical across thread
//    counts — both always asserted, never relaxed.
// Numbers land in the serving-layer JSON (run_benches.sh routes this
// binary to results/BENCH_serve.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "atlas/measurement.hpp"
#include "bench_common.hpp"
#include "edge/deployment.hpp"
#include "geo/country.hpp"
#include "opt/candidates.hpp"
#include "opt/overlay.hpp"
#include "opt/search.hpp"
#include "serve/columnar.hpp"

namespace {

using namespace shears;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// What a naive planner does per candidate after the rebuild: scan the
/// rebuilt store and fold the population-weighted covered fraction, the
/// same arithmetic as OverlayEvaluator::coverage.
double coverage_of_store(const serve::ColumnarStore& store,
                         double threshold_ms) {
  std::vector<std::uint64_t> rows(geo::country_count(), 0);
  std::vector<std::uint64_t> covered(geo::country_count(), 0);
  for (const serve::ColumnarStore::ShardView& shard : store.shards()) {
    const std::size_t ci = serve::country_index_of(shard.country);
    rows[ci] += shard.rtt_ms.size();
    for (const float v : shard.rtt_ms) {
      covered[ci] += static_cast<double>(v) <= threshold_ms ? 1 : 0;
    }
  }
  double weight = 0.0;
  double fraction = 0.0;
  for (const geo::Country& c : geo::all_countries()) {
    const std::size_t ci = serve::country_index_of(&c);
    if (rows[ci] == 0) continue;
    const double share = geo::population_share(c);
    weight += share;
    fraction += share * (static_cast<double>(covered[ci]) /
                         static_cast<double>(rows[ci]));
  }
  return weight > 0.0 ? fraction / weight : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_title(
      "footprint optimizer: overlay-evaluated site search",
      "incremental candidate scoring >= 10x naive per-candidate rebuild");

  auto campaign = bench::make_standard_campaign(argc, argv);
  campaign.bench_name = "opt_campaign";
  const atlas::MeasurementDataset dataset = campaign.run();
  const serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{0});
  std::printf("store: %zu rows, %zu shards\n", store.rows_stored(),
              store.shard_count());

  // The candidate slate: top metro cities x two placement tiers.
  opt::CandidateConfig universe;
  universe.placements = {edge::EdgePlacement::kMetroPop,
                         edge::EdgePlacement::kRegionalSite};
  universe.max_cities_per_country = 1;
  universe.min_metro_population_m = 4.0;
  universe.min_population_share = 0.005;
  std::vector<opt::CandidateSite> candidates =
      opt::generate_candidates(universe);
  if (candidates.size() > 12) candidates.resize(12);  // ids stay dense
  const std::size_t slate = candidates.size();
  bench::bench_record_value("opt_candidate_universe",
                            static_cast<double>(slate));
  std::printf("candidates: %zu (top metros x {metro-pop, regional-site})\n",
              slate);

  opt::SearchConfig config;
  config.threshold_ms = 50.0;
  config.max_sites = 4;
  config.swap_passes = 1;

  // Incremental path: one base pass over the raw columns (search
  // construction), then every candidate scored from its probe list —
  // max_sites=1 stops after exactly one full scoring round, the unit a
  // naive planner would pay `slate` rebuilds for.
  opt::SearchConfig one_round = config;
  one_round.max_sites = 1;
  one_round.swap_passes = 0;
  auto start = clock_type::now();
  const opt::FootprintSearch scorer(&store, candidates, one_round);
  const opt::FootprintPlan first = scorer.plan();
  const double incremental_s = seconds_since(start);
  bench::bench_record("opt_incremental_score_all", incremental_s,
                      static_cast<double>(slate));
  std::printf("incremental: base pass + %zu candidates scored in %.3f s\n",
              slate, incremental_s);

  // Naive path: per candidate, rebuild the store with the site applied
  // and recount coverage from the rebuilt columns.
  const opt::OverlayEvaluator& evaluator = scorer.evaluator();
  double naive_best = -1.0;
  std::uint32_t naive_pick = 0;
  start = clock_type::now();
  for (const opt::CandidateSite& site : candidates) {
    opt::ScenarioDelta delta;
    delta.sites.push_back(opt::to_spec(site));
    const serve::ColumnarStore rebuilt = evaluator.rebuild_reference(delta);
    const double objective = coverage_of_store(rebuilt, config.threshold_ms);
    if (objective > naive_best) {
      naive_best = objective;
      naive_pick = site.id;
    }
  }
  const double naive_s = seconds_since(start);
  bench::bench_record("opt_naive_rebuild_per_candidate", naive_s,
                      static_cast<double>(slate));
  std::printf("naive: %zu rebuild+recount evaluations in %.3f s\n", slate,
              naive_s);

  // The two paths must agree exactly on the best first site and its
  // objective — the speedup means nothing if the answers differ.
  if (first.sites.size() != 1 || first.sites.front() != naive_pick ||
      first.objective != naive_best) {
    std::printf("FAIL: incremental pick %u (%.6f) != naive pick %u (%.6f)\n",
                first.sites.empty() ? 0u : first.sites.front(),
                first.objective, naive_pick, naive_best);
    return 1;
  }

  const double speedup = incremental_s > 0.0 ? naive_s / incremental_s : 0.0;
  bench::bench_record_value("opt_speedup_vs_rebuild", speedup);
  double gate = 10.0;
  if (const char* env = std::getenv("SHEARS_OPT_GATE")) {
    if (const double v = std::atof(env); v > 0.0) gate = v;
  }
  std::printf("speedup (incremental vs rebuild-per-candidate): %.1fx  "
              "(gate %.0fx)  picks agree exactly\n",
              speedup, gate);
  if (speedup < gate) {
    std::printf("FAIL: speedup below gate\n");
    return 1;
  }

  // Full plan, timed at 8 threads; byte-identity against a single-thread
  // run is always asserted.
  opt::SearchConfig eight = config;
  eight.threads = 8;
  opt::OverlayConfig overlay_eight;
  overlay_eight.threads = 8;
  start = clock_type::now();
  const opt::FootprintSearch s8(&store, candidates, eight, overlay_eight);
  const opt::FootprintPlan p8 = s8.plan();
  const double plan_s = seconds_since(start);
  bench::bench_record("opt_plan_greedy_swap", plan_s,
                      static_cast<double>(slate));
  std::printf("plan: %zu sites, coverage %.4f -> %.4f in %.3f s (8 threads)\n",
              p8.sites.size(), p8.base_objective, p8.objective, plan_s);

  opt::SearchConfig one_thread = config;
  one_thread.threads = 1;
  opt::OverlayConfig overlay_one;
  overlay_one.threads = 1;
  const opt::FootprintSearch s1(&store, std::move(candidates), one_thread,
                                overlay_one);
  const opt::FootprintPlan p1 = s1.plan();
  const bool identical = p1 == p8;
  bench::bench_record_value("opt_identical", identical ? 1.0 : 0.0);
  if (!identical) {
    std::printf("FAIL: plan differs between 1 and 8 threads\n");
    return 1;
  }
  std::printf("plan byte-identical across thread counts\n");
  return 0;
}
