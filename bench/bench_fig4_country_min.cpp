// Figure 4 — minimum latency to the nearest datacenter per country (the
// map), rendered as banded tables plus the headline counts.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Figure 4: minimum latency to nearest datacenter globally",
      "32 countries <10 ms; 21 more in 10-20 ms; all but ~16 under the PL "
      "threshold (100 ms); fast countries host or neighbour datacenters");

  const auto dataset = setup.run();
  auto rows = core::country_min_latency(dataset);
  std::sort(rows.begin(), rows.end(),
            [](const core::CountryMinLatency& a,
               const core::CountryMinLatency& b) {
              return a.min_rtt_ms < b.min_rtt_ms;
            });

  const core::LatencyBands bands = core::band_country_latencies(rows);
  report::TextTable band_table;
  band_table.set_header({"band", "countries", "paper"});
  band_table.add_row({"< 10 ms", std::to_string(bands.under_10), "32"});
  band_table.add_row({"10-20 ms", std::to_string(bands.from_10_to_20), "21"});
  band_table.add_row({"20-50 ms", std::to_string(bands.from_20_to_50), "-"});
  band_table.add_row({"50-100 ms", std::to_string(bands.from_50_to_100), "-"});
  band_table.add_row({">= 100 ms", std::to_string(bands.over_100), "~16"});
  band_table.add_row({"measured total", std::to_string(bands.total()), "-"});
  std::cout << band_table.to_string() << '\n';

  const auto hosts = setup.registry.hosting_countries();
  const auto hosts_dc = [&hosts](std::string_view iso2) {
    return std::find(hosts.begin(), hosts.end(), iso2) != hosts.end();
  };

  std::cout << "fastest 20 countries:\n";
  report::TextTable fast;
  fast.set_header({"country", "min RTT (ms)", "best region", "hosts a DC"});
  for (std::size_t i = 0; i < rows.size() && i < 20; ++i) {
    fast.add_row({
        std::string(rows[i].country->name),
        report::fmt(rows[i].min_rtt_ms, 1),
        std::string(rows[i].best_region->city) + " (" +
            std::string(to_string(rows[i].best_region->provider)) + ")",
        hosts_dc(rows[i].country->iso2) ? "yes" : "no",
    });
  }
  std::cout << fast.to_string() << '\n';

  std::cout << "slowest 10 countries:\n";
  report::TextTable slow;
  slow.set_header({"country", "continent", "min RTT (ms)"});
  for (std::size_t i = rows.size() >= 10 ? rows.size() - 10 : 0;
       i < rows.size(); ++i) {
    slow.add_row({
        std::string(rows[i].country->name),
        std::string(to_string(rows[i].country->continent)),
        report::fmt(rows[i].min_rtt_ms, 1),
    });
  }
  std::cout << slow.to_string() << '\n';

  std::size_t fast_hosting = 0;
  for (const auto& row : rows) {
    if (row.min_rtt_ms < 10.0 && hosts_dc(row.country->iso2)) ++fast_hosting;
  }
  std::cout << "of the " << bands.under_10 << " sub-10ms countries, "
            << fast_hosting << " host a datacenter (registry hosts "
            << hosts.size() << " countries)\n\n";

  // The abstract's headline, population-weighted: "for most applications
  // the cloud is already close enough for [the] majority of the world's
  // population".
  const core::PopulationCoverage cov = core::population_coverage(rows);
  std::cout << "population-weighted coverage (of "
            << report::fmt(cov.world_population_m / 1000.0, 2)
            << "B people): under MTP " << report::fmt_percent(cov.under_mtp)
            << ", under PL " << report::fmt_percent(cov.under_pl)
            << ", under HRT " << report::fmt_percent(cov.under_hrt)
            << "  (paper: the majority of the world's population)\n";
  return 0;
}
