// Ablation A1 — cloud expansion over the decade (§4/§5 discussion):
// replays the country-proximity analysis against historical footprint
// snapshots, quantifying how datacenter build-out eroded the latency
// argument for edge computing.
#include <iostream>

#include "core/whatif.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"

int main() {
  using namespace shears;

  std::cout << "Ablation A1: cloud footprint expansion 2008-2020\n"
            << "paper shape target: sub-20ms country coverage grows sharply "
               "with the footprint (Amazon alone grew 3 -> 20+ regions)\n\n";

  const net::LatencyModel model;
  const auto points = core::expansion_sweep(
      {2008, 2010, 2012, 2014, 2016, 2018, 2020}, model);

  report::TextTable table;
  table.set_header({"year", "regions", "hosting countries", "<10ms", "<20ms",
                    "<100ms", "median best RTT (ms)"});
  for (const core::ExpansionPoint& p : points) {
    table.add_row({
        std::to_string(p.year),
        std::to_string(p.region_count),
        std::to_string(p.hosting_countries),
        std::to_string(p.countries_under_10ms),
        std::to_string(p.countries_under_20ms),
        std::to_string(p.countries_under_100ms),
        report::fmt(p.median_best_rtt_ms, 1),
    });
  }
  std::cout << table.to_string() << '\n';

  const auto& first = points.front();
  const auto& last = points.back();
  std::cout << "2008 -> 2020: regions x"
            << report::fmt(static_cast<double>(last.region_count) /
                               std::max<std::size_t>(first.region_count, 1), 1)
            << ", sub-20ms countries " << first.countries_under_20ms << " -> "
            << last.countries_under_20ms << ", median best-case country RTT "
            << report::fmt(first.median_best_rtt_ms, 1) << " -> "
            << report::fmt(last.median_best_rtt_ms, 1) << " ms\n";
  return 0;
}
