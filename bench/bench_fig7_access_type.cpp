// Figure 7 — wired vs wireless last-mile access RTT over campaign time.
#include <iostream>

#include "bench_common.hpp"
#include "core/access_comparison.hpp"
#include "report/plot.hpp"
#include "report/table.hpp"
#include "stats/bootstrap.hpp"
#include "stats/ecdf.hpp"
#include "stats/ranktest.hpp"

int main(int argc, char** argv) {
  using namespace shears;
  const auto setup = bench::make_standard_campaign(argc, argv);

  bench::print_title(
      "Figure 7: wired vs wireless access RTT",
      "wireless probes take ~2.5x longer to reach the nearest cloud region; "
      "10-40 ms of added latency; the gap is persistent over time");

  const auto dataset = setup.run();
  const core::AccessComparison cmp = core::compare_access(dataset);

  report::TextTable table;
  table.set_header({"population", "probes", "bursts", "median (ms)", "p90 (ms)"});
  const stats::Ecdf wired(cmp.wired);
  const stats::Ecdf wireless(cmp.wireless);
  table.add_row({"wired (ethernet/broadband/dsl/cable/fibre)",
                 std::to_string(cmp.wired_probe_count),
                 std::to_string(cmp.wired.size()),
                 report::fmt(cmp.wired_median, 1),
                 report::fmt(wired.percentile(90.0), 1)});
  table.add_row({"wireless (wifi/wlan/lte/5g)",
                 std::to_string(cmp.wireless_probe_count),
                 std::to_string(cmp.wireless.size()),
                 report::fmt(cmp.wireless_median, 1),
                 report::fmt(wireless.percentile(90.0), 1)});
  std::cout << table.to_string() << '\n';

  // Bootstrap CI on the median ratio — the figure's headline number.
  stats::Xoshiro256 rng(2020);
  const auto median = [](const std::vector<double>& v) {
    return stats::Ecdf(v).median();
  };
  const auto ci = stats::bootstrap_ratio_ci(cmp.wireless, cmp.wired, median,
                                            0.95, 300, rng);
  std::cout << "wireless/wired median ratio: " << report::fmt(ci.point, 2)
            << "x  (95% CI " << report::fmt(ci.lower, 2) << "-"
            << report::fmt(ci.upper, 2) << ", paper: ~2.5x)\n"
            << "added latency: " << report::fmt(cmp.added_latency_ms, 1)
            << " ms (paper: 10-40 ms)\n";

  const stats::RankSumResult test =
      stats::mann_whitney_u(cmp.wireless, cmp.wired);
  std::cout << "Mann-Whitney U: effect size "
            << report::fmt(test.effect_size, 3) << " (P[wireless > wired]), z = "
            << report::fmt(test.z_score, 1) << ", p "
            << (test.p_two_sided < 1e-12 ? std::string("< 1e-12")
                                         : report::fmt(test.p_two_sided, 6))
            << "\n\n";

  // Longitudinal medians (one point per campaign day).
  std::vector<report::Series> series(2);
  series[0].name = "wired";
  series[0].points = cmp.wired_over_time;
  series[1].name = "wireless";
  series[1].points = cmp.wireless_over_time;
  // Normalise y to [0,1] for the CDF-style renderer: scale by max.
  double y_max = 0.0;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) y_max = std::max(y_max, y);
  }
  for (auto& s : series) {
    for (auto& [x, y] : s.points) y /= y_max;
  }
  report::CdfPlotOptions options;
  options.x_label = "campaign day (y: median RTT / " +
                    report::fmt(y_max, 0) + " ms)";
  std::cout << render_cdf_plot(series, {}, options);

  std::size_t wireless_worse = 0;
  const std::size_t days =
      std::min(cmp.wired_over_time.size(), cmp.wireless_over_time.size());
  for (std::size_t i = 0; i < days; ++i) {
    wireless_worse +=
        cmp.wireless_over_time[i].second > cmp.wired_over_time[i].second;
  }
  std::cout << "\nwireless median above wired on " << wireless_worse << "/"
            << days << " campaign days\n";
  return 0;
}
