// Tests for the client-steering model (the Jin et al. [36] angle).
#include <gtest/gtest.h>

#include "geo/country.hpp"
#include "route/steering.hpp"

namespace shears::route {
namespace {

net::Endpoint user_in(std::string_view iso2) {
  const geo::Country* c = geo::find_country(iso2);
  EXPECT_NE(c, nullptr);
  return {c->site, c->tier, net::AccessTechnology::kFibre};
}

TEST(Steering, MeasuredBestIsTheOracle) {
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  stats::Xoshiro256 rng(1);
  const net::Endpoint user = user_in("DE");
  const auto* best = steer(model, user, geo::Continent::kEurope, cloud,
                           SteeringPolicy::kMeasuredBest, {}, rng);
  ASSERT_NE(best, nullptr);
  // No in-scope region beats it.
  for (const topology::CloudRegion* region : cloud.regions()) {
    if (topology::region_continent(*region) != geo::Continent::kEurope) {
      continue;
    }
    EXPECT_GE(model.baseline_rtt_ms(user, *region) + 1e-9,
              model.baseline_rtt_ms(user, *best));
  }
}

TEST(Steering, GeoNearestPicksClosestByDistance) {
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  stats::Xoshiro256 rng(2);
  const net::Endpoint user = user_in("IE");
  const auto* chosen = steer(model, user, geo::Continent::kEurope, cloud,
                             SteeringPolicy::kGeoNearest, {}, rng);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->city, "Dublin");
}

TEST(Steering, AnycastMisroutesAtTheConfiguredRate) {
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  SteeringConfig config;
  config.anycast_misroute_rate = 0.25;
  stats::Xoshiro256 rng(3);
  const net::Endpoint user = user_in("FR");
  const auto* best = steer(model, user, geo::Continent::kEurope, cloud,
                           SteeringPolicy::kMeasuredBest, config, rng);
  int misses = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const auto* chosen = steer(model, user, geo::Continent::kEurope, cloud,
                               SteeringPolicy::kAnycast, config, rng);
    misses += chosen != best;
  }
  EXPECT_NEAR(static_cast<double>(misses) / kTrials, 0.25, 0.03);
}

TEST(Steering, ZeroMisrouteAnycastEqualsOracle) {
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  SteeringConfig config;
  config.anycast_misroute_rate = 0.0;
  stats::Xoshiro256 rng(4);
  for (const char* iso2 : {"DE", "JP", "BR", "ZA"}) {
    const geo::Country* c = geo::find_country(iso2);
    const net::Endpoint user = user_in(iso2);
    EXPECT_EQ(steer(model, user, c->continent, cloud,
                    SteeringPolicy::kAnycast, config, rng),
              steer(model, user, c->continent, cloud,
                    SteeringPolicy::kMeasuredBest, config, rng));
  }
}

TEST(Steering, PenaltyOrdering) {
  // Oracle penalty is zero; geo-nearest and anycast pay something; the
  // oracle is never beaten.
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  const SteeringConfig config;
  const auto oracle = evaluate_steering(
      model, cloud, SteeringPolicy::kMeasuredBest, config, 42);
  const auto geo_nearest =
      evaluate_steering(model, cloud, SteeringPolicy::kGeoNearest, config, 42);
  const auto anycast =
      evaluate_steering(model, cloud, SteeringPolicy::kAnycast, config, 42);

  EXPECT_EQ(oracle.misrouted, 0u);
  EXPECT_DOUBLE_EQ(oracle.mean_penalty_ms, 0.0);
  EXPECT_GE(geo_nearest.mean_penalty_ms, 0.0);
  EXPECT_GT(anycast.misrouted, 0u);
  EXPECT_GT(anycast.mean_penalty_ms, 0.0);
  EXPECT_GE(anycast.worst_penalty_ms, anycast.p90_penalty_ms);
  EXPECT_EQ(oracle.users, geo_nearest.users);
  EXPECT_EQ(oracle.users, anycast.users);
  EXPECT_GT(oracle.users, 150u);
}

TEST(Steering, GeoNearestPenaltyIsModest) {
  // Geography is a decent proxy for latency in this model: the mean
  // geo-steering penalty stays in the single-digit milliseconds (Jin et
  // al.'s observation that most clients are well served, with a tail).
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  const auto penalty = evaluate_steering(
      model, cloud, SteeringPolicy::kGeoNearest, {}, 7);
  EXPECT_LT(penalty.mean_penalty_ms, 10.0);
  EXPECT_GE(penalty.worst_penalty_ms, penalty.mean_penalty_ms);
}

}  // namespace
}  // namespace shears::route
