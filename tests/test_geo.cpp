// Tests for the geographic substrate: haversine, continents, and the
// embedded country registry's integrity invariants.
#include <gtest/gtest.h>

#include <set>

#include "geo/city.hpp"
#include "geo/continent.hpp"
#include "geo/coordinates.hpp"
#include "geo/country.hpp"

namespace shears::geo {
namespace {

TEST(Coordinates, ZeroDistanceForIdenticalPoints) {
  const GeoPoint p{48.86, 2.35};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Coordinates, KnownCityPairs) {
  // Reference great-circle distances (city centre to city centre).
  const GeoPoint paris{48.8566, 2.3522};
  const GeoPoint london{51.5074, -0.1278};
  const GeoPoint nyc{40.7128, -74.0060};
  const GeoPoint sydney{-33.8688, 151.2093};
  const GeoPoint tokyo{35.6762, 139.6503};
  EXPECT_NEAR(haversine_km(paris, london), 343.0, 5.0);
  EXPECT_NEAR(haversine_km(paris, nyc), 5837.0, 30.0);
  EXPECT_NEAR(haversine_km(sydney, tokyo), 7823.0, 40.0);
}

TEST(Coordinates, Symmetric) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-35.0, 140.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Coordinates, TriangleInequalityOnSphere) {
  const GeoPoint a{52.52, 13.40};   // Berlin
  const GeoPoint b{41.90, 12.50};   // Rome
  const GeoPoint c{59.33, 18.07};   // Stockholm
  EXPECT_LE(haversine_km(a, c), haversine_km(a, b) + haversine_km(b, c) + 1e-6);
}

TEST(Coordinates, AntipodalIsBounded) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), kMaxSurfaceDistanceKm, 1.0);
  EXPECT_LE(haversine_km(a, b), kMaxSurfaceDistanceKm + 1e-6);
}

TEST(Coordinates, Validation) {
  EXPECT_TRUE(is_valid({0.0, 0.0}));
  EXPECT_TRUE(is_valid({-90.0, 180.0}));
  EXPECT_FALSE(is_valid({91.0, 0.0}));
  EXPECT_FALSE(is_valid({0.0, -181.0}));
}

TEST(Continent, CodesRoundTrip) {
  for (const Continent c : kAllContinents) {
    const auto parsed = continent_from_code(to_code(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(continent_from_code("XX").has_value());
}

TEST(Continent, MeasurementFallbackMatchesPaper) {
  // §4.1: Africa additionally measures to Europe, South America to North
  // America; everyone else stays in-continent.
  EXPECT_EQ(measurement_fallback(Continent::kAfrica), Continent::kEurope);
  EXPECT_EQ(measurement_fallback(Continent::kSouthAmerica),
            Continent::kNorthAmerica);
  EXPECT_FALSE(measurement_fallback(Continent::kEurope).has_value());
  EXPECT_FALSE(measurement_fallback(Continent::kAsia).has_value());
  EXPECT_FALSE(measurement_fallback(Continent::kNorthAmerica).has_value());
  EXPECT_FALSE(measurement_fallback(Continent::kOceania).has_value());
}

TEST(CountryRegistry, CoversTheStudyScale) {
  // The paper's probes sit in 166 countries; the registry must offer at
  // least that much coverage.
  EXPECT_GE(country_count(), 166u);
}

TEST(CountryRegistry, UniqueIsoCodes) {
  std::set<std::string_view> codes;
  for (const Country& c : all_countries()) {
    EXPECT_TRUE(codes.insert(c.iso2).second) << "duplicate: " << c.iso2;
  }
}

TEST(CountryRegistry, AllFieldsValid) {
  for (const Country& c : all_countries()) {
    EXPECT_EQ(c.iso2.size(), 2u) << c.name;
    EXPECT_FALSE(c.name.empty());
    EXPECT_TRUE(is_valid(c.site)) << c.name;
    EXPECT_GT(c.probe_weight, 0.0) << c.name;
    EXPECT_GT(c.scatter_km, 0.0) << c.name;
    const auto tier = static_cast<int>(c.tier);
    EXPECT_GE(tier, 1);
    EXPECT_LE(tier, 4);
  }
}

TEST(CountryRegistry, LookupFindsKnownCountries) {
  const Country* de = find_country("DE");
  ASSERT_NE(de, nullptr);
  EXPECT_EQ(de->name, "Germany");
  EXPECT_EQ(de->continent, Continent::kEurope);
  EXPECT_EQ(de->tier, ConnectivityTier::kTier1);

  const Country* td = find_country("TD");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->continent, Continent::kAfrica);
  EXPECT_EQ(td->tier, ConnectivityTier::kTier4);

  EXPECT_EQ(find_country("XX"), nullptr);
  EXPECT_EQ(find_country("de"), nullptr);  // case-sensitive by contract
}

TEST(CountryRegistry, EveryContinentPopulated) {
  for (const Continent c : kAllContinents) {
    EXPECT_FALSE(countries_in(c).empty()) << to_string(c);
  }
}

TEST(CountryRegistry, ProbeDensitySkewMatchesAtlas) {
  // RIPE Atlas is Europe-heavy: Europe must carry more probe weight than
  // any other continent, and Germany must be the single densest country.
  double weight[kContinentCount] = {};
  double de_weight = 0.0;
  double max_weight = 0.0;
  for (const Country& c : all_countries()) {
    weight[index_of(c.continent)] += c.probe_weight;
    max_weight = std::max(max_weight, c.probe_weight);
    if (c.iso2 == "DE") de_weight = c.probe_weight;
  }
  for (const Continent c : kAllContinents) {
    if (c == Continent::kEurope) continue;
    EXPECT_GT(weight[index_of(Continent::kEurope)], weight[index_of(c)]);
  }
  EXPECT_DOUBLE_EQ(de_weight, max_weight);
}

TEST(CountryRegistry, AfricaIsPredominantlyUnderServed) {
  // The tier assignments must reflect the paper's "Africa ... severely
  // under-served": a majority of African countries at tier 3-4.
  std::size_t poor = 0;
  const auto africa = countries_in(Continent::kAfrica);
  for (const Country* c : africa) {
    if (c->tier == ConnectivityTier::kTier3 ||
        c->tier == ConnectivityTier::kTier4) {
      ++poor;
    }
  }
  EXPECT_GT(poor * 2, africa.size());
}

TEST(CityRegistry, CitiesBelongToKnownCountriesAndAreValid) {
  for (const City& city : all_cities()) {
    const Country* country = find_country(city.country_iso2);
    ASSERT_NE(country, nullptr) << city.name;
    EXPECT_TRUE(is_valid(city.location)) << city.name;
    EXPECT_GT(city.metro_population_m, 0.0) << city.name;
    // A city sits within its country's populated sphere: a few scatter
    // radii of the national hub.
    EXPECT_LT(haversine_km(city.location, country->site),
              country->scatter_km * 6.0 + 500.0)
        << city.name;
  }
  EXPECT_GE(city_count(), 200u);
}

TEST(CityRegistry, MajorCountriesHaveMultipleCities) {
  for (const char* iso2 : {"US", "DE", "CN", "IN", "BR", "AU", "RU"}) {
    EXPECT_GE(cities_in(iso2).size(), 4u) << iso2;
  }
  EXPECT_TRUE(cities_in("LI").empty());  // microstates use scatter only
  EXPECT_TRUE(cities_in("XX").empty());
}

TEST(CountryRegistry, CountriesInPartitionTheRegistry) {
  std::size_t total = 0;
  for (const Continent c : kAllContinents) total += countries_in(c).size();
  EXPECT_EQ(total, country_count());
}

}  // namespace
}  // namespace shears::geo
