// Tests for the measurement platform: tags, probe placement, scheduling,
// campaign determinism, dataset semantics, and the resilient engine
// (fault injection, retries, quarantine).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "atlas/tags.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/city.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::atlas {
namespace {

PlacementConfig small_fleet_config() {
  PlacementConfig config;
  config.probe_count = 400;
  config.seed = 11;
  return config;
}

CampaignConfig short_campaign_config() {
  CampaignConfig config;
  config.duration_days = 3;
  config.seed = 13;
  config.threads = 2;
  return config;
}

TEST(Tags, VocabularyMatchesAtlasKeywords) {
  const auto wired = wired_tags();
  const auto wireless = wireless_tags();
  EXPECT_TRUE(has_any_tag({{"ethernet"}}, wired));
  EXPECT_TRUE(has_any_tag({{"broadband"}}, wired));
  EXPECT_TRUE(has_any_tag({{"lte"}}, wireless));
  EXPECT_TRUE(has_any_tag({{"wifi"}}, wireless));
  EXPECT_TRUE(has_any_tag({{"wlan"}}, wireless));
  EXPECT_FALSE(has_any_tag({{"ethernet"}}, wireless));
  EXPECT_FALSE(has_any_tag({{"lte"}}, wired));
}

TEST(Tags, MakeTagsForTaggedWiredProbe) {
  const auto tags = make_tags(net::AccessTechnology::kDsl, Environment::kHome,
                              /*tagged=*/true);
  EXPECT_TRUE(has_any_tag(tags, wired_tags()));
  EXPECT_FALSE(has_any_tag(tags, wireless_tags()));
  EXPECT_FALSE(has_any_tag(tags, privileged_tags()));
}

TEST(Tags, MakeTagsForUntaggedProbeIsEmptyOfAccessInfo) {
  const auto tags = make_tags(net::AccessTechnology::kLte, Environment::kHome,
                              /*tagged=*/false);
  EXPECT_FALSE(has_any_tag(tags, wired_tags()));
  EXPECT_FALSE(has_any_tag(tags, wireless_tags()));
}

TEST(Tags, DatacenterProbeAlwaysCarriesPrivilegedTag) {
  const auto untagged = make_tags(net::AccessTechnology::kEthernet,
                                  Environment::kDatacenter, /*tagged=*/false);
  EXPECT_TRUE(has_any_tag(untagged, privileged_tags()));
}

TEST(Tags, WifiCarriesBothSpellings) {
  const auto tags = make_tags(net::AccessTechnology::kWifi, Environment::kHome,
                              /*tagged=*/true);
  bool wifi = false;
  bool wlan = false;
  for (const auto t : tags) {
    wifi |= t == "wifi";
    wlan |= t == "wlan";
  }
  EXPECT_TRUE(wifi);
  EXPECT_TRUE(wlan);
}

TEST(Placement, DeterministicForSameConfig) {
  const ProbeFleet a = ProbeFleet::generate(small_fleet_config());
  const ProbeFleet b = ProbeFleet::generate(small_fleet_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.probes()[i].country, b.probes()[i].country);
    EXPECT_EQ(a.probes()[i].endpoint.location.lat_deg,
              b.probes()[i].endpoint.location.lat_deg);
    EXPECT_EQ(a.probes()[i].endpoint.access, b.probes()[i].endpoint.access);
  }
}

TEST(Placement, ExactCountAndSequentialIds) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  EXPECT_EQ(fleet.size(), 400u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet.probes()[i].id, i);
    EXPECT_NE(fleet.probes()[i].country, nullptr);
    EXPECT_TRUE(geo::is_valid(fleet.probes()[i].endpoint.location));
  }
}

TEST(Placement, EveryCountryCovered) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  EXPECT_EQ(fleet.country_count(), geo::country_count());
}

TEST(Placement, RejectsTooFewProbes) {
  PlacementConfig config;
  config.probe_count = 10;  // fewer than countries
  EXPECT_THROW(ProbeFleet::generate(config), std::invalid_argument);
}

TEST(Placement, DensityFollowsWeights) {
  PlacementConfig config;
  config.probe_count = 3200;
  const ProbeFleet fleet = ProbeFleet::generate(config);
  std::size_t de = 0;
  std::size_t td = 0;
  std::size_t europe = 0;
  for (const Probe& p : fleet.probes()) {
    if (p.country->iso2 == "DE") ++de;
    if (p.country->iso2 == "TD") ++td;
    if (p.country->continent == geo::Continent::kEurope) ++europe;
  }
  EXPECT_GT(de, 100u);  // Germany is the densest Atlas country
  EXPECT_LE(td, 5u);    // Chad has a token presence
  // Fig. 3b: Europe hosts roughly half the fleet.
  EXPECT_GT(europe, fleet.size() * 2 / 5);
}

TEST(Placement, PrivilegedShareNearConfig) {
  PlacementConfig config;
  config.probe_count = 3200;
  config.privileged_fraction = 0.04;
  const ProbeFleet fleet = ProbeFleet::generate(config);
  std::size_t privileged = 0;
  for (const Probe& p : fleet.probes()) {
    if (p.privileged()) ++privileged;
  }
  const double share = static_cast<double>(privileged) / fleet.size();
  EXPECT_NEAR(share, 0.04, 0.02);
}

TEST(Placement, InfrastructureProbesAreEthernet) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  for (const Probe& p : fleet.probes()) {
    if (p.environment == Environment::kCoreNetwork ||
        p.environment == Environment::kDatacenter) {
      EXPECT_EQ(p.endpoint.access, net::AccessTechnology::kEthernet);
    }
  }
}

TEST(Placement, ScatterStaysNational) {
  // Probes must land within a few scatter radii of the country site.
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  for (const Probe& p : fleet.probes()) {
    const double d =
        geo::haversine_km(p.endpoint.location, p.country->site);
    EXPECT_LT(d, p.country->scatter_km * 6 + 50.0) << p.country->name;
  }
}

TEST(Placement, UrbanProbesClusterOnCities) {
  PlacementConfig config;
  config.probe_count = 3200;
  config.urban_fraction = 1.0;  // everyone urban
  const ProbeFleet fleet = ProbeFleet::generate(config);
  // Every probe in a country with listed cities sits within the tight
  // urban scatter of one of them.
  std::size_t checked = 0;
  for (const Probe& p : fleet.probes()) {
    const auto cities = geo::cities_in(p.country->iso2);
    if (cities.empty()) continue;
    double nearest = 1e18;
    for (const geo::City* city : cities) {
      nearest = std::min(
          nearest, geo::haversine_km(p.endpoint.location, city->location));
    }
    EXPECT_LT(nearest, config.urban_scatter_km * 6 + 20.0) << p.country->name;
    ++checked;
  }
  EXPECT_GT(checked, fleet.size() / 2);
}

TEST(Placement, ZeroUrbanFractionFallsBackToScatter) {
  PlacementConfig urban;
  urban.probe_count = 400;
  urban.urban_fraction = 1.0;
  PlacementConfig rural = urban;
  rural.urban_fraction = 0.0;
  const ProbeFleet a = ProbeFleet::generate(urban);
  const ProbeFleet b = ProbeFleet::generate(rural);
  // Same seeds, different placement policies: locations must differ for
  // city-bearing countries.
  std::size_t moved = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.probes()[i].endpoint.location.lat_deg !=
        b.probes()[i].endpoint.location.lat_deg) {
      ++moved;
    }
  }
  EXPECT_GT(moved, a.size() / 2);
}

TEST(Placement, TierPropagatesToEndpoint) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  for (const Probe& p : fleet.probes()) {
    EXPECT_EQ(p.endpoint.tier, p.country->tier);
  }
}

TEST(Campaign, TickCountFromDurationAndInterval) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.duration_days = 270;
  config.interval_hours = 3;
  const Campaign campaign(fleet, registry, model, config);
  EXPECT_EQ(campaign.tick_count(), 2160u);  // nine months of 3 h ticks
}

TEST(Campaign, RejectsNonPositiveConfig) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig bad;
  bad.duration_days = 0;
  EXPECT_THROW(Campaign(fleet, registry, model, bad), std::invalid_argument);
}

TEST(Campaign, TargetsFollowContinentRule) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const Campaign campaign(fleet, registry, model, short_campaign_config());

  for (const Probe& p : fleet.probes()) {
    const auto targets = campaign.targets_for(p);
    ASSERT_FALSE(targets.empty());
    const auto fallback = geo::measurement_fallback(p.country->continent);
    for (const std::uint16_t idx : targets) {
      const auto rc = topology::region_continent(*registry.regions()[idx]);
      EXPECT_TRUE(rc == p.country->continent || (fallback && rc == *fallback));
    }
  }
}

TEST(Campaign, AfricanProbesReachEurope) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const Campaign campaign(fleet, registry, model, short_campaign_config());
  for (const Probe& p : fleet.probes()) {
    if (p.country->continent != geo::Continent::kAfrica) continue;
    const auto targets = campaign.targets_for(p);
    bool has_europe = false;
    for (const std::uint16_t idx : targets) {
      has_europe |= topology::region_continent(*registry.regions()[idx]) ==
                    geo::Continent::kEurope;
    }
    EXPECT_TRUE(has_europe);
    break;  // one African probe suffices
  }
}

TEST(Campaign, RunIsDeterministicAcrossThreadCounts) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.threads = 1;
  const auto a = Campaign(fleet, registry, model, config).run();
  config.threads = 4;
  const auto b = Campaign(fleet, registry, model, config).run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].probe_id, b.records()[i].probe_id);
    EXPECT_EQ(a.records()[i].region_index, b.records()[i].region_index);
    EXPECT_EQ(a.records()[i].tick, b.records()[i].tick);
    EXPECT_EQ(a.records()[i].min_ms, b.records()[i].min_ms);
  }
}

TEST(Campaign, RecordCountMatchesExpectation) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const Campaign campaign(fleet, registry, model, short_campaign_config());
  const auto dataset = campaign.run();
  EXPECT_EQ(dataset.size(), campaign.expected_record_count());
  // 3 days * 8 ticks/day * 1 target/tick per probe.
  EXPECT_EQ(dataset.size(), fleet.size() * 24u);
}

TEST(Campaign, RotationCoversWholeTargetSet) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.duration_days = 30;  // 240 ticks >> any continental target set
  const Campaign campaign(fleet, registry, model, config);
  const auto dataset = campaign.run();

  const Probe& probe = fleet.probes().front();
  const auto targets = campaign.targets_for(probe);
  std::set<std::uint16_t> hit;
  for (const Measurement& m : dataset.records()) {
    if (m.probe_id == probe.id) hit.insert(m.region_index);
  }
  EXPECT_EQ(hit.size(), targets.size());
}

TEST(Campaign, MeasurementsWithinContinentOnlyTargetScope) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const Campaign campaign(fleet, registry, model, short_campaign_config());
  const auto dataset = campaign.run();
  for (const Measurement& m : dataset.records()) {
    const Probe& p = dataset.probe_of(m);
    const auto rc = topology::region_continent(dataset.region_of(m));
    const auto fallback = geo::measurement_fallback(p.country->continent);
    EXPECT_TRUE(rc == p.country->continent || (fallback && rc == *fallback));
  }
}

TEST(Campaign, EmptyFootprintYieldsNoRecordsForStrandedProbes) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  // 2008 footprint: no Oceania regions existed.
  const auto registry = topology::CloudRegistry::footprint_as_of(2008);
  const net::LatencyModel model;
  const Campaign campaign(fleet, registry, model, short_campaign_config());
  const auto dataset = campaign.run();
  for (const Measurement& m : dataset.records()) {
    EXPECT_NE(dataset.probe_of(m).country->continent,
              geo::Continent::kOceania);
  }
}

double mean_lag1_autocorrelation(const MeasurementDataset& dataset) {
  // Average lag-1 autocorrelation of per-probe burst-min series.
  std::map<ProbeId, std::vector<double>> series;
  for (const Measurement& m : dataset.records()) {
    if (!m.lost()) series[m.probe_id].push_back(m.min_ms);
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [probe, values] : series) {
    if (values.size() < 20) continue;
    double mean = 0.0;
    for (const double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      den += (values[i] - mean) * (values[i] - mean);
      if (i > 0) num += (values[i] - mean) * (values[i - 1] - mean);
    }
    if (den > 0.0) {
      sum += num / den;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

TEST(Campaign, TemporalCorrelationCreatesCongestionEpochs) {
  // Against a single fixed target, consecutive bursts share the AR(1)
  // congestion level; the series must autocorrelate. Killing the process
  // removes the correlation.
  PlacementConfig placement = small_fleet_config();
  placement.probe_count = 300;
  const ProbeFleet fleet = ProbeFleet::generate(placement);
  // Single-region registry so every tick hits the same target (rotation
  // across different targets would otherwise dominate the series).
  const topology::CloudRegistry registry{
      {&topology::all_regions()[0]}};
  CampaignConfig config;
  config.duration_days = 20;
  config.seed = 77;

  net::LatencyModelConfig correlated;
  correlated.diurnal_amplitude = 0.0;  // isolate the AR(1) effect
  correlated.temporal_rho = 0.8;       // strong epochs to make the
  correlated.temporal_sigma = 0.35;    // mechanism unambiguous
  const net::LatencyModel model_corr(correlated);
  const double rho_corr = mean_lag1_autocorrelation(
      Campaign(fleet, registry, model_corr, config).run());

  net::LatencyModelConfig iid = correlated;
  iid.temporal_sigma = 0.0;
  const net::LatencyModel model_iid(iid);
  const double rho_iid = mean_lag1_autocorrelation(
      Campaign(fleet, registry, model_iid, config).run());

  EXPECT_GT(rho_corr, 0.10);
  EXPECT_GT(rho_corr, rho_iid + 0.08);
  EXPECT_NEAR(rho_iid, 0.0, 0.06);
}

TEST(Dataset, LossFractionSmallAndCsvWellFormed) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const Campaign campaign(fleet, registry, model, short_campaign_config());
  const auto dataset = campaign.run();
  EXPECT_LT(dataset.loss_fraction(), 0.05);

  std::ostringstream csv;
  dataset.write_csv(csv);
  const std::string text = csv.str();
  // Header + one line per record.
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, dataset.size() + 1);
  EXPECT_EQ(text.rfind("probe_id,", 0), 0u);
}

TEST(Dataset, RejectsNullInputs) {
  EXPECT_THROW(MeasurementDataset(nullptr, nullptr, {}), std::invalid_argument);
}

TEST(Dataset, JsonlMatchesAtlasResultShape) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const auto dataset =
      Campaign(fleet, registry, model, short_campaign_config()).run();
  std::ostringstream os;
  dataset.write_jsonl(os, 3);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, dataset.size());
  // Every line is a JSON object with the Atlas-style keys.
  std::istringstream is(text);
  std::string line;
  std::size_t checked = 0;
  while (std::getline(is, line) && checked < 50) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* key :
         {"\"type\":\"ping\"", "\"prb_id\":", "\"dst_name\":",
          "\"timestamp\":", "\"sent\":", "\"rcvd\":", "\"min\":",
          "\"country\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << line;
    }
    ++checked;
  }
  // Timestamps advance in 3-hour steps per tick.
  EXPECT_NE(text.find("\"timestamp\":10800"), std::string::npos);
}

TEST(Dataset, CsvRoundTripPreservesRecords) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const auto original =
      Campaign(fleet, registry, model, short_campaign_config()).run();

  std::stringstream buffer;
  original.write_csv(buffer);
  const auto loaded =
      MeasurementDataset::read_csv(buffer, &fleet, &registry);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const Measurement& a = original.records()[i];
    const Measurement& b = loaded.records()[i];
    EXPECT_EQ(a.probe_id, b.probe_id);
    EXPECT_EQ(a.region_index, b.region_index);
    EXPECT_EQ(a.tick, b.tick);
    EXPECT_EQ(a.received, b.received);
    EXPECT_NEAR(a.min_ms, b.min_ms, 1e-3);
  }
}

TEST(Dataset, CsvLoadRejectsWrongFleet) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const auto original =
      Campaign(fleet, registry, model, short_campaign_config()).run();
  std::stringstream buffer;
  original.write_csv(buffer);

  // A fleet generated from a different seed has different probe metadata;
  // loading must fail loudly rather than silently misattribute records.
  PlacementConfig other_config = small_fleet_config();
  other_config.seed = 999;
  const ProbeFleet other = ProbeFleet::generate(other_config);
  EXPECT_THROW(MeasurementDataset::read_csv(buffer, &other, &registry),
               std::runtime_error);
}

TEST(Dataset, CsvLoadRejectsGarbage) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  std::stringstream no_header("1,2,3\n");
  EXPECT_THROW(MeasurementDataset::read_csv(no_header, &fleet, &registry),
               std::runtime_error);
  std::stringstream bad_row(
      "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
      "max_ms,sent,received\nnot,enough,fields\n");
  EXPECT_THROW(MeasurementDataset::read_csv(bad_row, &fleet, &registry),
               std::runtime_error);
}

TEST(Campaign, ProbeChurnThinsTheDataset) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.duration_days = 10;
  const std::size_t full =
      Campaign(fleet, registry, model, config).run().size();
  config.probe_uptime = 0.9;
  const std::size_t churned =
      Campaign(fleet, registry, model, config).run().size();
  EXPECT_LT(churned, full);
  EXPECT_NEAR(static_cast<double>(churned) / static_cast<double>(full), 0.9,
              0.03);
}

TEST(Campaign, RejectsInvalidUptime) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.probe_uptime = 0.0;
  EXPECT_THROW(Campaign(fleet, registry, model, config),
               std::invalid_argument);
  config.probe_uptime = 1.5;
  EXPECT_THROW(Campaign(fleet, registry, model, config),
               std::invalid_argument);
}

TEST(Campaign, ConfigValidationCoversEveryKnob) {
  CampaignConfig config;
  EXPECT_NO_THROW(config.validate());
  config.packets_per_ping = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.packets_per_ping = 300;  // overflows the uint8 record counter
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CampaignConfig{};
  config.interval_hours = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CampaignConfig{};
  config.targets_per_tick = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CampaignConfig{};
  config.retry.max_retries = -2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CampaignConfig{};
  config.quarantine.enabled = true;
  config.quarantine.window_bursts = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  // An interval longer than the whole campaign would schedule zero ticks
  // and silently produce an empty dataset.
  config = CampaignConfig{};
  config.duration_days = 1;
  config.interval_hours = 48;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.interval_hours = 24;  // exactly one tick is still a campaign
  EXPECT_NO_THROW(config.validate());
}

void expect_identical_datasets(const MeasurementDataset& a,
                               const MeasurementDataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Measurement& x = a.records()[i];
    const Measurement& y = b.records()[i];
    EXPECT_EQ(x.probe_id, y.probe_id);
    EXPECT_EQ(x.region_index, y.region_index);
    EXPECT_EQ(x.tick, y.tick);
    EXPECT_EQ(x.min_ms, y.min_ms);  // bit-exact, not approximate
    EXPECT_EQ(x.avg_ms, y.avg_ms);
    EXPECT_EQ(x.max_ms, y.max_ms);
    EXPECT_EQ(x.sent, y.sent);
    EXPECT_EQ(x.received, y.received);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.faults, y.faults);
  }
}

TEST(Campaign, EmptyScheduleIsByteIdenticalToNoSchedule) {
  // Attaching an empty fault schedule (with resilience off) must consume
  // exactly the same RNG draws as the pre-fault engine.
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.probe_uptime = 0.9;  // exercise the churn draws too
  const auto plain = Campaign(fleet, registry, model, config).run();
  const faults::FaultSchedule empty;
  const auto wired =
      Campaign(fleet, registry, model, config, &empty).run();
  expect_identical_datasets(plain, wired);
}

TEST(Campaign, FaultedRunIsDeterministicAcrossThreadCounts) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  faults::FaultScheduleConfig fault_config;
  fault_config.region_outage_rate = 0.1;
  fault_config.route_flap_rate = 0.1;
  fault_config.storm_rate = 0.1;
  fault_config.probe_hang_rate = 0.1;
  fault_config.clock_skew_rate = 0.1;
  fault_config.blackout_rate = 0.02;
  const faults::FaultSchedule schedule(fault_config);

  CampaignConfig config = short_campaign_config();
  config.duration_days = 6;
  config.retry.max_retries = 2;
  config.quarantine.enabled = true;
  config.quarantine.window_bursts = 4;
  config.quarantine.cooldown_ticks = 8;

  config.threads = 1;
  CampaignTelemetry tel_one;
  const auto one =
      Campaign(fleet, registry, model, config, &schedule).run(tel_one);
  config.threads = 4;
  CampaignTelemetry tel_four;
  const auto four =
      Campaign(fleet, registry, model, config, &schedule).run(tel_four);

  expect_identical_datasets(one, four);
  EXPECT_GT(one.faulted_fraction(), 0.0);
  EXPECT_EQ(tel_one.bursts, tel_four.bursts);
  EXPECT_EQ(tel_one.retries, tel_four.retries);
  EXPECT_EQ(tel_one.hang_ticks, tel_four.hang_ticks);
  EXPECT_EQ(tel_one.quarantine_entries, tel_four.quarantine_entries);
  EXPECT_EQ(tel_one.quarantined_ticks, tel_four.quarantined_ticks);
}

TEST(Campaign, BlackoutEventLosesEveryBurstInWindow) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  faults::FaultSchedule schedule;
  faults::FaultEvent blackout;
  blackout.kind = faults::FaultKind::kCountryBlackout;
  blackout.start_tick = 0;
  blackout.end_tick = 4;
  blackout.country_key = 0;  // every country
  schedule.add_event(blackout);

  CampaignConfig config = short_campaign_config();
  config.duration_days = 1;
  CampaignTelemetry telemetry;
  const auto dataset =
      Campaign(fleet, registry, model, config, &schedule).run(telemetry);
  const std::uint8_t bit =
      faults::fault_bit(faults::FaultKind::kCountryBlackout);
  std::size_t in_window = 0;
  for (const Measurement& m : dataset.records()) {
    if (m.tick < 4) {
      EXPECT_EQ(m.received, 0);
      EXPECT_NE(m.faults & bit, 0);
      ++in_window;
    } else {
      EXPECT_EQ(m.faults & bit, 0);
    }
  }
  EXPECT_GT(in_window, 0u);
  EXPECT_EQ(telemetry.bursts, dataset.size());
  EXPECT_GE(telemetry.bursts_faulted, in_window);
}

TEST(Campaign, RetriesRecoverBurstsAfterAnOutageWindow) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  faults::FaultSchedule schedule;
  faults::FaultEvent blackout;
  blackout.kind = faults::FaultKind::kCountryBlackout;
  blackout.start_tick = 0;
  blackout.end_tick = 2;
  blackout.country_key = 0;
  schedule.add_event(blackout);

  CampaignConfig config = short_campaign_config();
  config.duration_days = 1;
  config.retry.max_retries = 2;  // tick 0: retries land on ticks 1 and 3
  CampaignTelemetry telemetry;
  const auto dataset =
      Campaign(fleet, registry, model, config, &schedule).run(telemetry);

  EXPECT_GT(telemetry.bursts_retried, 0u);
  EXPECT_GT(telemetry.bursts_recovered, 0u);
  std::size_t recovered_records = 0;
  std::size_t recovered_in_window = 0;
  for (const Measurement& m : dataset.records()) {
    if (m.retries > 0 && m.received > 0) {
      ++recovered_records;
      // A recovered burst scheduled inside the window proves the retry
      // was evaluated at its later effective tick, past the outage.
      recovered_in_window += m.tick < 2;
    }
  }
  EXPECT_EQ(recovered_records, telemetry.bursts_recovered);
  EXPECT_GT(recovered_in_window, 0u);
}

TEST(Campaign, QuarantineSidelinesProbesAndReleasesThem) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  faults::FaultSchedule schedule;
  faults::FaultEvent blackout;
  blackout.kind = faults::FaultKind::kCountryBlackout;
  blackout.start_tick = 0;
  blackout.end_tick = 8;
  blackout.country_key = 0;
  schedule.add_event(blackout);

  CampaignConfig config = short_campaign_config();
  config.duration_days = 3;  // 24 ticks
  config.quarantine.enabled = true;
  config.quarantine.window_bursts = 4;
  config.quarantine.loss_threshold = 1.0;
  config.quarantine.cooldown_ticks = 8;
  CampaignTelemetry telemetry;
  const auto dataset =
      Campaign(fleet, registry, model, config, &schedule).run(telemetry);

  // Every probe trips after its 4th all-lost burst (tick 3) and sits out
  // ticks 4..10; release at tick 11 restores service.
  EXPECT_EQ(telemetry.quarantine_entries, fleet.size());
  EXPECT_GT(telemetry.quarantined_ticks, 0u);
  bool saw_post_release = false;
  for (const Measurement& m : dataset.records()) {
    EXPECT_TRUE(m.tick <= 3 || m.tick >= 11) << m.tick;
    saw_post_release |= m.tick >= 11;
  }
  EXPECT_TRUE(saw_post_release);
}

TEST(Campaign, TelemetryMatchesPlainRunWhenResilienceOff) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignTelemetry telemetry;
  const auto dataset = Campaign(fleet, registry, model,
                                short_campaign_config())
                           .run(telemetry);
  EXPECT_EQ(telemetry.bursts, dataset.size());
  EXPECT_EQ(telemetry.bursts_retried, 0u);
  EXPECT_EQ(telemetry.retries, 0u);
  EXPECT_EQ(telemetry.bursts_faulted, 0u);
  EXPECT_EQ(telemetry.hang_ticks, 0u);
  EXPECT_EQ(telemetry.quarantine_entries, 0u);
}

MeasurementDataset faulted_fixture(const ProbeFleet& fleet,
                                   const topology::CloudRegistry& registry,
                                   const net::LatencyModel& model,
                                   const faults::FaultSchedule& schedule) {
  CampaignConfig config = short_campaign_config();
  config.duration_days = 1;
  config.retry.max_retries = 2;
  return Campaign(fleet, registry, model, config, &schedule).run();
}

TEST(Dataset, CsvRoundTripPreservesRetriesFaultsAndLostBursts) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  faults::FaultSchedule schedule;
  faults::FaultEvent blackout;
  blackout.kind = faults::FaultKind::kCountryBlackout;
  blackout.start_tick = 0;
  // Long enough that early bursts stay lost even after both retries.
  blackout.end_tick = 6;
  blackout.country_key = 0;
  schedule.add_event(blackout);
  const auto original = faulted_fixture(fleet, registry, model, schedule);

  std::size_t lost = 0;
  std::size_t flagged = 0;
  for (const Measurement& m : original.records()) {
    lost += m.lost();
    flagged += m.faulted();
  }
  ASSERT_GT(lost, 0u);     // the round trip must cover lost bursts
  ASSERT_GT(flagged, 0u);  // ... and fault-flagged ones

  std::stringstream buffer;
  original.write_csv(buffer);
  const auto loaded = MeasurementDataset::read_csv(buffer, &fleet, &registry);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const Measurement& a = original.records()[i];
    const Measurement& b = loaded.records()[i];
    EXPECT_EQ(a.probe_id, b.probe_id);
    EXPECT_EQ(a.tick, b.tick);
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.faults, b.faults);
    if (a.received > 0) {
      // The writer prints 6 significant digits: relative tolerance.
      EXPECT_NEAR(a.min_ms, b.min_ms, 1e-3 + 1e-5 * a.min_ms);
      EXPECT_NEAR(a.max_ms, b.max_ms, 1e-3 + 1e-5 * a.max_ms);
    }
  }
}

TEST(Dataset, CsvReaderAcceptsLegacyTwelveColumnHeader) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  const topology::CloudRegion& r = *registry.regions()[0];
  std::stringstream legacy;
  legacy << "probe_id,country,continent,access,provider,region,tick,min_ms,"
            "avg_ms,max_ms,sent,received\n"
         << "0," << p.country->iso2 << ','
         << geo::to_code(p.country->continent) << ','
         << net::to_string(p.endpoint.access) << ','
         << topology::to_string(r.provider) << ',' << r.region_id
         << ",5,10.5,11.5,12.5,3,3\n";
  const auto loaded = MeasurementDataset::read_csv(legacy, &fleet, &registry);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.records()[0].tick, 5u);
  EXPECT_EQ(loaded.records()[0].retries, 0);  // legacy rows fill as clean
  EXPECT_EQ(loaded.records()[0].faults, 0);
}

TEST(Dataset, CsvLoadRejectsMalformedResilienceColumns) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  const topology::CloudRegion& r = *registry.regions()[0];
  std::ostringstream prefix;
  prefix << "0," << p.country->iso2 << ','
         << geo::to_code(p.country->continent) << ','
         << net::to_string(p.endpoint.access) << ','
         << topology::to_string(r.provider) << ',' << r.region_id;
  const std::string header =
      "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
      "max_ms,sent,received,retries,faults\n";

  // 13 of 14 columns.
  std::stringstream missing(header + prefix.str() + ",5,10,11,12,3,3\n");
  EXPECT_THROW(MeasurementDataset::read_csv(missing, &fleet, &registry),
               std::runtime_error);
  // Non-numeric retries cell.
  std::stringstream garbled(header + prefix.str() + ",5,10,11,12,3,3,two,0\n");
  EXPECT_THROW(MeasurementDataset::read_csv(garbled, &fleet, &registry),
               std::runtime_error);
}

TEST(Dataset, CsvLoadRejectsOutOfRangeNumericFields) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  const topology::CloudRegion& r = *registry.regions()[0];
  std::ostringstream prefix;
  prefix << "0," << p.country->iso2 << ','
         << geo::to_code(p.country->continent) << ','
         << net::to_string(p.endpoint.access) << ','
         << topology::to_string(r.provider) << ',' << r.region_id;
  const std::string header =
      "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
      "max_ms,sent,received,retries,faults\n";
  const auto reject = [&](const std::string& row) {
    std::stringstream csv(header + row + "\n");
    EXPECT_THROW(MeasurementDataset::read_csv(csv, &fleet, &registry),
                 std::runtime_error)
        << row;
  };

  // Control: the same row with in-range values loads cleanly.
  std::stringstream good(header + prefix.str() + ",5,10,11,12,3,3,0,0\n");
  EXPECT_EQ(MeasurementDataset::read_csv(good, &fleet, &registry).size(), 1u);

  // Counters beyond the uint8 record fields used to wrap silently
  // (sent=300 loaded as 44); they must be malformed rows now.
  reject(prefix.str() + ",5,10,11,12,300,3,0,0");   // sent > 255
  reject(prefix.str() + ",5,10,11,12,3,300,0,0");   // received > 255
  reject(prefix.str() + ",5,10,11,12,-1,3,0,0");    // negative sent
  reject(prefix.str() + ",5,10,11,12,3,-2,0,0");    // negative received
  reject(prefix.str() + ",5,10,11,12,3,3,256,0");   // retries > 255
  reject(prefix.str() + ",5,10,11,12,3,3,0,999");   // faults > 255
  // Non-finite RTTs violate the stats::Ecdf precondition downstream.
  reject(prefix.str() + ",5,nan,11,12,3,3,0,0");
  reject(prefix.str() + ",5,10,inf,12,3,3,0,0");
  reject(prefix.str() + ",5,10,11,-inf,3,3,0,0");
  // Tick beyond 32 bits used to truncate (stoul is 64-bit on LP64).
  reject(prefix.str() + ",4294967296,10,11,12,3,3,0,0");

  // probe_id = 2^32 would alias onto probe 0 (matching metadata!) if the
  // id were narrowed before validation.
  std::stringstream aliased(header + "4294967296" +
                            prefix.str().substr(1) + ",5,10,11,12,3,3,0,0\n");
  EXPECT_THROW(MeasurementDataset::read_csv(aliased, &fleet, &registry),
               std::runtime_error);
}

TEST(Dataset, JsonlLoadRejectsOutOfRangeNumericFields) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  const topology::CloudRegion& r = *registry.regions()[0];
  const auto line = [&](const std::string& prb_id, const std::string& timestamp,
                        const std::string& sent, const std::string& rcvd,
                        const std::string& rtts) {
    std::ostringstream os;
    os << "{\"type\":\"ping\",\"prb_id\":" << prb_id << ",\"dst_name\":\""
       << topology::to_string(r.provider) << '/' << r.region_id
       << "\",\"timestamp\":" << timestamp << ",\"sent\":" << sent
       << ",\"rcvd\":" << rcvd << rtts << ",\"country\":\"" << p.country->iso2
       << "\",\"continent\":\"" << geo::to_code(p.country->continent)
       << "\",\"access\":\"" << net::to_string(p.endpoint.access) << "\"}\n";
    return os.str();
  };
  const std::string rtts = ",\"min\":10,\"avg\":11,\"max\":12";
  const auto reject = [&](const std::string& text) {
    std::stringstream jsonl(text);
    EXPECT_THROW(MeasurementDataset::read_jsonl(jsonl, &fleet, &registry, 3),
                 std::runtime_error)
        << text;
  };

  // Control: in-range values load cleanly.
  std::stringstream good(line("0", "10800", "3", "3", rtts));
  EXPECT_EQ(MeasurementDataset::read_jsonl(good, &fleet, &registry, 3).size(),
            1u);

  reject(line("0", "10800", "300", "3", rtts));  // sent > 255
  reject(line("0", "10800", "3", "-1", rtts));   // negative rcvd
  reject(line("0", "10800", "3", "3",            // non-finite RTTs
              ",\"min\":nan,\"avg\":11,\"max\":12"));
  reject(line("0", "10800", "3", "3",
              ",\"min\":10,\"avg\":inf,\"max\":12"));
  // Timestamp mapping to a tick beyond 32 bits (2^32 * 10800 s).
  reject(line("0", "46385646796800", "3", "3", rtts));
  // prb_id = 2^32 must not alias onto probe 0's metadata.
  reject(line("4294967296", "10800", "3", "3", rtts));
}

TEST(Dataset, JsonlRoundTripPreservesRecords) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  faults::FaultSchedule schedule;
  faults::FaultEvent blackout;
  blackout.kind = faults::FaultKind::kCountryBlackout;
  blackout.start_tick = 0;
  blackout.end_tick = 2;
  blackout.country_key = 0;
  schedule.add_event(blackout);
  const auto original = faulted_fixture(fleet, registry, model, schedule);

  std::stringstream buffer;
  original.write_jsonl(buffer, 3);
  const auto loaded =
      MeasurementDataset::read_jsonl(buffer, &fleet, &registry, 3);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const Measurement& a = original.records()[i];
    const Measurement& b = loaded.records()[i];
    EXPECT_EQ(a.probe_id, b.probe_id);
    EXPECT_EQ(a.region_index, b.region_index);
    EXPECT_EQ(a.tick, b.tick);
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.faults, b.faults);
    if (a.received > 0) {
      EXPECT_NEAR(a.min_ms, b.min_ms, 1e-3 + 1e-5 * a.min_ms);
      EXPECT_NEAR(a.avg_ms, b.avg_ms, 1e-3 + 1e-5 * a.avg_ms);
      EXPECT_NEAR(a.max_ms, b.max_ms, 1e-3 + 1e-5 * a.max_ms);
    } else {
      EXPECT_EQ(b.min_ms, 0.0f);  // lost bursts carry no latency
    }
  }
}

TEST(Dataset, JsonlLoadRejectsMalformedInput) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config = short_campaign_config();
  config.duration_days = 1;
  const auto dataset = Campaign(fleet, registry, model, config).run();

  std::stringstream not_json("this is not json\n");
  EXPECT_THROW(
      MeasurementDataset::read_jsonl(not_json, &fleet, &registry, 3),
      std::runtime_error);

  std::stringstream wrong_type(
      "{\"type\":\"traceroute\",\"prb_id\":0,\"dst_name\":\"x/y\","
      "\"timestamp\":0,\"sent\":3,\"rcvd\":3}\n");
  EXPECT_THROW(
      MeasurementDataset::read_jsonl(wrong_type, &fleet, &registry, 3),
      std::runtime_error);

  // Written at 3 h ticks, read back assuming 2 h: timestamps land off the
  // grid and must be rejected rather than silently remapped.
  std::stringstream buffer;
  dataset.write_jsonl(buffer, 3);
  EXPECT_THROW(MeasurementDataset::read_jsonl(buffer, &fleet, &registry, 2),
               std::runtime_error);

  EXPECT_THROW(MeasurementDataset::read_jsonl(buffer, &fleet, &registry, 0),
               std::invalid_argument);
}

TEST(Dataset, CsvRoundTripIsBitExact) {
  // The writers print floats at max_digits10, so a round trip preserves
  // every record bit for bit — and re-serialising yields identical bytes.
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const auto original =
      Campaign(fleet, registry, model, short_campaign_config()).run();

  std::stringstream buffer;
  original.write_csv(buffer);
  const std::string first_pass = buffer.str();
  const auto loaded = MeasurementDataset::read_csv(buffer, &fleet, &registry);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(original.records()[i].min_ms, loaded.records()[i].min_ms);
    EXPECT_EQ(original.records()[i].avg_ms, loaded.records()[i].avg_ms);
    EXPECT_EQ(original.records()[i].max_ms, loaded.records()[i].max_ms);
  }
  std::stringstream again;
  loaded.write_csv(again);
  EXPECT_EQ(first_pass, again.str());
}

TEST(Dataset, WritersRestoreStreamPrecision) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const auto dataset =
      Campaign(fleet, registry, model, short_campaign_config()).run();
  std::stringstream buffer;
  buffer.precision(3);
  dataset.write_csv(buffer);
  EXPECT_EQ(buffer.precision(), 3);  // the guard must not leak precision
  dataset.write_jsonl(buffer, 3);
  EXPECT_EQ(buffer.precision(), 3);
}

TEST(Dataset, CsvLoadRejectsTrailingGarbageInNumericCells) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  const topology::CloudRegion& r = *registry.regions()[0];
  std::ostringstream meta;
  meta << p.country->iso2 << ',' << geo::to_code(p.country->continent) << ','
       << net::to_string(p.endpoint.access) << ','
       << topology::to_string(r.provider) << ',' << r.region_id;
  const std::string header =
      "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
      "max_ms,sent,received,retries,faults\n";
  const auto reject = [&](const std::string& row) {
    std::stringstream csv(header + row + "\n");
    EXPECT_THROW(MeasurementDataset::read_csv(csv, &fleet, &registry),
                 std::runtime_error)
        << row;
  };

  // Control: the clean row loads.
  std::stringstream good(header + "0," + meta.str() + ",5,10,11,12,3,3,0,0\n");
  EXPECT_EQ(MeasurementDataset::read_csv(good, &fleet, &registry).size(), 1u);

  // std::sto* stops at the first non-numeric character, so these cells
  // used to parse as their numeric prefix and load silently.
  reject("12abc," + meta.str() + ",5,10,11,12,3,3,0,0");  // probe id
  reject("0," + meta.str() + ",5x,10,11,12,3,3,0,0");     // tick
  reject("0," + meta.str() + ",5,10ms,11,12,3,3,0,0");    // RTT
  reject("0," + meta.str() + ",5,10,11,12,3pkt,3,0,0");   // sent
  reject("0," + meta.str() + ",5,10,11,12,3,3,0x1,0");    // retries
}

TEST(Dataset, LoadersRejectReceivedExceedingSent) {
  // rcvd > sent is physically impossible for a ping burst; accepting it
  // would corrupt downstream loss statistics.
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  const topology::CloudRegion& r = *registry.regions()[0];

  std::stringstream csv;
  csv << "probe_id,country,continent,access,provider,region,tick,min_ms,"
         "avg_ms,max_ms,sent,received,retries,faults\n"
      << "0," << p.country->iso2 << ',' << geo::to_code(p.country->continent)
      << ',' << net::to_string(p.endpoint.access) << ','
      << topology::to_string(r.provider) << ',' << r.region_id
      << ",5,10,11,12,3,4,0,0\n";
  EXPECT_THROW(MeasurementDataset::read_csv(csv, &fleet, &registry),
               std::runtime_error);

  std::stringstream jsonl;
  jsonl << "{\"type\":\"ping\",\"prb_id\":0,\"dst_name\":\""
        << topology::to_string(r.provider) << '/' << r.region_id
        << "\",\"timestamp\":10800,\"sent\":3,\"rcvd\":4,\"min\":10,"
           "\"avg\":11,\"max\":12,\"country\":\"" << p.country->iso2
        << "\",\"continent\":\"" << geo::to_code(p.country->continent)
        << "\",\"access\":\"" << net::to_string(p.endpoint.access) << "\"}\n";
  EXPECT_THROW(MeasurementDataset::read_jsonl(jsonl, &fleet, &registry, 3),
               std::runtime_error);
}

TEST(Dataset, UnknownRegionErrorsCarryTheLineNumber) {
  const ProbeFleet fleet = ProbeFleet::generate(small_fleet_config());
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const Probe& p = fleet.probe(0);
  std::stringstream csv;
  csv << "probe_id,country,continent,access,provider,region,tick,min_ms,"
         "avg_ms,max_ms,sent,received,retries,faults\n"
      << "0," << p.country->iso2 << ',' << geo::to_code(p.country->continent)
      << ',' << net::to_string(p.endpoint.access)
      << ",Initech,nowhere-1,5,10,11,12,3,3,0,0\n";
  try {
    (void)MeasurementDataset::read_csv(csv, &fleet, &registry);
    FAIL() << "unknown region must be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("at line 2"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace shears::atlas
