// The serving front-end: frame codec round-trips and per-frame error
// confinement, admission control (queue bounds, deadline-aware drops,
// token-bucket fairness), staleness recovery, client retry policy, and
// traffic-generator determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "atlas/tags.hpp"
#include "front/client.hpp"
#include "front/frame.hpp"
#include "front/server.hpp"
#include "front/traffic.hpp"
#include "geo/country.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

namespace shears::front {
namespace {

// ---------------------------------------------------------------- codec

Request sample_request() {
  Request req;
  req.request_id = 0x1122334455667788ULL;
  req.client_id = 42;
  req.deadline_us = 123456;
  req.kind = serve::QueryKind::kTopK;
  req.lat_deg = 52.52;
  req.lon_deg = 13.405;
  req.country_iso2 = "DE";
  req.access = net::AccessTechnology::kLte;
  req.any_access = false;
  req.app_id = "cloud-gaming";
  req.budget_ms = 60.0;
  req.k = 3;
  return req;
}

/// Pulls every decodable item out of a byte buffer in one pass.
std::vector<FrameDecoder::Item> drain(FrameDecoder& decoder) {
  std::vector<FrameDecoder::Item> items;
  while (true) {
    FrameDecoder::Item item = decoder.next();
    if (item.status == DecodeStatus::kNeedMore) break;
    items.push_back(std::move(item));
  }
  return items;
}

TEST(Frame, RequestRoundTripsThroughDecoder) {
  const Request req = sample_request();
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, req);

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto items = drain(decoder);
  ASSERT_EQ(items.size(), 1u);
  ASSERT_EQ(items[0].status, DecodeStatus::kFrame);
  EXPECT_EQ(items[0].type, FrameType::kRequest);

  Request back;
  ASSERT_TRUE(decode_request(items[0].payload, back));
  EXPECT_EQ(back, req);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, ResponseAndErrorRoundTrip) {
  Response res;
  res.request_id = 7;
  res.ok = true;
  res.country_iso2 = "IN";
  res.best_region = 12;
  res.best_ms = 34.5;
  res.median_ms = 40.25;
  res.p95_ms = 58.0;
  res.verdict = core::EdgeVerdict::kEdgeFeasible;
  res.in_zone = true;
  res.regions = {{12, 34.5}, {3, 36.0}};
  const Error err{9, ErrorCode::kOverloaded, "queue full"};

  std::vector<std::uint8_t> bytes;
  append_response_frame(bytes, res);
  append_error_frame(bytes, err);

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto items = drain(decoder);
  ASSERT_EQ(items.size(), 2u);

  Response res_back;
  ASSERT_TRUE(decode_response(items[0].payload, res_back));
  EXPECT_EQ(res_back, res);
  Error err_back;
  ASSERT_TRUE(decode_error(items[1].payload, err_back));
  EXPECT_EQ(err_back, err);
}

TEST(Frame, TruncatedFrameWaitsForMoreBytes) {
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, sample_request());

  FrameDecoder decoder;
  // Byte-at-a-time delivery must produce exactly one frame, at the end.
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(std::span<const std::uint8_t>(&bytes[i], 1));
    EXPECT_EQ(decoder.next().status, DecodeStatus::kNeedMore) << i;
  }
  decoder.feed(std::span<const std::uint8_t>(&bytes.back(), 1));
  EXPECT_EQ(decoder.next().status, DecodeStatus::kFrame);
  EXPECT_EQ(decoder.next().status, DecodeStatus::kNeedMore);
}

TEST(Frame, BadChecksumSkipsExactlyOneFrame) {
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, sample_request());
  const std::size_t first_size = bytes.size();
  append_error_frame(bytes, Error{1, ErrorCode::kStale, ""});
  bytes[first_size - 1] ^= 0xff;  // corrupt the first frame's payload

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto items = drain(decoder);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].status, DecodeStatus::kBadChecksum);
  ASSERT_EQ(items[1].status, DecodeStatus::kFrame);
  EXPECT_EQ(items[1].type, FrameType::kError);
  EXPECT_EQ(decoder.tally().bad_checksum, 1u);
  EXPECT_EQ(decoder.tally().frames, 1u);
}

TEST(Frame, GarbagePrefixResyncsToNextMagic) {
  std::vector<std::uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef, 0x01};
  append_error_frame(bytes, Error{5, ErrorCode::kThrottled, ""});

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto items = drain(decoder);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].status, DecodeStatus::kBadMagic);
  EXPECT_EQ(items[1].status, DecodeStatus::kFrame);
  EXPECT_EQ(decoder.tally().resync_bytes, 5u);
}

/// Hand-rolls a frame with arbitrary header fields (to reach the
/// bad-version / bad-type / bad-length paths with a valid checksum).
std::vector<std::uint8_t> raw_frame(std::uint8_t version, std::uint8_t type,
                                    std::uint32_t claimed_length,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(kFrameMagic));
  out.push_back(static_cast<std::uint8_t>(kFrameMagic >> 8));
  out.push_back(version);
  out.push_back(type);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(claimed_length >> (8 * i)));
  }
  const std::uint32_t checksum = frame_checksum(version, type, payload);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

TEST(Frame, UnknownVersionAndTypeSkipWholeFrames) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  std::vector<std::uint8_t> bytes = raw_frame(
      9, static_cast<std::uint8_t>(FrameType::kRequest),
      static_cast<std::uint32_t>(payload.size()), payload);
  const auto typeless =
      raw_frame(kProtocolVersion, 77,
                static_cast<std::uint32_t>(payload.size()), payload);
  bytes.insert(bytes.end(), typeless.begin(), typeless.end());
  append_error_frame(bytes, Error{2, ErrorCode::kBadRequest, ""});

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto items = drain(decoder);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].status, DecodeStatus::kBadVersion);
  EXPECT_EQ(items[1].status, DecodeStatus::kBadType);
  EXPECT_EQ(items[2].status, DecodeStatus::kFrame);
}

TEST(Frame, OversizedLengthResynchronises) {
  const std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> bytes =
      raw_frame(kProtocolVersion,
                static_cast<std::uint8_t>(FrameType::kError),
                kMaxPayloadBytes + 1, payload);
  append_error_frame(bytes, Error{3, ErrorCode::kStale, ""});

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto items = drain(decoder);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].status, DecodeStatus::kBadLength);
  EXPECT_EQ(items[1].status, DecodeStatus::kFrame);
}

// ---------------------------------------------------------------- server

atlas::Probe make_probe(atlas::ProbeId id, const char* iso2,
                        net::AccessTechnology access) {
  atlas::Probe probe;
  probe.id = id;
  probe.country = geo::find_country(iso2);
  EXPECT_NE(probe.country, nullptr) << iso2;
  probe.endpoint.location = probe.country->site;
  probe.endpoint.tier = probe.country->tier;
  probe.endpoint.access = access;
  probe.environment = atlas::Environment::kHome;
  probe.tags = atlas::make_tags(access, atlas::Environment::kHome, true);
  return probe;
}

atlas::Measurement row(atlas::ProbeId probe, std::uint16_t region,
                       std::uint32_t tick, float min_ms) {
  atlas::Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.min_ms = min_ms;
  m.avg_ms = min_ms + 1.0f;
  m.max_ms = min_ms + 2.0f;
  m.sent = 3;
  m.received = 3;
  return m;
}

/// A tiny served world: DE ethernet, DE LTE, FR ethernet over the first
/// three footprint regions, with data for all of them.
struct FrontWorld {
  topology::CloudRegistry registry;
  atlas::ProbeFleet fleet;
  serve::ColumnarStore store;
  serve::Oracle oracle;

  FrontWorld()
      : registry({topology::all_regions().data(),
                  topology::all_regions().data() + 1,
                  topology::all_regions().data() + 2}),
        fleet(atlas::ProbeFleet::from_probes({
            make_probe(0, "DE", net::AccessTechnology::kEthernet),
            make_probe(1, "DE", net::AccessTechnology::kLte),
            make_probe(2, "FR", net::AccessTechnology::kEthernet),
        })),
        store(&fleet, &registry, serve::StoreConfig{1}),
        oracle(&store, serve::OracleConfig{1, {}}) {
    store.append(std::vector<atlas::Measurement>{
        row(0, 0, 0, 20.0f), row(0, 1, 0, 55.0f), row(1, 0, 0, 35.0f),
        row(2, 1, 0, 70.0f)});
    store.refresh();
  }
};

Request best_rtt_request(std::uint64_t id, const char* iso2,
                         SimTime deadline_us = 0) {
  Request req;
  req.request_id = id;
  req.client_id = 1;
  req.deadline_us = deadline_us;
  req.kind = serve::QueryKind::kBestRtt;
  req.country_iso2 = iso2;
  req.any_access = true;
  return req;
}

/// Decodes every frame in a delivered byte buffer.
std::vector<FrameDecoder::Item> decode_all(
    const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  return drain(decoder);
}

TEST(FrontServer, AnswersMatchTheOracleDirectly) {
  FrontWorld world;
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  const ConnId conn = server.connect(1);

  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, best_rtt_request(1, "DE"));
  append_request_frame(bytes, best_rtt_request(2, "FR"));
  server.submit(conn, bytes, 0);
  server.run_until(1'000'000);

  const auto items = decode_all(server.take_output(conn, 1'000'000));
  ASSERT_EQ(items.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(items[i].status, DecodeStatus::kFrame);
    ASSERT_EQ(items[i].type, FrameType::kResponse);
  }

  Response de;
  ASSERT_TRUE(decode_response(items[0].payload, de));
  const Response expected_de = make_response(
      1, world.oracle.answer_one(best_rtt_request(1, "DE").query()),
      world.registry);
  EXPECT_EQ(de, expected_de);
  EXPECT_TRUE(de.ok);
  EXPECT_EQ(de.best_ms, 20.0);

  Response fr;
  ASSERT_TRUE(decode_response(items[1].payload, fr));
  EXPECT_TRUE(fr.ok);
  EXPECT_EQ(fr.best_ms, 70.0);

  EXPECT_EQ(server.stats().answered, 2u);
  EXPECT_EQ(server.stats().batches, 1u);
  EXPECT_TRUE(server.drained());
}

TEST(FrontServer, FullQueueShedsWithOverloadedFrames) {
  FrontWorld world;
  FrontConfig config;
  config.queue_capacity = 2;
  FrontServer server(&world.oracle, &world.store, config);
  const ConnId conn = server.connect(1);

  std::vector<std::uint8_t> bytes;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    append_request_frame(bytes, best_rtt_request(id, "DE"));
  }
  server.submit(conn, bytes, 0);
  server.run_until(1'000'000);

  EXPECT_EQ(server.stats().admitted, 2u);
  EXPECT_EQ(server.stats().shed_queue_full, 3u);
  EXPECT_EQ(server.stats().answered, 2u);

  std::size_t overloaded = 0;
  for (const auto& item : decode_all(server.take_output(conn, 1'000'000))) {
    if (item.type != FrameType::kError) continue;
    Error err;
    ASSERT_TRUE(decode_error(item.payload, err));
    EXPECT_EQ(err.code, ErrorCode::kOverloaded);
    ++overloaded;
  }
  EXPECT_EQ(overloaded, 3u);
}

TEST(FrontServer, DeadlinePropagatesThroughAdmissionAndService) {
  FrontWorld world;
  FrontConfig config;
  config.max_batch = 1;
  config.batch_overhead_us = 300;
  config.per_query_us = 10;
  FrontServer server(&world.oracle, &world.store, config);
  const ConnId conn = server.connect(1);

  // Four requests in one burst; EDF serves the tightest deadline first,
  // one per batch (310 us each):
  //   batch @0   -> id 2 (deadline 330): completes 310, in time
  //   batch @310 -> id 3 (deadline 335): cannot finish before 610 even
  //                 alone — hopeless, dropped at dequeue without
  //                 burning the service slot on a guaranteed miss
  //   batch @310 -> id 4 (deadline 620): the freed slot; completes 620,
  //                 exactly in time — the drop is what saved it
  //   batch @620 -> id 1 (no deadline):  completes 930
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, best_rtt_request(1, "DE"));
  append_request_frame(bytes, best_rtt_request(2, "DE", 330));
  append_request_frame(bytes, best_rtt_request(3, "DE", 335));
  append_request_frame(bytes, best_rtt_request(4, "DE", 620));
  server.submit(conn, bytes, 0);
  server.run_until(10'000);

  EXPECT_EQ(server.stats().admitted, 4u);
  EXPECT_EQ(server.stats().answered, 3u);
  EXPECT_EQ(server.stats().expired_served, 0u);
  EXPECT_EQ(server.stats().expired_in_queue, 1u);

  // And a request whose deadline the backlog already forfeits is shed
  // at the door instead of queued.
  std::vector<std::uint8_t> doomed;
  append_request_frame(doomed, best_rtt_request(9, "DE", 10'100));
  server.submit(conn, doomed, 10'000);
  EXPECT_EQ(server.stats().shed_deadline, 1u);

  const auto items = decode_all(server.take_output(conn, 20'000));
  std::size_t deadline_errors = 0;
  for (const auto& item : items) {
    if (item.type != FrameType::kError) continue;
    Error err;
    ASSERT_TRUE(decode_error(item.payload, err));
    if (err.code == ErrorCode::kDeadlineExceeded) ++deadline_errors;
  }
  EXPECT_EQ(deadline_errors, 1u);  // id 3; the admission shed is kOverloaded
}

TEST(FrontServer, TokenBucketThrottlesPerClient) {
  FrontWorld world;
  FrontConfig config;
  config.client_rate_qps = 1000;  // 1 token per ms
  config.client_burst = 2;
  FrontServer server(&world.oracle, &world.store, config);
  const ConnId hot = server.connect(1);
  const ConnId calm = server.connect(2);

  std::vector<std::uint8_t> burst;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    append_request_frame(burst, best_rtt_request(id, "DE"));
  }
  server.submit(hot, burst, 0);
  // The hot client's spill hits its own bucket, not the other client.
  EXPECT_EQ(server.stats().shed_throttled, 2u);

  std::vector<std::uint8_t> one;
  append_request_frame(one, best_rtt_request(10, "FR"));
  server.submit(calm, one, 0);
  EXPECT_EQ(server.stats().shed_throttled, 2u);
  EXPECT_EQ(server.stats().admitted, 3u);

  // One millisecond refills exactly one token.
  std::vector<std::uint8_t> later;
  append_request_frame(later, best_rtt_request(5, "DE"));
  append_request_frame(later, best_rtt_request(6, "DE"));
  server.submit(hot, later, 1000);
  EXPECT_EQ(server.stats().shed_throttled, 3u);
  EXPECT_EQ(server.stats().admitted, 4u);
}

TEST(FrontServer, StaleStoreRefreshesAndRetries) {
  FrontWorld world;
  // Live appends since the last refresh: the oracle alone would throw.
  world.store.append(std::vector<atlas::Measurement>{row(0, 2, 1, 15.0f)});
  ASSERT_FALSE(world.store.fresh());

  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  const ConnId conn = server.connect(1);
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, best_rtt_request(1, "DE"));
  server.submit(conn, bytes, 0);
  server.run_until(1'000'000);

  EXPECT_EQ(server.stats().stale_refreshes, 1u);
  EXPECT_EQ(server.stats().answered, 1u);
  EXPECT_TRUE(world.store.fresh());

  const auto items = decode_all(server.take_output(conn, 1'000'000));
  ASSERT_EQ(items.size(), 1u);
  Response res;
  ASSERT_TRUE(decode_response(items[0].payload, res));
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.best_ms, 15.0);  // the appended row is visible
}

TEST(FrontServer, WithoutAMutableStoreStaleBecomesARetryableError) {
  FrontWorld world;
  world.store.append(std::vector<atlas::Measurement>{row(0, 2, 1, 15.0f)});

  FrontServer server(&world.oracle, nullptr, FrontConfig{});
  const ConnId conn = server.connect(1);
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, best_rtt_request(1, "DE"));
  server.submit(conn, bytes, 0);
  server.run_until(1'000'000);

  EXPECT_EQ(server.stats().stale_refreshes, 0u);
  EXPECT_EQ(server.stats().answered, 0u);
  const auto items = decode_all(server.take_output(conn, 1'000'000));
  ASSERT_EQ(items.size(), 1u);
  Error err;
  ASSERT_TRUE(decode_error(items[0].payload, err));
  EXPECT_EQ(err.code, ErrorCode::kStale);
  EXPECT_TRUE(retryable(err.code));
  world.store.refresh();  // leave the shared fixture consistent
}

TEST(FrontServer, MalformedFramesAreConfinedToOneRequest) {
  FrontWorld world;
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  const ConnId conn = server.connect(1);

  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, best_rtt_request(1, "DE"));
  const std::size_t first_size = bytes.size();
  append_request_frame(bytes, best_rtt_request(2, "FR"));
  bytes[first_size - 3] ^= 0xff;  // corrupt request 1's payload

  server.submit(conn, bytes, 0);
  server.run_until(1'000'000);

  EXPECT_EQ(server.stats().decode_errors, 1u);
  EXPECT_EQ(server.stats().answered, 1u);

  const auto items = decode_all(server.take_output(conn, 1'000'000));
  ASSERT_EQ(items.size(), 1u);
  Response res;
  ASSERT_TRUE(decode_response(items[0].payload, res));
  EXPECT_EQ(res.request_id, 2u);
}

// ---------------------------------------------------------------- client

TEST(FrontClient, RetriesTransientErrorsWithCappedBackoff) {
  ClientConfig config;
  config.max_retries = 3;
  config.backoff_base_us = 5000;
  config.backoff_cap_us = 15000;
  config.jitter_fraction = 0.0;  // exact backoff arithmetic
  FrontClient client(7, config, 2020);

  serve::Query query;
  (void)client.make_request(query, 0, 100);
  const std::uint64_t id = std::uint64_t{7} << 32;

  std::vector<std::uint8_t> overloaded;
  append_error_frame(overloaded, Error{id, ErrorCode::kOverloaded, ""});

  // Attempt 1 fails -> retry at +5000; 2 -> +10000; 3 -> capped +15000.
  auto outcomes = client.on_bytes(overloaded, 1000);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, FrontClient::Outcome::Kind::kRetry);
  EXPECT_EQ(outcomes[0].retry_at, 6000u);

  outcomes = client.on_bytes(overloaded, 7000);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].retry_at, 17000u);

  outcomes = client.on_bytes(overloaded, 18000);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].retry_at, 33000u);

  // Retries exhausted: the fourth error is final.
  outcomes = client.on_bytes(overloaded, 34000);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, FrontClient::Outcome::Kind::kFailed);
  EXPECT_EQ(client.stats().retries, 3u);
  EXPECT_EQ(client.stats().failed, 1u);
  EXPECT_EQ(client.in_flight(), 0u);
}

TEST(FrontClient, FatalErrorsDoNotRetryAndLatencyCountsFromFirstIssue) {
  FrontClient client(3, ClientConfig{}, 2020);
  serve::Query query;

  (void)client.make_request(query, 0, 0);
  const std::uint64_t first = std::uint64_t{3} << 32;
  std::vector<std::uint8_t> bad;
  append_error_frame(bad, Error{first, ErrorCode::kBadRequest, ""});
  auto outcomes = client.on_bytes(bad, 500);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, FrontClient::Outcome::Kind::kFailed);

  // A deadline miss is terminal too: retrying cannot un-miss it.
  (void)client.make_request(query, 1, 1000);
  const std::uint64_t second = first + 1;
  std::vector<std::uint8_t> late;
  append_error_frame(late, Error{second, ErrorCode::kDeadlineExceeded, ""});
  outcomes = client.on_bytes(late, 2000);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, FrontClient::Outcome::Kind::kFailed);

  // Completion measures user latency from the *first* issue time.
  (void)client.make_request(query, 2, 10'000);
  const std::uint64_t third = first + 2;
  std::vector<std::uint8_t> done;
  Response res;
  res.request_id = third;
  res.ok = true;
  append_response_frame(done, res);
  outcomes = client.on_bytes(done, 12'500);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, FrontClient::Outcome::Kind::kCompleted);
  EXPECT_EQ(outcomes[0].latency_ms, 2.5);
  ASSERT_EQ(client.latencies_ms().size(), 1u);
  EXPECT_EQ(client.latencies_ms()[0], 2.5);
}

// --------------------------------------------------------------- traffic

TEST(Traffic, PercentileIsExactNearestRank) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile_ms(samples, 0.50), 50.0);
  EXPECT_EQ(percentile_ms(samples, 0.95), 95.0);
  EXPECT_EQ(percentile_ms(samples, 0.99), 99.0);
  EXPECT_EQ(percentile_ms(samples, 1.00), 100.0);
  EXPECT_EQ(percentile_ms({}, 0.99), 0.0);
  EXPECT_EQ(percentile_ms({42.0}, 0.5), 42.0);
}

TEST(Traffic, OpenSessionIsByteReproducible) {
  FrontWorld world;
  const std::vector<serve::Query> corpus = make_corpus(world.fleet, 64);

  TrafficConfig config;
  config.arrival = ArrivalMode::kOpen;
  config.clients = 4;
  config.offered_qps = 2000;
  config.duration_us = 50'000;
  config.seed = 2020;

  FrontServer a(&world.oracle, &world.store, FrontConfig{});
  const TrafficReport first = run_traffic(a, corpus, config);
  FrontServer b(&world.oracle, &world.store, FrontConfig{});
  const TrafficReport second = run_traffic(b, corpus, config);

  EXPECT_EQ(first, second);
  EXPECT_GT(first.offered, 0u);
  EXPECT_EQ(first.completed, first.offered);  // uncontended: all answered
  EXPECT_TRUE(first.drained);
  EXPECT_GT(first.p50_ms, 0.0);

  // A different seed is a genuinely different session.
  TrafficConfig reseeded = config;
  reseeded.seed = 2021;
  FrontServer c(&world.oracle, &world.store, FrontConfig{});
  const TrafficReport third = run_traffic(c, corpus, reseeded);
  EXPECT_NE(first, third);
}

TEST(Traffic, ClosedSessionKeepsOneRequestInFlightPerClient) {
  FrontWorld world;
  const std::vector<serve::Query> corpus = make_corpus(world.fleet, 64);

  TrafficConfig config;
  config.arrival = ArrivalMode::kClosed;
  config.clients = 3;
  config.think_time_us = 5000;
  config.duration_us = 100'000;
  config.seed = 7;

  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  const TrafficReport report = run_traffic(server, corpus, config);

  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.drained);
  // Closed loop: at most duration/think_time sends per client.
  EXPECT_LE(report.offered,
            static_cast<std::uint64_t>(config.clients) *
                (config.duration_us / config.think_time_us + 1));
}

TEST(Traffic, ConfigValidationRejectsDegenerateSessions) {
  TrafficConfig config;
  config.clients = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = TrafficConfig{};
  config.offered_qps = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = TrafficConfig{};
  config.zipf_exponent = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = TrafficConfig{};
  config.duration_us = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace shears::front
