// Tests for the Fig. 1 zeitgeist module.
#include <gtest/gtest.h>

#include "trends/trends.hpp"

namespace shears::trends {
namespace {

TEST(Series, CoverTheFullWindow) {
  for (const Topic t : {Topic::kEdgeComputing, Topic::kCloudComputing}) {
    EXPECT_EQ(search_popularity(t).size(),
              static_cast<std::size_t>(kLastYear - kFirstYear + 1));
    EXPECT_EQ(publications(t).size(),
              static_cast<std::size_t>(kLastYear - kFirstYear + 1));
  }
}

TEST(Series, YearsAreSequential) {
  for (const Topic t : {Topic::kEdgeComputing, Topic::kCloudComputing}) {
    int expected = kFirstYear;
    for (const TrendPoint& p : search_popularity(t)) {
      EXPECT_EQ(p.year, expected++);
    }
  }
}

TEST(Series, ValueLookup) {
  EXPECT_DOUBLE_EQ(value_in(search_popularity(Topic::kCloudComputing), 2012),
                   100.0);
  EXPECT_DOUBLE_EQ(value_in(search_popularity(Topic::kCloudComputing), 1999),
                   0.0);
}

TEST(Series, CloudSearchPeaksEarlyThenDeclines) {
  const auto cloud = search_popularity(Topic::kCloudComputing);
  double peak = 0.0;
  int peak_year = 0;
  for (const TrendPoint& p : cloud) {
    if (p.value > peak) {
      peak = p.value;
      peak_year = p.year;
    }
  }
  EXPECT_GE(peak_year, 2010);
  EXPECT_LE(peak_year, 2013);
  EXPECT_LT(value_in(cloud, kLastYear), peak * 0.6);
}

TEST(Series, EdgeRisesLate) {
  const auto edge = search_popularity(Topic::kEdgeComputing);
  EXPECT_LE(value_in(edge, 2012), 2.0);
  EXPECT_GE(value_in(edge, 2019), 30.0);
  // Publications explode after 2015 (order-of-magnitude growth).
  const auto pubs = publications(Topic::kEdgeComputing);
  EXPECT_GT(value_in(pubs, 2019), 10.0 * value_in(pubs, 2015));
}

TEST(Eras, MatchTheNarrative) {
  // §2: CDN era until the late 2000s, cloud era through the mid-2010s,
  // edge era after ("Cloudlets in 2009 started the Edge era" as research,
  // but the publication/search inflection lands mid-decade).
  const EraBoundaries eras = segment_eras();
  EXPECT_GE(eras.cdn_until, 2006);
  EXPECT_LE(eras.cdn_until, 2009);
  EXPECT_GE(eras.cloud_until, 2012);
  EXPECT_LE(eras.cloud_until, 2016);
  EXPECT_GT(eras.cloud_until, eras.cdn_until);
}

TEST(Growth, CagrBasics) {
  const auto pubs = publications(Topic::kEdgeComputing);
  const double g = cagr(pubs, 2015, 2019);
  EXPECT_GT(g, 1.0);  // >100% per year through the boom
  EXPECT_DOUBLE_EQ(cagr(pubs, 2019, 2015), 0.0);
  EXPECT_DOUBLE_EQ(cagr(pubs, 1990, 2019), 0.0);
}

TEST(Growth, LogFitSlopePositiveForEdgeBoom) {
  const auto fit =
      log_growth_fit(publications(Topic::kEdgeComputing), 2013, 2019);
  EXPECT_GT(fit.slope, 0.5);  // ~e^0.5 - 1 = 65%+ annual growth
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Growth, CrossoverDetection) {
  const int year =
      growth_crossover_year(publications(Topic::kEdgeComputing),
                            publications(Topic::kCloudComputing), 1.5);
  EXPECT_GE(year, 2013);
  EXPECT_LE(year, 2016);
  // With an absurd margin there is no crossover.
  EXPECT_EQ(growth_crossover_year(publications(Topic::kEdgeComputing),
                                  publications(Topic::kCloudComputing), 50.0),
            -1);
}

}  // namespace
}  // namespace shears::trends
