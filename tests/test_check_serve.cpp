// Property tests for the serving layer: the spatial index against a
// brute-force geodesic scan (with antimeridian / polar point clouds),
// the indexed oracle against the full-scan reference over generated
// worlds — every build path and thread count must answer bit for bit
// identically — and the snapshot subsystem: save → load answer
// identity, plus corpus fuzzing of the loader's error confinement.
#include <gtest/gtest.h>

#include <vector>

#include "atlas/measurement.hpp"
#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "check/property.hpp"
#include "check/world.hpp"
#include "geo/coordinates.hpp"
#include "serve/oracle.hpp"

namespace shears::check {
namespace {

TEST(ServeProperty, SpatialIndexMatchesBruteForce) {
  const CheckResult result = check(
      "spatial_index_vs_brute_force",
      [](Gen& gen) {
        const std::size_t count =
            static_cast<std::size_t>(gen.scaled(1)) * 4;
        const std::vector<geo::GeoPoint> points =
            make_geo_points(gen, count);
        const std::vector<geo::GeoPoint> queries =
            make_geo_points(gen, 24);
        const double radius_km = gen.real_in(10.0, 6000.0);
        check_spatial_index(points, queries, radius_km,
                            "points=" + std::to_string(points.size()));
      },
      16);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(ServeProperty, OracleMatchesFullScanReference) {
  const CheckResult result = check(
      "oracle_vs_fullscan",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        const std::vector<serve::Query> queries =
            make_queries(gen, world, 32);
        check_oracle_vs_fullscan(world, dataset, queries);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(ServeProperty, SnapshotRoundTripAnswersIdentically) {
  const CheckResult result = check(
      "snapshot_roundtrip",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        const std::vector<serve::Query> queries =
            make_queries(gen, world, 24);
        check_snapshot_roundtrip(world, dataset, queries);
      },
      6);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(ServeFuzz, SnapshotLoaderConfinesCorruptImages) {
  const CheckResult result = check(
      "fuzz_snapshot",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        const SnapshotFuzzStats stats =
            fuzz_snapshot(gen, world, dataset, 48);
        require(stats.loaded + stats.rejected == stats.rounds,
                "every round must load or reject");
        require(stats.loaded >= stats.clean,
                "clean images must always load");
      },
      4);
  EXPECT_TRUE(result.passed) << result.banner;
}

}  // namespace
}  // namespace shears::check
