// The sampling-cache determinism contract (DESIGN.md, "Sampling cache"):
//
//   * cached and recomputing engines produce byte-identical datasets;
//   * golden FNV-1a checksums captured from the PRE-cache engine pin the
//     exact bytes, so any silent divergence (a reordered draw, a folded
//     constant, an unsafe compiler flag) fails loudly;
//   * results are invariant across campaign thread counts;
//   * the precomputed path/profile state matches the recomputing entry
//     points field for field, and the hoisted per-burst math matches the
//     formulas it replaced.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "atlas/campaign.hpp"
#include "atlas/path_cache.hpp"
#include "atlas/placement.hpp"
#include "config/scenario.hpp"
#include "net/latency_model.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace shears {
namespace {

/// FNV-1a over every field of every record, floats by bit pattern — the
/// same digest the capture harness used against the pre-cache engine.
std::uint64_t dataset_checksum(const atlas::MeasurementDataset& ds) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const atlas::Measurement& m : ds.records()) {
    mix(m.probe_id);
    mix(m.region_index);
    mix(m.tick);
    std::uint32_t bits = 0;
    std::memcpy(&bits, &m.min_ms, sizeof bits);
    mix(bits);
    std::memcpy(&bits, &m.avg_ms, sizeof bits);
    mix(bits);
    std::memcpy(&bits, &m.max_ms, sizeof bits);
    mix(bits);
    mix(m.sent);
    mix(m.received);
    mix(m.retries);
    mix(m.faults);
  }
  return h;
}

// Golden checksums captured from the recomputing engine BEFORE the cache
// layer landed (commit f38bf78 lineage). They are the ground truth the
// optimised engine must keep reproducing bit for bit.
constexpr std::uint64_t kGoldenSmallDefault = 0xc651f46c9bbf3d01ULL;
constexpr std::uint64_t kGoldenChurnMulti = 0x679b79bcd1dfd8caULL;
constexpr std::uint64_t kGoldenPaper9Months = 0x46d3f0dd8d6cfb2bULL;
constexpr std::uint64_t kGoldenFaulted9Months = 0x50b5875f3010277eULL;
constexpr std::uint64_t kGoldenStressNoisy = 0x4e326ef751afea68ULL;

atlas::ProbeFleet small_fleet() {
  atlas::PlacementConfig pc;
  pc.probe_count = 256;
  pc.seed = 5;
  return atlas::ProbeFleet::generate(pc);
}

atlas::CampaignConfig small_config() {
  atlas::CampaignConfig cc;
  cc.duration_days = 3;
  cc.seed = 7;
  cc.threads = 1;
  return cc;
}

TEST(SamplingCacheGolden, SmallDefaultMatchesPreCacheEngine) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig cc = small_config();

  const auto cached = atlas::Campaign(fleet, registry, model, cc).run();
  EXPECT_EQ(dataset_checksum(cached), kGoldenSmallDefault);
  EXPECT_EQ(cached.size(), 6144u);

  cc.sampling_cache = false;
  const auto uncached = atlas::Campaign(fleet, registry, model, cc).run();
  EXPECT_EQ(dataset_checksum(uncached), kGoldenSmallDefault);
}

TEST(SamplingCacheGolden, ChurnMultiTargetMatchesPreCacheEngine) {
  // Probe churn + multiple targets per tick exercises the generic
  // (non-fast-path) cached loop.
  atlas::PlacementConfig pc;
  pc.probe_count = 300;
  pc.seed = 11;
  const auto fleet = atlas::ProbeFleet::generate(pc);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig cc;
  cc.duration_days = 5;
  cc.targets_per_tick = 2;
  cc.probe_uptime = 0.9;
  cc.seed = 99;
  cc.threads = 2;

  const auto cached = atlas::Campaign(fleet, registry, model, cc).run();
  EXPECT_EQ(dataset_checksum(cached), kGoldenChurnMulti);

  cc.sampling_cache = false;
  const auto uncached = atlas::Campaign(fleet, registry, model, cc).run();
  EXPECT_EQ(dataset_checksum(uncached), kGoldenChurnMulti);
}

std::uint64_t scenario_checksum(const char* file) {
  std::ifstream in(std::string(SHEARS_SOURCE_DIR) + "/scenarios/" + file);
  EXPECT_TRUE(in.good()) << file;
  config::Scenario sc = config::parse_scenario(in);
  sc.campaign.duration_days = 2;  // checksum window, not the full 9 months
  sc.campaign.threads = 1;
  atlas::PlacementConfig pc = sc.fleet;
  pc.probe_count = 256;
  const auto fleet = atlas::ProbeFleet::generate(pc);
  const auto registry = sc.make_registry();
  const net::LatencyModel model(sc.model);
  const auto schedule = sc.make_fault_schedule();
  const auto ds =
      atlas::Campaign(fleet, registry, model, sc.campaign, &schedule).run();
  return dataset_checksum(ds);
}

TEST(SamplingCacheGolden, ShippedScenariosMatchPreCacheEngine) {
  EXPECT_EQ(scenario_checksum("paper_9_months.ini"), kGoldenPaper9Months);
  EXPECT_EQ(scenario_checksum("faulted_9_months.ini"), kGoldenFaulted9Months);
  EXPECT_EQ(scenario_checksum("stress_noisy_network.ini"), kGoldenStressNoisy);
}

TEST(SamplingCacheThreads, DatasetInvariantAcrossThreadCounts) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  for (const unsigned threads : {1u, 2u, 8u}) {
    atlas::CampaignConfig cc = small_config();
    cc.threads = threads;
    const auto cached = atlas::Campaign(fleet, registry, model, cc).run();
    EXPECT_EQ(dataset_checksum(cached), kGoldenSmallDefault)
        << threads << " threads, cached";
    cc.sampling_cache = false;
    const auto uncached = atlas::Campaign(fleet, registry, model, cc).run();
    EXPECT_EQ(dataset_checksum(uncached), kGoldenSmallDefault)
        << threads << " threads, uncached";
  }
}

TEST(PathCacheTest, EntriesMatchRecomputingModel) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const atlas::PathCache cache(fleet, registry, model, 2);

  ASSERT_EQ(cache.probe_count(), fleet.size());
  ASSERT_EQ(cache.region_count(), registry.regions().size());
  EXPECT_FALSE(cache.empty());
  EXPECT_GT(cache.memory_bytes(), 0u);

  for (const atlas::ProbeId probe : {atlas::ProbeId{0}, atlas::ProbeId{17},
                                     atlas::ProbeId{255}}) {
    const net::Endpoint& src = fleet.probe(probe).endpoint;
    const net::CachedProfile expected_profile = model.cache_profile(src);
    const net::CachedProfile& profile = cache.profile(probe);
    EXPECT_EQ(profile.combined_loss, expected_profile.combined_loss);
    EXPECT_EQ(profile.log_spread, expected_profile.log_spread);
    EXPECT_EQ(profile.profile.median_ms, expected_profile.profile.median_ms);

    const net::CachedPath* row = cache.paths(probe);
    for (std::uint16_t r = 0; r < cache.region_count(); ++r) {
      const topology::CloudRegion& dst = *registry.regions()[r];
      const net::CachedPath expected = model.cache_path(src, dst);
      // The flat row-major matrix and the (probe, region) accessor must
      // agree with a fresh recompute.
      EXPECT_EQ(row[r].base_rtt_ms, expected.base_rtt_ms);
      EXPECT_EQ(cache.path(probe, r).base_rtt_ms, expected.base_rtt_ms);
      EXPECT_EQ(row[r].excess_median_ms, expected.excess_median_ms);
      // And with the original entry point the cache hoists.
      EXPECT_EQ(row[r].base_rtt_ms, model.path_to(src, dst).base_rtt_ms());
    }
  }
}

TEST(CachedSampling, PingCachedMatchesPingPerturbedStream) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const net::Endpoint& src = fleet.probe(42).endpoint;
  const topology::CloudRegion& dst = *registry.regions()[3];
  const net::CachedPath path = model.cache_path(src, dst);
  const net::CachedProfile profile = model.cache_profile(src);

  stats::Xoshiro256 a(1234);
  stats::Xoshiro256 b(1234);
  for (int burst = 0; burst < 2000; ++burst) {
    const double load = 0.5 + 0.001 * burst;
    net::Perturbation pert;
    if (burst % 3 == 1) pert = {1.4, 2.0, 0.05};   // faulted burst
    if (burst % 3 == 2) pert = {1.0, -5.0, 0.0};   // negative clock skew
    const net::PingResult expected =
        model.ping_perturbed(src, dst, 3, load, pert, a);
    const net::PingResult got =
        model.ping_cached(path, profile, 3, load, pert, b);
    ASSERT_EQ(got.sent, expected.sent) << "burst " << burst;
    ASSERT_EQ(got.received, expected.received) << "burst " << burst;
    ASSERT_EQ(got.min_ms, expected.min_ms) << "burst " << burst;
    ASSERT_EQ(got.avg_ms, expected.avg_ms) << "burst " << burst;
    ASSERT_EQ(got.max_ms, expected.max_ms) << "burst " << burst;
  }
  // Identical draw counts: the streams stay aligned to the last bit.
  EXPECT_EQ(a.next(), b.next());
}

TEST(CachedSampling, NeutralOverloadMatchesNeutralPerturbation) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const net::Endpoint& src = fleet.probe(7).endpoint;
  const topology::CloudRegion& dst = *registry.regions()[10];
  const net::CachedPath path = model.cache_path(src, dst);
  const net::CachedProfile profile = model.cache_profile(src);

  stats::Xoshiro256 a(77);
  stats::Xoshiro256 b(77);
  for (int burst = 0; burst < 2000; ++burst) {
    const double load = 0.8 + 0.0005 * burst;
    const net::PingResult expected =
        model.ping_cached(path, profile, 3, load, {}, a);
    const net::PingResult got = model.ping_cached(path, profile, 3, load, b);
    ASSERT_EQ(got.received, expected.received) << "burst " << burst;
    ASSERT_EQ(got.min_ms, expected.min_ms) << "burst " << burst;
    ASSERT_EQ(got.avg_ms, expected.avg_ms) << "burst " << burst;
    ASSERT_EQ(got.max_ms, expected.max_ms) << "burst " << burst;
  }
  EXPECT_EQ(a.next(), b.next());
}

TEST(HoistedBurstMath, CachedProfileCombinesLossesAsIndependentEvents) {
  const auto fleet = small_fleet();
  const net::LatencyModel model;
  const net::Endpoint& src = fleet.probe(3).endpoint;
  const net::AccessProfile access = model.access_profile_of(src);
  const net::CachedProfile cached = model.cache_profile(src);
  const double p = access.loss_rate;
  const double c = model.config().core_loss_rate;
  EXPECT_EQ(cached.combined_loss, p + c - p * c);
  EXPECT_EQ(cached.log_spread, stats::lognormal_sigma_of_spread(access.spread));
  EXPECT_EQ(cached.profile.median_ms, access.median_ms);
}

TEST(HoistedBurstMath, CachedPathPrecomputesExcessMedian) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const net::Endpoint& src = fleet.probe(9).endpoint;
  const topology::CloudRegion& dst = *registry.regions()[0];
  const net::CachedPath cached = model.cache_path(src, dst);
  const double base = model.path_to(src, dst).base_rtt_ms();
  EXPECT_EQ(cached.base_rtt_ms, base);
  EXPECT_EQ(cached.excess_median_ms, base * model.config().excess_fraction);
}

TEST(HoistedBurstMath, BurstStateAppliesLoadAndPerturbation) {
  net::CachedPath path;
  path.base_rtt_ms = 40.0;
  path.excess_median_ms = 7.2;
  net::CachedProfile profile;
  profile.profile.median_ms = 12.0;
  profile.profile.bloat_probability = 0.3;
  profile.profile.bloat_scale_ms = 80.0;
  profile.combined_loss = 0.02;
  profile.log_spread = 0.55;

  const net::Perturbation pert{1.5, 3.0, 0.1};
  const auto s =
      net::detail::make_burst_state(path, profile, 2.0, pert, 0.74);
  EXPECT_EQ(s.median_ms, 24.0);            // median scales with load
  EXPECT_EQ(s.bloat_probability, 0.6);     // bloat scales with load...
  EXPECT_EQ(s.loss, 0.02 + 0.1 - 0.02 * 0.1);
  EXPECT_EQ(s.latency_scale, 1.5);
  EXPECT_EQ(s.offset_ms, 3.0);
  EXPECT_EQ(s.excess_sigma, 0.74);

  // ...and clamps at 1 under extreme load.
  const auto clamped =
      net::detail::make_burst_state(path, profile, 10.0, pert, 0.74);
  EXPECT_EQ(clamped.bloat_probability, 1.0);

  // The neutral builder is the same math with the identity perturbation.
  const auto neutral =
      net::detail::make_burst_state_neutral(path, profile, 2.0, 0.74);
  EXPECT_EQ(neutral.loss, profile.combined_loss);
  EXPECT_EQ(neutral.median_ms, s.median_ms);
  EXPECT_EQ(neutral.latency_scale, 1.0);
  EXPECT_EQ(neutral.offset_ms, 0.0);
}

}  // namespace
}  // namespace shears
