// Unit tests for the §4 analyses over hand-built micro-datasets with
// exactly known answers, plus invariants on generated data and the
// byte-determinism of the sharded record scans across thread counts.
#include <gtest/gtest.h>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "core/access_comparison.hpp"
#include "core/analysis.hpp"
#include "core/parallel.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::core {
namespace {

using atlas::Environment;
using atlas::Measurement;
using atlas::Probe;
using atlas::ProbeFleet;

Probe make_probe(atlas::ProbeId id, std::string_view iso2,
                 net::AccessTechnology access, Environment env, bool tagged) {
  Probe p;
  p.id = id;
  p.country = geo::find_country(iso2);
  EXPECT_NE(p.country, nullptr) << iso2;
  p.endpoint.location = p.country->site;
  p.endpoint.tier = p.country->tier;
  p.endpoint.access = access;
  p.environment = env;
  p.tags = atlas::make_tags(access, env, tagged);
  return p;
}

Measurement make_record(atlas::ProbeId probe, std::uint16_t region,
                        std::uint32_t tick, float min_ms) {
  Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.min_ms = min_ms;
  m.avg_ms = min_ms + 1.0f;
  m.max_ms = min_ms + 2.0f;
  m.sent = 3;
  m.received = 3;
  return m;
}

Measurement make_lost(atlas::ProbeId probe, std::uint16_t region,
                      std::uint32_t tick) {
  Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.sent = 3;
  m.received = 0;
  return m;
}

class MicroDatasetTest : public ::testing::Test {
 protected:
  MicroDatasetTest()
      : registry_(topology::CloudRegistry::campaign_footprint()),
        fleet_(ProbeFleet::from_probes(build_probes())) {}

  static std::vector<Probe> build_probes() {
    std::vector<Probe> probes;
    // 0: German wired (ethernet, tagged), 1: German wireless (lte, tagged),
    // 2: German privileged (datacentre), 3: French untagged,
    // 4: Chadian wired (tagged).
    probes.push_back(make_probe(0, "DE", net::AccessTechnology::kEthernet,
                                Environment::kHome, true));
    probes.push_back(make_probe(1, "DE", net::AccessTechnology::kLte,
                                Environment::kHome, true));
    probes.push_back(make_probe(2, "DE", net::AccessTechnology::kEthernet,
                                Environment::kDatacenter, true));
    probes.push_back(make_probe(3, "FR", net::AccessTechnology::kCable,
                                Environment::kHome, false));
    probes.push_back(make_probe(4, "TD", net::AccessTechnology::kEthernet,
                                Environment::kHome, true));
    return probes;
  }

  atlas::MeasurementDataset make_dataset(std::vector<Measurement> records) {
    return atlas::MeasurementDataset(&fleet_, &registry_, std::move(records));
  }

  topology::CloudRegistry registry_;
  ProbeFleet fleet_;
};

TEST_F(MicroDatasetTest, CountryMinPicksGlobalMinimum) {
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 12.0f),
      make_record(0, 6, 1, 8.0f),
      make_record(1, 5, 0, 30.0f),
      make_record(4, 7, 0, 140.0f),
  });
  const auto rows = country_min_latency(dataset);
  ASSERT_EQ(rows.size(), 2u);  // DE and TD
  const auto* de = rows[0].country->iso2 == "DE" ? &rows[0] : &rows[1];
  const auto* td = rows[0].country->iso2 == "TD" ? &rows[0] : &rows[1];
  EXPECT_DOUBLE_EQ(de->min_rtt_ms, 8.0);
  EXPECT_EQ(de->best_region, registry_.regions()[6]);
  EXPECT_EQ(de->probe_count, 2u);  // wired + wireless, privileged absent
  EXPECT_DOUBLE_EQ(td->min_rtt_ms, 140.0);
}

TEST_F(MicroDatasetTest, PrivilegedProbesAreExcludedByDefault) {
  const auto dataset = make_dataset({
      make_record(2, 5, 0, 0.5f),   // datacentre probe: absurdly fast
      make_record(0, 5, 0, 9.0f),
  });
  const auto rows = country_min_latency(dataset);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].min_rtt_ms, 9.0);

  AnalysisOptions keep_all;
  keep_all.exclude_privileged = false;
  const auto rows_all = country_min_latency(dataset, keep_all);
  EXPECT_DOUBLE_EQ(rows_all[0].min_rtt_ms, 0.5);
}

TEST_F(MicroDatasetTest, LostBurstsDoNotContribute) {
  const auto dataset = make_dataset({
      make_lost(0, 5, 0),
      make_record(0, 5, 1, 11.0f),
  });
  const auto rows = country_min_latency(dataset);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].min_rtt_ms, 11.0);
}

TEST_F(MicroDatasetTest, AllLostCountryIsDropped) {
  const auto dataset = make_dataset({make_lost(4, 7, 0)});
  EXPECT_TRUE(country_min_latency(dataset).empty());
}

TEST_F(MicroDatasetTest, BandingBoundaries) {
  std::vector<CountryMinLatency> rows(5);
  rows[0].min_rtt_ms = 9.99;
  rows[1].min_rtt_ms = 10.0;
  rows[2].min_rtt_ms = 19.99;
  rows[3].min_rtt_ms = 99.99;
  rows[4].min_rtt_ms = 100.0;
  const LatencyBands bands = band_country_latencies(rows);
  EXPECT_EQ(bands.under_10, 1u);
  EXPECT_EQ(bands.from_10_to_20, 2u);
  EXPECT_EQ(bands.from_50_to_100, 1u);
  EXPECT_EQ(bands.over_100, 1u);
  EXPECT_EQ(bands.total(), 5u);
  EXPECT_EQ(bands.under_100(), 4u);
}

TEST_F(MicroDatasetTest, PerProbeBestTracksArgmin) {
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 12.0f),
      make_record(0, 6, 1, 7.5f),
      make_record(0, 5, 2, 9.0f),
  });
  const auto best = per_probe_best(dataset);
  ASSERT_EQ(best.size(), fleet_.size());
  EXPECT_TRUE(best[0].valid);
  EXPECT_EQ(best[0].region_index, 6u);
  EXPECT_DOUBLE_EQ(best[0].min_ms, 7.5);
  EXPECT_FALSE(best[3].valid);  // no measurements
}

TEST_F(MicroDatasetTest, MinRttGroupsByContinent) {
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 12.0f),
      make_record(4, 7, 0, 140.0f),
  });
  const auto by_continent = min_rtt_by_continent(dataset);
  EXPECT_EQ(by_continent[geo::index_of(geo::Continent::kEurope)].size(), 1u);
  EXPECT_EQ(by_continent[geo::index_of(geo::Continent::kAfrica)].size(), 1u);
  EXPECT_DOUBLE_EQ(
      by_continent[geo::index_of(geo::Continent::kAfrica)].front(), 140.0);
}

TEST_F(MicroDatasetTest, BestRegionSamplesOnlyFromBestRegion) {
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 12.0f),  // region 5: worse
      make_record(0, 6, 1, 7.5f),   // region 6: best
      make_record(0, 6, 2, 9.5f),
      make_record(0, 5, 3, 8.0f),   // still region 5 -> excluded
  });
  const auto samples = best_region_samples_by_continent(dataset);
  const auto& eu = samples[geo::index_of(geo::Continent::kEurope)];
  ASSERT_EQ(eu.size(), 2u);
  EXPECT_DOUBLE_EQ(eu[0], 7.5);
  EXPECT_DOUBLE_EQ(eu[1], 9.5);
}

TEST_F(MicroDatasetTest, CoverageOfThresholds) {
  const ThresholdCoverage cov = coverage_of({5.0, 15.0, 50.0, 150.0, 300.0});
  EXPECT_EQ(cov.n, 5u);
  EXPECT_DOUBLE_EQ(cov.under_mtp, 0.4);
  EXPECT_DOUBLE_EQ(cov.under_pl, 0.6);
  EXPECT_DOUBLE_EQ(cov.under_hrt, 0.8);
  const ThresholdCoverage empty = coverage_of({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.under_pl, 0.0);
}

TEST_F(MicroDatasetTest, AccessComparisonPairsCountries) {
  // DE has both wired (0) and wireless (1) probes; TD has only wired, so
  // its records must be filtered out of the comparison.
  const auto dataset = make_dataset({
      make_record(0, 6, 0, 10.0f),
      make_record(0, 6, 8, 12.0f),
      make_record(1, 6, 0, 25.0f),
      make_record(1, 6, 8, 27.0f),
      make_record(4, 7, 0, 140.0f),
  });
  const AccessComparison cmp = compare_access(dataset);
  EXPECT_EQ(cmp.wired_probe_count, 1u);
  EXPECT_EQ(cmp.wireless_probe_count, 1u);
  ASSERT_EQ(cmp.wired.size(), 2u);
  ASSERT_EQ(cmp.wireless.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.wired_median, 11.0);
  EXPECT_DOUBLE_EQ(cmp.wireless_median, 26.0);
  EXPECT_NEAR(cmp.median_ratio, 26.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.added_latency_ms, 15.0);
  // Two time buckets (ticks 0 and 8 with bucket_ticks=8).
  EXPECT_EQ(cmp.wired_over_time.size(), 2u);
  EXPECT_EQ(cmp.wireless_over_time.size(), 2u);
}

TEST_F(MicroDatasetTest, PopulationCoverageWeightsByPopulation) {
  // Germany (83.2M) fast, Chad (16.4M) slow: shares must reflect the
  // population weights, not the country counts.
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 8.0f),    // DE under MTP
      make_record(4, 7, 0, 140.0f),  // TD over PL, under HRT
  });
  const auto cov = population_coverage(country_min_latency(dataset));
  const double world = geo::world_population_m();
  EXPECT_GT(world, 7000.0);  // ~7.7B
  EXPECT_LT(world, 8500.0);
  EXPECT_NEAR(cov.measured_population_m, 83.2 + 16.4, 1e-6);
  EXPECT_NEAR(cov.under_mtp, 83.2 / world, 1e-9);
  EXPECT_NEAR(cov.under_pl, 83.2 / world, 1e-9);
  EXPECT_NEAR(cov.under_hrt, (83.2 + 16.4) / world, 1e-9);
}

TEST_F(MicroDatasetTest, ServerSideViewGroupsByServingRegion) {
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 10.0f),  // probe 0's best is region 5
      make_record(0, 5, 1, 12.0f),
      make_record(1, 5, 0, 30.0f),  // probe 1 also served by region 5
      make_record(4, 7, 0, 140.0f), // probe 4 served by region 7
      make_record(4, 6, 1, 150.0f), // worse region: excluded from views
  });
  const auto views = server_side_view(dataset);
  ASSERT_EQ(views.size(), 2u);
  // Ordered by client count: region 5 (2 clients) first.
  EXPECT_EQ(views[0].region, registry_.regions()[5]);
  EXPECT_EQ(views[0].clients, 2u);
  EXPECT_EQ(views[0].samples, 3u);
  EXPECT_DOUBLE_EQ(views[0].median_ms, 12.0);
  EXPECT_NEAR(views[0].under_40ms, 1.0, 1e-9);
  EXPECT_EQ(views[1].region, registry_.regions()[7]);
  EXPECT_EQ(views[1].clients, 1u);
  EXPECT_DOUBLE_EQ(views[1].under_40ms, 0.0);
}

TEST_F(MicroDatasetTest, DiurnalProfileBucketsByLocalHour) {
  // German probe (lon ~8.7 -> local = UTC + ~0.6h). Tick 0 = 00:00 UTC
  // (local hour 0), tick 4 = 12:00 UTC (local hour 12). Interval 3 h.
  const auto dataset = make_dataset({
      make_record(0, 5, 0, 10.0f),
      make_record(0, 5, 8, 12.0f),   // tick 8 -> 24h -> 00:00 again
      make_record(0, 5, 4, 30.0f),
      make_record(0, 5, 12, 34.0f),  // tick 12 -> 36h -> 12:00 again
  });
  const DiurnalProfile profile = diurnal_profile(dataset, 3);
  EXPECT_EQ(profile.count[0], 2u);
  EXPECT_EQ(profile.count[12], 2u);
  EXPECT_DOUBLE_EQ(profile.median_ms[0], 11.0);
  EXPECT_DOUBLE_EQ(profile.median_ms[12], 32.0);
  EXPECT_EQ(profile.peak_hour(), 12);
  EXPECT_NEAR(profile.peak_to_trough(), 32.0 / 11.0, 1e-9);
}

TEST_F(MicroDatasetTest, DiurnalProfileEmptyDataset) {
  const auto dataset = make_dataset({});
  const DiurnalProfile profile = diurnal_profile(dataset, 3);
  EXPECT_EQ(profile.peak_hour(), -1);
  EXPECT_DOUBLE_EQ(profile.peak_to_trough(), 1.0);
}

TEST_F(MicroDatasetTest, UntaggedProbesDropOutOfComparison) {
  const auto dataset = make_dataset({
      make_record(3, 5, 0, 9.0f),  // FR untagged
  });
  const AccessComparison cmp = compare_access(dataset);
  EXPECT_TRUE(cmp.wired.empty());
  EXPECT_TRUE(cmp.wireless.empty());
  EXPECT_DOUBLE_EQ(cmp.median_ratio, 0.0);
}

// ---- core/parallel.hpp units -------------------------------------------

TEST(ParallelHelpers, ResolveThreadsCapsByUsefulWork) {
  // Tiny inputs collapse to a single (calling-thread) shard regardless of
  // the request; large inputs honour it.
  EXPECT_EQ(resolve_threads(8, 100), 1u);
  EXPECT_EQ(resolve_threads(8, (1u << 14) * 2), 2u);
  EXPECT_EQ(resolve_threads(8, (1u << 14) * 100), 8u);
  EXPECT_EQ(resolve_threads(1, (1u << 14) * 100), 1u);
  EXPECT_GE(resolve_threads(0, (1u << 14) * 100), 1u);  // auto
}

TEST(ParallelHelpers, ParallelShardsCoversRangeContiguously) {
  // Every index appears exactly once and shard ranges are contiguous and
  // ordered — the property the order-deterministic merges rely on.
  constexpr std::size_t kItems = 1000;
  constexpr std::size_t kShards = 7;
  std::vector<int> owner(kItems, -1);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(kShards);
  parallel_shards(kItems, kShards,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    ranges[shard] = {begin, end};
                    for (std::size_t i = begin; i < end; ++i) {
                      owner[i] = static_cast<int>(shard);
                    }
                  });
  std::size_t expected_begin = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(ranges[s].first, expected_begin);
    expected_begin = ranges[s].second;
  }
  EXPECT_EQ(expected_begin, kItems);
  for (std::size_t i = 1; i < kItems; ++i) {
    EXPECT_LE(owner[i - 1], owner[i]);  // contiguous, ordered shards
  }
}

TEST(ParallelHelpers, BitmapTestSetMergeCount) {
  Bitmap a(200);
  EXPECT_FALSE(a.test_set(0));
  EXPECT_TRUE(a.test_set(0));  // second set reports prior membership
  EXPECT_FALSE(a.test_set(63));
  EXPECT_FALSE(a.test_set(64));  // word boundary
  EXPECT_FALSE(a.test_set(199));
  EXPECT_EQ(a.count(), 4u);
  Bitmap b(200);
  b.test_set(64);   // overlaps a
  b.test_set(100);  // new
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_TRUE(a.test(100));
  EXPECT_FALSE(a.test(101));
}

// ---- thread-invariance over a generated campaign -----------------------

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  // 256 probes x 512 ticks = 131072 records: enough that resolve_threads
  // grants all 8 requested shards (16384 records each).
  static const atlas::MeasurementDataset& dataset() {
    static const atlas::MeasurementDataset data = [] {
      atlas::PlacementConfig placement;
      placement.probe_count = 256;
      placement.seed = 5;
      static const auto fleet = atlas::ProbeFleet::generate(placement);
      static const auto registry =
          topology::CloudRegistry::campaign_footprint();
      static const net::LatencyModel model;
      atlas::CampaignConfig config;
      config.duration_days = 64;
      config.seed = 7;
      config.threads = 1;
      return atlas::Campaign(fleet, registry, model, config).run();
    }();
    return data;
  }

  static AnalysisOptions with_threads(std::size_t threads) {
    AnalysisOptions options;
    options.threads = threads;
    return options;
  }
};

TEST_F(ThreadInvarianceTest, CountryMinLatencyIsThreadInvariant) {
  const auto reference = country_min_latency(dataset(), with_threads(1));
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {2u, 8u}) {
    const auto rows = country_min_latency(dataset(), with_threads(threads));
    ASSERT_EQ(rows.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].country, reference[i].country);
      EXPECT_EQ(rows[i].min_rtt_ms, reference[i].min_rtt_ms);  // bitwise
      EXPECT_EQ(rows[i].best_region, reference[i].best_region);
      EXPECT_EQ(rows[i].probe_count, reference[i].probe_count);
    }
  }
}

TEST_F(ThreadInvarianceTest, PerProbeBestIsThreadInvariant) {
  const auto reference = per_probe_best(dataset(), with_threads(1));
  for (const std::size_t threads : {2u, 8u}) {
    const auto best = per_probe_best(dataset(), with_threads(threads));
    ASSERT_EQ(best.size(), reference.size());
    for (std::size_t i = 0; i < best.size(); ++i) {
      EXPECT_EQ(best[i].probe_id, reference[i].probe_id);
      EXPECT_EQ(best[i].valid, reference[i].valid);
      EXPECT_EQ(best[i].region_index, reference[i].region_index);
      EXPECT_EQ(best[i].min_ms, reference[i].min_ms);  // bitwise
    }
  }
}

TEST_F(ThreadInvarianceTest, ContinentSamplesKeepSequentialOrder) {
  const auto reference =
      best_region_samples_by_continent(dataset(), with_threads(1));
  for (const std::size_t threads : {2u, 8u}) {
    const auto samples =
        best_region_samples_by_continent(dataset(), with_threads(threads));
    for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
      EXPECT_EQ(samples[c], reference[c]) << "continent " << c << ", "
                                          << threads << " threads";
    }
  }
}

TEST_F(ThreadInvarianceTest, ServerSideViewIsThreadInvariant) {
  const auto reference = server_side_view(dataset(), with_threads(1));
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {2u, 8u}) {
    const auto views = server_side_view(dataset(), with_threads(threads));
    ASSERT_EQ(views.size(), reference.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(views[i].region, reference[i].region);
      EXPECT_EQ(views[i].clients, reference[i].clients);
      EXPECT_EQ(views[i].samples, reference[i].samples);
      EXPECT_EQ(views[i].median_ms, reference[i].median_ms);
      EXPECT_EQ(views[i].p90_ms, reference[i].p90_ms);
      EXPECT_EQ(views[i].under_40ms, reference[i].under_40ms);
    }
  }
}

TEST_F(ThreadInvarianceTest, AccessComparisonIsThreadInvariant) {
  AccessComparisonOptions options;
  options.threads = 1;
  const AccessComparison reference = compare_access(dataset(), options);
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const AccessComparison cmp = compare_access(dataset(), options);
    EXPECT_EQ(cmp.wired, reference.wired);
    EXPECT_EQ(cmp.wireless, reference.wireless);
    EXPECT_EQ(cmp.wired_over_time, reference.wired_over_time);
    EXPECT_EQ(cmp.wireless_over_time, reference.wireless_over_time);
    EXPECT_EQ(cmp.wired_probe_count, reference.wired_probe_count);
    EXPECT_EQ(cmp.wireless_probe_count, reference.wireless_probe_count);
    EXPECT_EQ(cmp.wired_median, reference.wired_median);
    EXPECT_EQ(cmp.wireless_median, reference.wireless_median);
  }
}

}  // namespace
}  // namespace shears::core
