// The footprint optimizer: candidate generation, the scenario-overlay
// evaluator's bit-exactness against a store rebuilt with the delta
// applied, the oracle's overlay seam and weighted coverage, greedy
// optimality against exhaustive search on small instances, and byte
// identity of plans across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "edge/deployment.hpp"
#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "opt/candidates.hpp"
#include "opt/overlay.hpp"
#include "opt/search.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

namespace shears::opt {
namespace {

// One shared measured world for the whole suite: a small campaign is
// still a few hundred thousand rows, so build it once.
struct Fixture {
  atlas::ProbeFleet fleet;
  topology::CloudRegistry cloud;
  net::LatencyModel model;
  serve::ColumnarStore store;

  Fixture()
      : fleet(atlas::ProbeFleet::generate([] {
          atlas::PlacementConfig config;
          config.probe_count = 512;
          config.seed = 7;
          return config;
        }())),
        cloud(topology::CloudRegistry::campaign_footprint()),
        model(),
        store(&fleet, &cloud) {
    atlas::CampaignConfig schedule;
    schedule.duration_days = 2;
    atlas::Campaign campaign(fleet, cloud, model, schedule);
    campaign.attach_sink(&store);
    (void)campaign.run();
    store.refresh();
  }
};

Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

CandidateConfig small_universe() {
  CandidateConfig config;
  config.placements = {edge::EdgePlacement::kMetroPop,
                       edge::EdgePlacement::kRegionalSite};
  config.max_cities_per_country = 2;
  config.min_metro_population_m = 2.0;
  return config;
}

void expect_stats_identical(std::span<const serve::RegionStats> a,
                            std::span<const serve::RegionStats> b,
                            const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].count, b[r].count) << what << " region " << r;
    if (a[r].empty()) continue;
    // Exact bitwise agreement, not tolerance: both sides must have run
    // the same samples through the same summary machinery.
    EXPECT_EQ(a[r].min_ms, b[r].min_ms) << what << " region " << r;
    EXPECT_EQ(a[r].median_ms, b[r].median_ms) << what << " region " << r;
    EXPECT_EQ(a[r].p95_ms, b[r].p95_ms) << what << " region " << r;
    EXPECT_EQ(a[r].ecdf.sorted(), b[r].ecdf.sorted())
        << what << " region " << r;
  }
}

// Every (country, access) scope and country rollup of the overlay-
// answered world must equal the rebuilt store's bitwise. Scopes the
// overlay does not substitute fall through to the base store.
void expect_overlay_matches_rebuild(const OverlayEvaluator& evaluator,
                                    const ScenarioDelta& delta) {
  const OverlayView view = evaluator.evaluate(delta);
  const serve::ColumnarStore rebuilt = evaluator.rebuild_reference(delta);
  const serve::ColumnarStore& base = evaluator.store();
  for (std::size_t ci = 0; ci < geo::country_count(); ++ci) {
    const auto rollup = view.stats(ci, std::nullopt);
    expect_stats_identical(
        rollup.has_value() ? *rollup : base.country_stats(ci),
        rebuilt.country_stats(ci), "rollup");
    for (std::size_t a = 0; a < net::kAccessTechnologyCount; ++a) {
      const auto access = static_cast<net::AccessTechnology>(a);
      const auto cell = view.stats(ci, access);
      expect_stats_identical(
          cell.has_value() ? *cell : base.shard_stats(ci, access),
          rebuilt.shard_stats(ci, access), "cell");
    }
  }
}

// ------------------------------------------------------------ candidates

TEST(Candidates, IdsAreDenseAndDefaultsApplied) {
  const std::vector<CandidateSite> sites =
      generate_candidates(small_universe());
  ASSERT_FALSE(sites.empty());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].id, i);
    ASSERT_NE(sites[i].country, nullptr);
    EXPECT_EQ(sites[i].radius_km,
              edge::placement_serve_radius_km(sites[i].placement));
    EXPECT_FALSE(sites[i].label.empty());
  }
  // Pure function of the config.
  const std::vector<CandidateSite> again =
      generate_candidates(small_universe());
  ASSERT_EQ(again.size(), sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(again[i].label, sites[i].label);
    EXPECT_EQ(again[i].where, sites[i].where);
  }
}

TEST(Candidates, HubFallbackKeepsCitylessCountriesInPlay) {
  CandidateConfig config;
  config.placements = {edge::EdgePlacement::kMetroPop};
  config.max_cities_per_country = 0;  // force the fallback everywhere
  config.include_country_hubs = true;
  const std::vector<CandidateSite> sites = generate_candidates(config);
  EXPECT_EQ(sites.size(), geo::country_count());
  for (const CandidateSite& site : sites) {
    EXPECT_NE(site.label.find("hub"), std::string::npos);
  }
}

TEST(Candidates, PopulationShareFilterPrunes) {
  CandidateConfig all = small_universe();
  CandidateConfig big = small_universe();
  big.min_population_share = 0.01;  // only ~1%-of-world countries
  EXPECT_LT(generate_candidates(big).size(),
            generate_candidates(all).size());
}

// ---------------------------------------------------------- geo accessors

TEST(GeoAccessors, PopulationSharesSumToOne) {
  double total = 0.0;
  for (const geo::Country& c : geo::all_countries()) {
    const double share = geo::population_share(c);
    EXPECT_GT(share, 0.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GeoAccessors, TierMarginalCoversTheWorld) {
  const double sum = geo::population_in_tier_m(geo::ConnectivityTier::kTier1) +
                     geo::population_in_tier_m(geo::ConnectivityTier::kTier2) +
                     geo::population_in_tier_m(geo::ConnectivityTier::kTier3) +
                     geo::population_in_tier_m(geo::ConnectivityTier::kTier4);
  EXPECT_NEAR(sum, geo::world_population_m(), 1e-6);
}

// ------------------------------------------------------------- overlay

TEST(Overlay, IdentityDeltaSubstitutesNothing) {
  const OverlayEvaluator evaluator(&fixture().store);
  const OverlayView view = evaluator.evaluate(ScenarioDelta{});
  EXPECT_EQ(view.affected_cells(), 0u);
  EXPECT_EQ(view.affected_countries(), 0u);
  EXPECT_FALSE(view.stats(0, std::nullopt).has_value());
}

TEST(Overlay, WirelessDeltaMatchesRebuild) {
  const OverlayEvaluator evaluator(&fixture().store);
  ScenarioDelta delta;
  delta.wireless_scale = 0.5;
  expect_overlay_matches_rebuild(evaluator, delta);
}

TEST(Overlay, RouteDeltaMatchesRebuild) {
  const OverlayEvaluator evaluator(&fixture().store);
  ScenarioDelta delta;
  delta.route_scale = 1.3;
  expect_overlay_matches_rebuild(evaluator, delta);
}

TEST(Overlay, SiteDeltaMatchesRebuild) {
  const OverlayEvaluator evaluator(&fixture().store);
  const std::vector<CandidateSite> sites =
      generate_candidates(small_universe());
  ASSERT_GE(sites.size(), 8u);
  ScenarioDelta delta;
  for (std::size_t i = 0; i < sites.size(); i += sites.size() / 4) {
    delta.sites.push_back(to_spec(sites[i]));
  }
  expect_overlay_matches_rebuild(evaluator, delta);
}

TEST(Overlay, CombinedDeltaMatchesRebuild) {
  const OverlayEvaluator evaluator(&fixture().store);
  const std::vector<CandidateSite> sites =
      generate_candidates(small_universe());
  ScenarioDelta delta;
  delta.wireless_scale = 0.25;
  delta.route_scale = 0.9;
  delta.sites.push_back(to_spec(sites[0]));
  delta.sites.push_back(to_spec(sites[sites.size() / 2]));
  expect_overlay_matches_rebuild(evaluator, delta);
}

TEST(Overlay, SiteDeltaOnlyTouchesCoveredCountries) {
  const OverlayEvaluator evaluator(&fixture().store);
  SiteSpec site;
  site.where = geo::find_country("DE")->site;
  site.placement = edge::EdgePlacement::kMetroPop;
  ScenarioDelta delta;
  delta.sites.push_back(site);
  const OverlayView view = evaluator.evaluate(delta);
  // A 150 km metro disc around Berlin touches a handful of countries at
  // most — the overlay must not have materialised the whole store.
  EXPECT_GT(view.affected_cells(), 0u);
  EXPECT_LE(view.affected_countries(), 8u);
  const std::size_t us = serve::country_index_of(geo::find_country("US"));
  EXPECT_FALSE(view.stats(us, std::nullopt).has_value());
}

TEST(Overlay, CoverageImprovesWithSitesAndWireless) {
  const OverlayEvaluator evaluator(&fixture().store);
  const double threshold = 60.0;
  const CoverageReport base =
      evaluator.coverage(ScenarioDelta{}, threshold);
  EXPECT_GT(base.weighted_fraction, 0.0);
  EXPECT_LT(base.weighted_fraction, 1.0);
  EXPECT_GT(base.weight_with_data, 0.5);

  ScenarioDelta wireless;
  wireless.wireless_scale = 0.3;
  const CoverageReport better = evaluator.coverage(wireless, threshold);
  EXPECT_GE(better.weighted_fraction, base.weighted_fraction);

  // Transforms are monotone per row, so per-country coverage can only
  // move up under relief.
  ASSERT_EQ(better.countries.size(), base.countries.size());
  for (std::size_t i = 0; i < base.countries.size(); ++i) {
    EXPECT_GE(better.countries[i].covered, base.countries[i].covered);
    EXPECT_EQ(better.countries[i].rows, base.countries[i].rows);
  }
}

TEST(Overlay, CoverageIsThreadCountInvariant) {
  OverlayConfig one;
  one.threads = 1;
  OverlayConfig eight;
  eight.threads = 8;
  const OverlayEvaluator e1(&fixture().store, one);
  const OverlayEvaluator e8(&fixture().store, eight);
  const std::vector<CandidateSite> sites =
      generate_candidates(small_universe());
  ScenarioDelta delta;
  delta.wireless_scale = 0.5;
  delta.sites.push_back(to_spec(sites[1]));
  delta.sites.push_back(to_spec(sites[3]));
  const CoverageReport a = e1.coverage(delta, 50.0);
  const CoverageReport b = e8.coverage(delta, 50.0);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------- oracle seam

TEST(OracleOverlay, NullOverlayAnswersExactlyLikeBase) {
  const serve::Oracle oracle(&fixture().store);
  std::vector<serve::Query> queries;
  for (const char* iso : {"DE", "US", "KE", "BR", "JP"}) {
    serve::Query q;
    q.kind = serve::QueryKind::kBestRtt;
    q.country_iso2 = iso;
    queries.push_back(q);
  }
  std::vector<serve::Answer> plain(queries.size());
  std::vector<serve::Answer> with_null(queries.size());
  oracle.answer(queries, plain);
  oracle.answer(queries, with_null, nullptr);
  EXPECT_EQ(plain, with_null);
}

TEST(OracleOverlay, OverlayAnswersMatchRebuiltStore) {
  const OverlayEvaluator evaluator(&fixture().store);
  const std::vector<CandidateSite> sites =
      generate_candidates(small_universe());
  ScenarioDelta delta;
  delta.wireless_scale = 0.5;
  delta.sites.push_back(to_spec(sites[0]));
  const OverlayView view = evaluator.evaluate(delta);
  const serve::ColumnarStore rebuilt = evaluator.rebuild_reference(delta);

  const serve::Oracle base_oracle(&fixture().store);
  const serve::Oracle rebuilt_oracle(&rebuilt);

  std::vector<serve::Query> queries;
  for (const geo::Country& c : geo::all_countries()) {
    serve::Query best;
    best.kind = serve::QueryKind::kBestRtt;
    best.country_iso2 = c.iso2;
    queries.push_back(best);
    serve::Query topk;
    topk.kind = serve::QueryKind::kTopK;
    topk.country_iso2 = c.iso2;
    topk.budget_ms = 80.0;
    topk.k = 3;
    queries.push_back(topk);
    serve::Query lte = best;
    lte.any_access = false;
    lte.access = net::AccessTechnology::kLte;
    queries.push_back(lte);
  }
  std::vector<serve::Answer> overlaid(queries.size());
  std::vector<serve::Answer> reference(queries.size());
  base_oracle.answer(queries, overlaid, &view);
  rebuilt_oracle.answer(queries, reference);
  ASSERT_EQ(overlaid.size(), reference.size());
  for (std::size_t i = 0; i < overlaid.size(); ++i) {
    EXPECT_EQ(overlaid[i], reference[i]) << "query " << i;
  }
}

TEST(OracleOverlay, WeightedCoverageFoldsPopulationWeights) {
  const serve::Oracle oracle(&fixture().store);
  std::vector<serve::Query> queries;
  std::vector<double> weights;
  for (const char* iso : {"DE", "US", "KE"}) {
    serve::Query q;
    q.country_iso2 = iso;
    queries.push_back(q);
    weights.push_back(geo::population_share(*geo::find_country(iso)));
  }
  const double budget = 60.0;
  const serve::CoverageResult result =
      oracle.weighted_coverage(queries, budget, weights);
  ASSERT_EQ(result.queries, queries.size());
  ASSERT_EQ(result.answered, queries.size());

  // Reproduce the fold by hand from the rollup summaries.
  double covered_weight = 0.0;
  double answered_weight = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::size_t ci = serve::country_index_of(
        geo::find_country(queries[i].country_iso2));
    std::uint64_t covered = 0;
    std::uint64_t total = 0;
    for (const serve::RegionStats& cell : fixture().store.country_stats(ci)) {
      if (cell.empty()) continue;
      total += cell.count;
      for (double v : cell.ecdf.sorted()) covered += v <= budget ? 1 : 0;
    }
    ASSERT_GT(total, 0u);
    answered_weight += weights[i];
    covered_weight += weights[i] * (static_cast<double>(covered) /
                                    static_cast<double>(total));
  }
  EXPECT_EQ(result.answered_weight, answered_weight);
  EXPECT_EQ(result.covered_weight, covered_weight);
  EXPECT_EQ(result.fraction(), covered_weight / answered_weight);

  // Unweighted call: every query counts 1.0.
  const serve::CoverageResult unweighted =
      oracle.weighted_coverage(queries, budget);
  EXPECT_EQ(unweighted.answered_weight, 3.0);
}

TEST(OracleOverlay, WeightedCoverageIsThreadCountInvariant) {
  serve::OracleConfig one;
  one.threads = 1;
  serve::OracleConfig eight;
  eight.threads = 8;
  const serve::Oracle o1(&fixture().store, one);
  const serve::Oracle o8(&fixture().store, eight);
  std::vector<serve::Query> queries;
  std::vector<double> weights;
  for (const geo::Country& c : geo::all_countries()) {
    serve::Query q;
    q.country_iso2 = c.iso2;
    queries.push_back(q);
    weights.push_back(geo::population_share(c));
  }
  EXPECT_EQ(o1.weighted_coverage(queries, 50.0, weights),
            o8.weighted_coverage(queries, 50.0, weights));
}

TEST(OracleOverlay, WeightSizeMismatchThrows) {
  const serve::Oracle oracle(&fixture().store);
  std::vector<serve::Query> queries(3);
  const std::vector<double> weights(2, 1.0);
  EXPECT_THROW((void)oracle.weighted_coverage(queries, 50.0, weights),
               std::invalid_argument);
}

// --------------------------------------------------------------- search

SearchConfig small_search() {
  SearchConfig config;
  config.threshold_ms = 45.0;
  config.max_sites = 3;
  return config;
}

std::vector<CandidateSite> first_n_candidates(std::size_t n) {
  std::vector<CandidateSite> sites = generate_candidates(small_universe());
  if (sites.size() > n) sites.resize(n);  // ids stay 0..n-1
  return sites;
}

TEST(Search, GreedyWithSwapsMatchesExhaustiveOptimum) {
  const FootprintSearch search(&fixture().store, first_n_candidates(12),
                               small_search());
  const FootprintPlan greedy = search.plan();
  const FootprintPlan exact = search.exhaustive();
  // On instances this small the swap-refined greedy must land on the
  // optimum — and both plans report through the same fresh coverage
  // fold, so agreement is exact, not approximate.
  EXPECT_EQ(greedy.objective, exact.objective);
  // And the classic lazy-greedy guarantee holds with room to spare.
  EXPECT_GE(greedy.objective - greedy.base_objective,
            (1.0 - 1.0 / std::exp(1.0)) *
                (exact.objective - exact.base_objective) - 1e-12);
}

TEST(Search, GreedyGainsAreMonotoneAndObjectiveConsistent) {
  SearchConfig config = small_search();
  config.max_sites = 5;
  config.swap_passes = 0;
  const FootprintSearch search(&fixture().store,
                               generate_candidates(small_universe()), config);
  const FootprintPlan plan = search.plan();
  ASSERT_FALSE(plan.steps.empty());
  for (std::size_t i = 1; i < plan.steps.size(); ++i) {
    // Submodularity: marginal gains shrink along the greedy path.
    EXPECT_LE(plan.steps[i].gain, plan.steps[i - 1].gain + 1e-15);
  }
  EXPECT_GE(plan.objective, plan.base_objective);
  // The reported coverage is a fresh evaluator fold of the same delta.
  const CoverageReport check =
      search.evaluator().coverage(search.delta_for(plan.sites),
                                  config.threshold_ms);
  EXPECT_EQ(plan.coverage, check);
  EXPECT_EQ(plan.objective, check.weighted_fraction);
}

TEST(Search, PlanIsByteIdenticalAcrossThreadCounts) {
  SearchConfig one = small_search();
  one.max_sites = 4;
  one.threads = 1;
  SearchConfig eight = one;
  eight.threads = 8;
  OverlayConfig overlay_one;
  overlay_one.threads = 1;
  OverlayConfig overlay_eight;
  overlay_eight.threads = 8;
  const FootprintSearch s1(&fixture().store,
                           generate_candidates(small_universe()), one,
                           overlay_one);
  const FootprintSearch s8(&fixture().store,
                           generate_candidates(small_universe()), eight,
                           overlay_eight);
  const FootprintPlan p1 = s1.plan();
  const FootprintPlan p8 = s8.plan();
  EXPECT_EQ(p1, p8);  // sites, steps, coverage report — everything
}

TEST(Search, ExhaustiveGuardsAgainstLargeUniverses) {
  const FootprintSearch search(
      &fixture().store,
      first_n_candidates(FootprintSearch::kExhaustiveLimit + 1),
      small_search());
  EXPECT_THROW((void)search.exhaustive(), std::invalid_argument);
}

TEST(Search, CandidateIdMismatchThrows) {
  std::vector<CandidateSite> sites = first_n_candidates(4);
  sites[2].id = 7;
  EXPECT_THROW(FootprintSearch(&fixture().store, std::move(sites),
                               small_search()),
               std::invalid_argument);
}

TEST(Search, ZeroBudgetReturnsBasePlan) {
  SearchConfig config = small_search();
  config.max_sites = 0;
  const FootprintSearch search(&fixture().store, first_n_candidates(8),
                               config);
  const FootprintPlan plan = search.plan();
  EXPECT_TRUE(plan.sites.empty());
  EXPECT_EQ(plan.objective, plan.base_objective);
}

}  // namespace
}  // namespace shears::opt
