// Overload-recovery soak: an open arrival stream at ~10x the service
// model's capacity, followed by recovery. The front-end must shed (not
// collapse), keep the p99 of requests it *does* answer inside the SLO,
// drain completely once the storm passes — and produce byte-identical
// telemetry whether the oracle underneath fans out over 1 thread or 8,
// because the session layer's clock is simulated, not measured.
#include <gtest/gtest.h>

#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "front/server.hpp"
#include "front/traffic.hpp"
#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "obs/metrics.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

namespace shears::front {
namespace {

/// A small but real served world: a generated fleet, one simulated
/// campaign day, columnar store + oracle on top.
struct SoakWorld {
  topology::CloudRegistry registry;
  atlas::ProbeFleet fleet;
  atlas::MeasurementDataset dataset;
  serve::ColumnarStore store;

  SoakWorld()
      : registry(topology::CloudRegistry::campaign_footprint()),
        fleet(atlas::ProbeFleet::generate(
            atlas::PlacementConfig{geo::country_count() + 16, 42})),
        dataset(run_campaign(fleet, registry)),
        store(serve::ColumnarStore::build(dataset, serve::StoreConfig{0})) {}

  static atlas::MeasurementDataset run_campaign(
      const atlas::ProbeFleet& fleet, const topology::CloudRegistry& registry) {
    atlas::CampaignConfig config;
    config.duration_days = 1;
    const net::LatencyModel model{net::LatencyModelConfig{}};
    atlas::CampaignTelemetry telemetry;
    return atlas::Campaign(fleet, registry, model, config, nullptr)
        .run(telemetry);
  }
};

/// The service model: 100 us + 200 us/query. With 3 ms deadlines the
/// admission estimate caps the queue near (3000-100)/200 = 14 requests,
/// so the front-end sustains ~5 kqps against 40 kqps offered — a genuine
/// 8x overload where deadline-aware shedding does all the work.
FrontConfig overload_front_config() {
  FrontConfig config;
  config.queue_capacity = 256;
  config.max_batch = 64;
  config.batch_overhead_us = 100;
  config.per_query_us = 200;
  return config;
}

TrafficConfig overload_traffic_config() {
  TrafficConfig config;
  config.arrival = ArrivalMode::kOpen;
  config.clients = 64;
  config.offered_qps = 40'000;
  config.zipf_exponent = 1.1;
  config.duration_us = 400'000;
  config.slo_ms = 5.0;
  config.seed = 2020;
  // Deadline + worst-case jittered backoffs stay under the SLO, so every
  // *completed* request — retried or not — lands inside the tail target:
  // 625 + 1250 + 3000 us < 5 ms. That is the design claim of deadline-
  // aware shedding, and the p99 assertion below holds by construction.
  config.client.deadline_us = 3000;  // propagates into admission drops
  config.client.max_retries = 2;
  config.client.backoff_base_us = 500;
  config.client.backoff_cap_us = 1000;
  return config;
}

TrafficReport run_soak(SoakWorld& world, std::size_t oracle_threads,
                       obs::MetricsRegistry* metrics = nullptr) {
  // The oracle's fan-out width is the one thing allowed to vary.
  serve::ColumnarStore& store = world.store;
  const serve::Oracle oracle(&store,
                             serve::OracleConfig{oracle_threads, {}});
  FrontServer server(&oracle, &store, overload_front_config());
  if (metrics != nullptr) server.attach_metrics(metrics);
  const std::vector<serve::Query> corpus = make_corpus(world.fleet, 1024);
  return run_traffic(server, corpus, overload_traffic_config(), metrics);
}

TEST(FrontSoak, OverloadShedsRecoversAndHoldsTheTailSlo) {
  SoakWorld world;
  obs::MetricsRegistry metrics;
  const TrafficReport report = run_soak(world, 1, &metrics);

  // Offered load vastly exceeds what was answered: shedding engaged.
  EXPECT_GT(report.offered, 10'000u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_LT(report.completed, report.offered);
  const std::uint64_t shed = report.server.shed_queue_full +
                             report.server.shed_deadline +
                             report.server.shed_throttled;
  EXPECT_GT(shed, 0u);

  // The point of admission control: requests the server *did* accept and
  // answer stayed inside the tail SLO, even mid-storm.
  EXPECT_GT(report.server.answered, 0u);
  EXPECT_LE(report.p99_ms, report.slo_ms);
  EXPECT_TRUE(report.slo_met);

  // Post-overload recovery: every queue, output buffer and in-flight
  // request resolved; nothing leaked out of the storm.
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.offered + report.retries, report.sent);
  EXPECT_EQ(report.server.requests,
            report.server.admitted + shed);
  EXPECT_GT(report.retries, 0u);  // the backoff path actually ran

  // Telemetry published through obs matches the report's own counters.
  EXPECT_EQ(metrics.counter("front.requests").value(),
            report.server.requests);
  EXPECT_EQ(metrics.counter("front.answered").value(),
            report.server.answered);
  EXPECT_EQ(metrics.counter("front.traffic.completed").value(),
            report.completed);
}

TEST(FrontSoak, TelemetryIsByteIdenticalAcrossOracleThreadCounts) {
  SoakWorld world;
  const TrafficReport one = run_soak(world, 1);
  const TrafficReport eight = run_soak(world, 8);
  // The whole report — counters, percentiles, shed/retry totals — is a
  // pure function of (config, corpus, seed); thread fan-out inside the
  // oracle must be invisible.
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace shears::front
