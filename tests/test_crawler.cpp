// Tests for the synthetic-corpus crawler (the Fig. 1 methodology).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/regression.hpp"
#include "trends/crawler.hpp"

namespace shears::trends {
namespace {

TEST(Phrase, ExactPhraseSemantics) {
  EXPECT_TRUE(contains_phrase("Towards Edge Computing for IoT",
                              "edge computing"));
  EXPECT_TRUE(contains_phrase("EDGE COMPUTING", "edge computing"));
  EXPECT_FALSE(contains_phrase("Edge detection in images", "edge computing"));
  EXPECT_FALSE(contains_phrase("computing at the edge", "edge computing"));
  EXPECT_TRUE(contains_phrase("anything", ""));
  EXPECT_FALSE(contains_phrase("short", "much longer phrase"));
}

TEST(Corpus, DeterministicAndScaled) {
  SyntheticCorpus::Options options;
  const SyntheticCorpus a = SyntheticCorpus::generate(options);
  const SyntheticCorpus b = SyntheticCorpus::generate(options);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 10000u);  // ~1/10 of ~500k real records + decoys
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.publications()[i].title, b.publications()[i].title);
  }
}

TEST(Crawler, RecoversTheEmbeddedSeriesShape) {
  SyntheticCorpus::Options options;
  const SyntheticCorpus corpus = SyntheticCorpus::generate(options);
  const KeywordCrawler crawler(corpus);

  for (const Topic topic : {Topic::kEdgeComputing, Topic::kCloudComputing}) {
    const auto counted =
        crawler.count_by_year(std::string(to_string(topic)));
    const auto truth = publications(topic);
    ASSERT_EQ(counted.size(), truth.size());
    // Counts match the scaled truth exactly (deterministic corpus).
    for (std::size_t i = 0; i < counted.size(); ++i) {
      EXPECT_NEAR(counted[i].value, truth[i].value / options.scale, 0.51)
          << to_string(topic) << " " << counted[i].year;
    }
  }
}

TEST(Crawler, DecoysDoNotInflateCounts) {
  // The decoy titles contain "edge"/"cloud" as bare words; exact-phrase
  // counting must ignore them. A word-level count would be much larger.
  const SyntheticCorpus corpus = SyntheticCorpus::generate({});
  const KeywordCrawler crawler(corpus);
  const auto phrase_counts = crawler.count_by_year("edge computing");
  const auto word_counts = crawler.count_by_year("edge");
  double phrase_total = 0.0;
  double word_total = 0.0;
  for (std::size_t i = 0; i < phrase_counts.size(); ++i) {
    phrase_total += phrase_counts[i].value;
    word_total += word_counts[i].value;
  }
  EXPECT_GT(word_total, phrase_total * 1.3);
}

TEST(Crawler, CrossoverMatchesEmbeddedAnalysis) {
  const SyntheticCorpus corpus = SyntheticCorpus::generate({});
  const KeywordCrawler crawler(corpus);
  const auto edge = crawler.count_by_year("edge computing");
  const auto cloud = crawler.count_by_year("cloud computing");
  const int crawled = growth_crossover_year(edge, cloud, 1.5);
  const int truth =
      growth_crossover_year(publications(Topic::kEdgeComputing),
                            publications(Topic::kCloudComputing), 1.5);
  EXPECT_NEAR(crawled, truth, 1);
}

TEST(Crawler, PaginationBudgetIsRespected) {
  const SyntheticCorpus corpus = SyntheticCorpus::generate({});
  KeywordCrawler::Options options;
  options.page_size = 50;
  options.max_pages = 3;  // absurdly small budget -> truncated counts
  const KeywordCrawler limited(corpus, options);
  const auto counts = limited.count_by_year("cloud computing");
  EXPECT_EQ(limited.requests_issued(),
            counts.size() * options.max_pages);  // hit the cap every year
  double total = 0.0;
  for (const TrendPoint& p : counts) total += p.value;
  // Truncation: far fewer matches than the full crawl.
  const KeywordCrawler full(corpus);
  const auto full_counts = full.count_by_year("cloud computing");
  double full_total = 0.0;
  for (const TrendPoint& p : full_counts) full_total += p.value;
  EXPECT_LT(total, full_total / 2.0);
}

}  // namespace
}  // namespace shears::trends
