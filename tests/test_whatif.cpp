// Tests for the what-if engines (expansion ablation A1, 5G ablation A2).
#include <gtest/gtest.h>

#include <cmath>

#include "atlas/placement.hpp"
#include "core/whatif.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::core {
namespace {

TEST(ExpansionSweep, CoverageGrowsWithFootprint) {
  const net::LatencyModel model;
  const auto points = expansion_sweep({2010, 2014, 2017, 2020}, model);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].region_count, points[i - 1].region_count);
    EXPECT_GE(points[i].countries_under_20ms,
              points[i - 1].countries_under_20ms);
    EXPECT_LE(points[i].median_best_rtt_ms,
              points[i - 1].median_best_rtt_ms + 1e-9);
  }
  // 2010: a handful of regions, little sub-20ms coverage outside hosts.
  EXPECT_LT(points[0].region_count, 15u);
  // 2020: the full footprint and broad coverage.
  EXPECT_EQ(points.back().region_count, topology::region_count());
  EXPECT_GT(points.back().countries_under_20ms,
            2 * points[0].countries_under_20ms);
}

TEST(ExpansionSweep, HostingCountriesTracked) {
  const net::LatencyModel model;
  const auto points = expansion_sweep({2010, 2020}, model);
  EXPECT_LE(points[0].hosting_countries, 8u);
  EXPECT_EQ(points[1].hosting_countries, 21u);
}

TEST(ExpansionSweep, PreCloudYearCoversNobody) {
  // Before any region existed, no country is measured at all.
  const net::LatencyModel model;
  const auto points = expansion_sweep({2003}, model);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].region_count, 0u);
  EXPECT_EQ(points[0].countries_under_100ms, 0u);
  // No reachable region ⇒ no median: an explicit NaN, not a 0.0 that
  // would read as a perfect RTT.
  EXPECT_TRUE(std::isnan(points[0].median_best_rtt_ms));
}

TEST(ExpansionSweep, FallbackContinentsCountAsReachable) {
  // In 2012 Africa had no region, but African countries still reach the
  // European footprint under the §4.1 rule, so they appear in coverage.
  const net::LatencyModel model;
  const auto points = expansion_sweep({2012}, model);
  ASSERT_EQ(points.size(), 1u);
  // Coverage spans far more countries than the hosting set alone.
  EXPECT_GT(points[0].countries_under_100ms,
            points[0].hosting_countries * 3);
}

TEST(ExpansionSweep, EmptyYearListIsEmpty) {
  const net::LatencyModel model;
  EXPECT_TRUE(expansion_sweep({}, model).empty());
}

TEST(WirelessSweep, RatioShrinksTowardParity) {
  // As wireless last-mile latency approaches the 5G promise, the Fig. 7
  // gap must close monotonically (within noise) toward ~1x.
  atlas::PlacementConfig placement;
  placement.probe_count = 600;
  placement.seed = 17;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  atlas::CampaignConfig campaign;
  campaign.duration_days = 6;
  campaign.seed = 19;

  const auto points = wireless_improvement_sweep({1.0, 0.5, 0.1}, fleet,
                                                 registry, {}, campaign);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].median_ratio, 1.7);
  EXPECT_GT(points[0].median_ratio, points[1].median_ratio);
  EXPECT_GT(points[1].median_ratio, points[2].median_ratio);
  EXPECT_LT(points[2].median_ratio, 1.5);
  // Wired medians stay put (the knob only touches wireless).
  EXPECT_NEAR(points[0].wired_median_ms, points[2].wired_median_ms, 1.0);
}

}  // namespace
}  // namespace shears::core
