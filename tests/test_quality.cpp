// Tests for the data-quality guards and the clean-vs-faulted degradation
// report.
#include <gtest/gtest.h>

#include <vector>

#include "apps/application.hpp"
#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "core/quality.hpp"
#include "faults/fault_schedule.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::core {
namespace {

using atlas::Measurement;
using atlas::MeasurementDataset;

const atlas::ProbeFleet& test_fleet() {
  static const atlas::ProbeFleet fleet = [] {
    atlas::PlacementConfig config;
    config.probe_count = 400;
    config.seed = 11;
    return atlas::ProbeFleet::generate(config);
  }();
  return fleet;
}

const topology::CloudRegistry& test_registry() {
  static const topology::CloudRegistry registry =
      topology::CloudRegistry::campaign_footprint();
  return registry;
}

Measurement make_record(atlas::ProbeId probe, std::uint16_t region,
                        std::uint32_t tick, std::uint8_t received,
                        std::uint8_t faults = 0) {
  Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.sent = 3;
  m.received = received;
  if (received > 0) {
    m.min_ms = 20.0f;
    m.avg_ms = 25.0f;
    m.max_ms = 30.0f;
  }
  m.faults = faults;
  return m;
}

QualityPolicy lenient_policy() {
  QualityPolicy policy;
  policy.max_probe_loss = 1.0;   // disabled
  policy.min_cell_samples = 0;   // disabled
  return policy;
}

TEST(QualityGuards, FaultMaskDropsTaintedRecords) {
  const std::uint8_t skew = faults::fault_bit(faults::FaultKind::kClockSkew);
  const std::uint8_t flap = faults::fault_bit(faults::FaultKind::kRouteFlap);
  std::vector<Measurement> records;
  for (std::uint32_t t = 0; t < 5; ++t) records.push_back(make_record(0, 0, t, 3));
  for (std::uint32_t t = 5; t < 8; ++t)
    records.push_back(make_record(0, 0, t, 3, skew));
  for (std::uint32_t t = 8; t < 10; ++t)
    records.push_back(make_record(0, 0, t, 3, flap));
  const MeasurementDataset dataset(&test_fleet(), &test_registry(),
                                   std::move(records));

  QualityReport report;
  const auto guarded =
      apply_quality_guards(dataset, lenient_policy(), &report);
  EXPECT_EQ(report.records_in, 10u);
  EXPECT_EQ(report.dropped_faulted, 3u);  // skewed only; flapped kept
  EXPECT_EQ(guarded.size(), 7u);
  for (const Measurement& m : guarded.records()) {
    EXPECT_EQ(m.faults & skew, 0);
  }
}

TEST(QualityGuards, LossyProbesLoseAllRecords) {
  std::vector<Measurement> records;
  // Probe 0: 3 of 4 bursts fully lost (75% > 50%).
  records.push_back(make_record(0, 0, 0, 3));
  for (std::uint32_t t = 1; t < 4; ++t)
    records.push_back(make_record(0, 0, t, 0));
  // Probe 1: 1 of 4 lost — healthy.
  records.push_back(make_record(1, 0, 0, 0));
  for (std::uint32_t t = 1; t < 4; ++t)
    records.push_back(make_record(1, 0, t, 3));
  const MeasurementDataset dataset(&test_fleet(), &test_registry(),
                                   std::move(records));

  QualityPolicy policy = lenient_policy();
  policy.max_probe_loss = 0.5;
  QualityReport report;
  const auto guarded = apply_quality_guards(dataset, policy, &report);
  EXPECT_EQ(report.probes_dropped, 1u);
  EXPECT_EQ(report.dropped_lossy_probes, 4u);
  EXPECT_EQ(guarded.size(), 4u);
  for (const Measurement& m : guarded.records()) {
    EXPECT_EQ(m.probe_id, 1u);
  }
}

TEST(QualityGuards, ThinCellsAreDropped) {
  const auto& registry = test_registry();
  // Two target regions with different providers: two distinct
  // (country, provider) cells for the same probe.
  std::uint16_t other = 0;
  for (std::uint16_t i = 1; i < registry.size(); ++i) {
    if (registry.regions()[i]->provider != registry.regions()[0]->provider) {
      other = i;
      break;
    }
  }
  ASSERT_NE(other, 0);

  std::vector<Measurement> records;
  for (std::uint32_t t = 0; t < 3; ++t)
    records.push_back(make_record(0, 0, t, 3));     // thick cell
  records.push_back(make_record(0, other, 3, 3));   // thin cell: 1 sample
  const MeasurementDataset dataset(&test_fleet(), &test_registry(),
                                   std::move(records));

  QualityPolicy policy = lenient_policy();
  policy.min_cell_samples = 2;
  QualityReport report;
  const auto guarded = apply_quality_guards(dataset, policy, &report);
  EXPECT_EQ(report.cells_total, 2u);
  EXPECT_EQ(report.cells_dropped, 1u);
  EXPECT_EQ(report.dropped_thin_cells, 1u);
  EXPECT_EQ(guarded.size(), 3u);
  for (const Measurement& m : guarded.records()) {
    EXPECT_EQ(m.region_index, 0u);
  }
}

TEST(QualityGuards, EveryDropIsAccountedFor) {
  const std::uint8_t skew = faults::fault_bit(faults::FaultKind::kClockSkew);
  std::vector<Measurement> records;
  for (std::uint32_t t = 0; t < 12; ++t)
    records.push_back(make_record(0, 0, t, 3));
  for (std::uint32_t t = 0; t < 4; ++t)
    records.push_back(make_record(1, 0, t, 0));        // lossy probe
  records.push_back(make_record(2, 0, 0, 3, skew));    // fault-masked
  records.push_back(make_record(3, 0, 0, 3));          // thin cell? no —
  // probe 3 shares probe 0's cell only if the countries match; count via
  // the report instead of assuming.
  const MeasurementDataset dataset(&test_fleet(), &test_registry(),
                                   std::move(records));

  QualityPolicy policy;
  policy.max_probe_loss = 0.5;
  policy.min_cell_samples = 4;
  QualityReport report;
  const auto guarded = apply_quality_guards(dataset, policy, &report);
  EXPECT_EQ(report.records_in,
            report.records_out + report.dropped_faulted +
                report.dropped_lossy_probes + report.dropped_thin_cells);
  EXPECT_EQ(guarded.size(), report.records_out);
  EXPECT_EQ(report.dropped_faulted, 1u);
  EXPECT_EQ(report.dropped_lossy_probes, 4u);
}

TEST(QualityGuards, CleanCampaignSurvivesFaultAndLossGuards) {
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 3;
  config.seed = 13;
  const auto dataset =
      atlas::Campaign(test_fleet(), test_registry(), model, config).run();

  QualityPolicy policy = lenient_policy();  // cell guard off: a 3-day run
                                            // is legitimately thin
  QualityReport report;
  const auto guarded = apply_quality_guards(dataset, policy, &report);
  EXPECT_EQ(guarded.size(), dataset.size());
  EXPECT_EQ(report.dropped_faulted, 0u);
  EXPECT_EQ(report.probes_dropped, 0u);
}

TEST(DegradationReport, CleanVersusItselfIsStable) {
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 3;
  config.seed = 13;
  const auto dataset =
      atlas::Campaign(test_fleet(), test_registry(), model, config).run();

  const DegradationReport report = degradation_report(
      dataset, dataset, apps::application_catalog(), lenient_policy());
  EXPECT_TRUE(report.stable());
  EXPECT_FALSE(report.rows.empty());
  EXPECT_GT(report.apps_total, 0u);
  for (const VerdictShift& row : report.rows) {
    EXPECT_EQ(row.changed, 0u);
    EXPECT_DOUBLE_EQ(row.clean_median_ms, row.faulted_median_ms);
  }
}

TEST(DegradationReport, DetectsVerdictShiftsUnderHeavyDegradation) {
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 3;
  config.seed = 13;
  const auto clean =
      atlas::Campaign(test_fleet(), test_registry(), model, config).run();

  // A uniformly +200 ms dataset crosses several application thresholds.
  std::vector<Measurement> shifted(clean.records().begin(),
                                   clean.records().end());
  for (Measurement& m : shifted) {
    if (m.lost()) continue;
    m.min_ms += 200.0f;
    m.avg_ms += 200.0f;
    m.max_ms += 200.0f;
  }
  const MeasurementDataset faulted(&test_fleet(), &test_registry(),
                                   std::move(shifted));

  const DegradationReport report = degradation_report(
      clean, faulted, apps::application_catalog(), lenient_policy());
  EXPECT_FALSE(report.stable());
  EXPECT_GT(report.changed_total, 0u);
  for (const VerdictShift& row : report.rows) {
    EXPECT_GT(row.faulted_median_ms, row.clean_median_ms);
  }
}

TEST(DegradationReport, StableUnderModerateFaultsWithResilience) {
  // The acceptance bar: a moderate fault regime, with retries, quarantine
  // and the quality guards in play, must leave the paper's feasibility
  // verdicts where the clean run put them.
  const net::LatencyModel model;
  atlas::CampaignConfig config;
  config.duration_days = 30;
  config.seed = 13;
  const auto clean =
      atlas::Campaign(test_fleet(), test_registry(), model, config).run();

  faults::FaultScheduleConfig fault_config;
  fault_config.region_outage_rate = 0.02;
  fault_config.route_flap_rate = 0.05;
  fault_config.storm_rate = 0.04;
  fault_config.probe_hang_rate = 0.03;
  fault_config.clock_skew_rate = 0.01;
  fault_config.blackout_rate = 0.002;
  const faults::FaultSchedule schedule(fault_config);

  atlas::CampaignConfig resilient = config;
  resilient.retry.max_retries = 2;
  resilient.quarantine.enabled = true;
  const auto faulted =
      atlas::Campaign(test_fleet(), test_registry(), model, resilient,
                      &schedule)
          .run();
  EXPECT_GT(faulted.faulted_fraction(), 0.0);

  const DegradationReport report =
      degradation_report(clean, faulted, apps::application_catalog());
  EXPECT_TRUE(report.stable())
      << "changed " << report.changed_total << " of " << report.apps_total;
}

}  // namespace
}  // namespace shears::core
