// Tests for the TCP-based probing extension (§5 future work).
#include <gtest/gtest.h>

#include <vector>

#include "geo/country.hpp"
#include "net/tcp.hpp"
#include "stats/ecdf.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace shears::net {
namespace {

const topology::CloudRegion* region_by_id(std::string_view id) {
  for (const topology::CloudRegion& r : topology::all_regions()) {
    if (r.region_id == id) return &r;
  }
  return nullptr;
}

Endpoint paris_fibre() {
  const geo::Country* fr = geo::find_country("FR");
  return {fr->site, fr->tier, AccessTechnology::kFibre};
}

TEST(TcpConnect, TracksPingPlusOverhead) {
  // The TCP-probing claim: application-level latency follows ICMP plus a
  // small additive overhead, so ping-based conclusions carry over.
  const LatencyModel model;
  const Endpoint src = paris_fibre();
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(1);
  std::vector<double> pings;
  std::vector<double> connects;
  for (int i = 0; i < 20000; ++i) {
    const PingObservation obs = model.ping_once(src, *region, rng);
    if (!obs.lost) pings.push_back(obs.rtt_ms);
    const TcpConnectResult tcp = tcp_connect(model, src, *region, rng);
    if (tcp.connected && tcp.syn_attempts == 1) connects.push_back(tcp.connect_ms);
  }
  const double ping_median = stats::Ecdf(std::move(pings)).median();
  const double tcp_median = stats::Ecdf(std::move(connects)).median();
  EXPECT_GT(tcp_median, ping_median);
  EXPECT_LT(tcp_median, ping_median + 1.5);  // just the stack overhead
}

TEST(TcpConnect, RetransmissionAddsRtoWaits) {
  // Force heavy loss: retries must appear and pay whole RTO units.
  LatencyModelConfig lossy;
  lossy.core_loss_rate = 0.45;
  const LatencyModel model(lossy);
  const Endpoint src = paris_fibre();
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(2);
  bool saw_retry = false;
  for (int i = 0; i < 2000; ++i) {
    const TcpConnectResult r = tcp_connect(model, src, *region, rng);
    EXPECT_LE(r.syn_attempts, 4);
    if (r.connected && r.syn_attempts == 2) {
      saw_retry = true;
      EXPECT_GE(r.connect_ms, 1000.0);  // one initial RTO
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(TcpConnect, GivesUpAfterMaxAttempts) {
  LatencyModelConfig dead;
  dead.core_loss_rate = 1.0;
  const LatencyModel model(dead);
  const Endpoint src = paris_fibre();
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(3);
  const TcpConnectResult r = tcp_connect(model, src, *region, rng);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.syn_attempts, 4);
  // Waited 1 + 2 + 4 + 8 seconds of RTO.
  EXPECT_DOUBLE_EQ(r.connect_ms, 15000.0);
}

TEST(HttpTtfb, AddsRequestRttAndServerTime) {
  const LatencyModel model;
  const Endpoint src = paris_fibre();
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(4);
  TcpProbeConfig config;
  config.server_time_median_ms = 8.0;
  std::vector<double> ttfbs;
  for (int i = 0; i < 20000; ++i) {
    const HttpProbeResult r = http_ttfb(model, src, *region, rng, config);
    if (r.ok) {
      EXPECT_GT(r.ttfb_ms, r.connect_ms);
      ttfbs.push_back(r.ttfb_ms);
    }
  }
  ASSERT_GT(ttfbs.size(), 19000u);
  const double baseline = model.baseline_rtt_ms(src, *region);
  const double median = stats::Ecdf(std::move(ttfbs)).median();
  // TTFB ~ 2 RTTs + server time: strictly above 2x baseline, but within
  // a sane envelope.
  EXPECT_GT(median, 2.0 * baseline);
  EXPECT_LT(median, 2.0 * baseline + 25.0);
}

TEST(HttpTtfb, FacebookAnchorStillHoldsOverTcp) {
  // §5: "clients rarely observe latencies above 40 ms" — with TCP probing
  // the connect time (the comparable quantity) stays under 40 ms for a
  // well-connected European user.
  const LatencyModel model;
  const Endpoint src = paris_fibre();
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(5);
  std::vector<double> connects;
  for (int i = 0; i < 10000; ++i) {
    const TcpConnectResult r = tcp_connect(model, src, *region, rng);
    if (r.connected && r.syn_attempts == 1) connects.push_back(r.connect_ms);
  }
  EXPECT_LT(stats::Ecdf(std::move(connects)).percentile(90.0), 40.0);
}

}  // namespace
}  // namespace shears::net
