// Tests for the lane-batched sampling kernel: RNG lane striping must be
// recoverable from the scalar per-probe forks, the lockstep generator
// must replay the scalar streams bit-for-bit, the kernel's fixed draw
// schedule (kDrawsPerPacket per packet — what thread/shard invariance
// rests on) must hold exactly, the block kernel must agree with
// per-packet sample_ping *distributionally* (the engines consume their
// streams differently by design), and a faulted (non-lost) window must
// stay on the batched SoA path instead of falling back to scalar
// sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/country.hpp"
#include "net/burst_lanes.hpp"
#include "net/latency_model.hpp"
#include "stats/lanes.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace shears {
namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

TEST(XoshiroLanes, StripedLanesMatchScalarForks) {
  // Lane l of striped(root, ids) must replay exactly the stream the
  // scalar engine gets from root.fork(ids[l]) — that equivalence is the
  // whole determinism story of the batched engine.
  stats::Xoshiro256 root(2020);
  const std::array<std::uint64_t, 5> ids = {3, 17, 42, 1000003, 0};
  stats::XoshiroLanes lanes = stats::XoshiroLanes::striped(
      root, std::span<const std::uint64_t>(ids.data(), ids.size()));
  for (std::size_t l = 0; l < ids.size(); ++l) {
    stats::Xoshiro256 scalar = root.fork(ids[l]);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(lanes.lane(l).next(), scalar.next())
          << "lane " << l << " draw " << i;
    }
  }
}

TEST(XoshiroLanes, LockstepFillMatchesScalarStreams) {
  // fill_u64_lockstep must replay every lane's scalar stream bit for
  // bit, and only advance the lanes the mask says advanced.
  stats::Xoshiro256 root(91);
  std::array<std::uint64_t, stats::XoshiroLanes::kLanes> ids{};
  for (std::size_t l = 0; l < ids.size(); ++l) ids[l] = 40 + 3 * l;
  stats::XoshiroLanes lanes = stats::XoshiroLanes::striped(
      root, std::span<const std::uint64_t>(ids.data(), ids.size()));

  constexpr std::size_t kRounds = 23;
  std::array<bool, stats::XoshiroLanes::kLanes> advance{};
  for (std::size_t l = 0; l < advance.size(); ++l) advance[l] = (l % 3 != 2);

  std::vector<std::uint64_t> grid(kRounds * stats::XoshiroLanes::kLanes);
  lanes.fill_u64_lockstep(grid.data(), kRounds, advance);

  for (std::size_t l = 0; l < stats::XoshiroLanes::kLanes; ++l) {
    stats::Xoshiro256 scalar = root.fork(ids[l]);
    // The grid always holds the stream continuation, mask or not.
    for (std::size_t r = 0; r < kRounds; ++r) {
      EXPECT_EQ(grid[r * stats::XoshiroLanes::kLanes + l], scalar.next())
          << "lane " << l << " round " << r;
    }
    // Advanced lanes continue from round kRounds; held lanes rewind to
    // the start of their stream.
    stats::Xoshiro256 expect_next =
        advance[l] ? scalar : root.fork(ids[l]);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(lanes.lane(l).next(), expect_next.next()) << "lane " << l;
    }
  }
}

net::detail::BurstState test_burst_state() {
  net::detail::BurstState state;
  state.loss = 0.05;
  state.base_rtt_ms = 38.0;
  state.excess_median_ms = 4.0;
  state.excess_sigma = 0.6;
  state.latency_scale = 1.1;
  state.offset_ms = 2.0;
  state.median_ms = 9.0;
  state.bloat_probability = 0.3;
  state.bloat_scale_ms = 45.0;
  state.log_spread = 0.4;
  return state;
}

TEST(BurstLanes, KernelConsumesExactlyDrawsPerPacket) {
  // The thread/shard invariance of the batched engine rests on one
  // invariant: an active lane's stream advances by exactly
  // kDrawsPerPacket * packets per sampled burst, inactive lanes not at
  // all. Pin it for a partially active block.
  const net::LatencyModelConfig config;
  const net::detail::BurstState state = test_burst_state();
  const int packets = 5;

  std::array<std::uint64_t, net::kBurstLanes> ids{};
  for (std::size_t l = 0; l < net::kBurstLanes; ++l) ids[l] = 100 + l;
  stats::Xoshiro256 root(7);
  stats::XoshiroLanes lanes_rng = stats::XoshiroLanes::striped(
      root, std::span<const std::uint64_t>(ids.data(), ids.size()));

  net::BurstStateLanes lanes_state;
  for (std::size_t l = 0; l < net::kBurstLanes; ++l) {
    if (l % 2 == 0) lanes_state.set_lane(l, state);  // odd lanes inactive
  }
  std::array<net::PingResult, net::kBurstLanes> out;
  net::sample_burst_lanes(config, lanes_state, state.excess_sigma, packets,
                          lanes_rng, out);

  for (std::size_t l = 0; l < net::kBurstLanes; ++l) {
    stats::Xoshiro256 expect = root.fork(ids[l]);
    if (l % 2 == 0) {
      for (std::size_t d = 0;
           d < net::kDrawsPerPacket * static_cast<std::size_t>(packets); ++d) {
        expect.next();
      }
      EXPECT_GT(out[l].sent, 0) << "lane " << l;
    } else {
      EXPECT_EQ(out[l].sent, 0) << "lane " << l;
    }
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(lanes_rng.lane(l).next(), expect.next()) << "lane " << l;
    }
  }
}

TEST(BurstLanes, KernelMatchesScalarDistribution) {
  // The batched engine consumes its streams on a fixed schedule with
  // Box–Muller normals, so individual bursts differ from the scalar
  // engine by design; what must agree is the distribution. Sample a
  // large population of bursts from both engines with the same
  // BurstState and compare loss rate and the burst-aggregate RTT
  // quantiles. Quantiles (not means) keep the Pareto spike tail from
  // destabilising the comparison. Bounds are ~10x the sampling noise at
  // this population size, so the test is deterministic in practice while
  // still catching any real distributional break.
  const net::LatencyModelConfig config;
  const net::detail::BurstState state = test_burst_state();
  const int packets = 4;
  constexpr int kBlocks = 4000;  // x8 lanes = 32000 bursts per engine

  std::array<std::uint64_t, net::kBurstLanes> ids{};
  for (std::size_t l = 0; l < net::kBurstLanes; ++l) ids[l] = 100 + l;
  stats::Xoshiro256 root(7);
  stats::XoshiroLanes lanes_rng = stats::XoshiroLanes::striped(
      root, std::span<const std::uint64_t>(ids.data(), ids.size()));
  net::BurstStateLanes lanes_state;
  for (std::size_t l = 0; l < net::kBurstLanes; ++l) {
    lanes_state.set_lane(l, state);
  }

  std::int64_t batched_sent = 0, batched_received = 0;
  std::vector<double> batched_avg;
  std::array<net::PingResult, net::kBurstLanes> out;
  for (int b = 0; b < kBlocks; ++b) {
    net::sample_burst_lanes(config, lanes_state, state.excess_sigma, packets,
                            lanes_rng, out);
    for (std::size_t l = 0; l < net::kBurstLanes; ++l) {
      batched_sent += out[l].sent;
      batched_received += out[l].received;
      if (out[l].received > 0) batched_avg.push_back(out[l].avg_ms);
    }
  }

  std::int64_t scalar_sent = 0, scalar_received = 0;
  std::vector<double> scalar_avg;
  stats::Xoshiro256 scalar_rng(1234);
  for (int b = 0; b < kBlocks * static_cast<int>(net::kBurstLanes); ++b) {
    const net::PingResult r = net::detail::aggregate_burst(
        packets,
        [&] { return net::detail::sample_ping(config, state, scalar_rng); });
    scalar_sent += r.sent;
    scalar_received += r.received;
    if (r.received > 0) scalar_avg.push_back(r.avg_ms);
  }

  const double batched_loss =
      1.0 - static_cast<double>(batched_received) /
                static_cast<double>(batched_sent);
  const double scalar_loss =
      1.0 - static_cast<double>(scalar_received) /
                static_cast<double>(scalar_sent);
  EXPECT_NEAR(batched_loss, scalar_loss, 0.01);

  std::sort(batched_avg.begin(), batched_avg.end());
  std::sort(scalar_avg.begin(), scalar_avg.end());
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double bq = quantile_sorted(batched_avg, q);
    const double sq = quantile_sorted(scalar_avg, q);
    EXPECT_NEAR(bq, sq, 0.03 * sq + 0.5) << "quantile " << q;
  }
  // The p99 sits on the spike tail; allow proportionally more noise.
  const double b99 = quantile_sorted(batched_avg, 0.99);
  const double s99 = quantile_sorted(scalar_avg, 0.99);
  EXPECT_NEAR(b99, s99, 0.10 * s99 + 1.0);
}

TEST(BatchedCampaign, FaultedWindowStaysOnBatchedPath) {
  // Regression pin for the SoA fault path: a campaign-wide congestion
  // storm perturbs every burst, and every one of them must still be
  // sampled by the lane kernel — faults must not push sampling back onto
  // the scalar loop.
  atlas::PlacementConfig placement;
  placement.probe_count = geo::country_count() + 40;
  placement.seed = 11;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  faults::FaultSchedule schedule;
  faults::FaultEvent storm;
  storm.kind = faults::FaultKind::kCongestionStorm;
  storm.start_tick = 0;
  storm.end_tick = 1000;
  storm.country_key = 0;  // every country
  storm.wireless_only = false;
  schedule.add_event(storm);

  atlas::CampaignConfig config;
  config.duration_days = 2;
  config.seed = 13;
  config.threads = 1;
  config.batched = true;
  const atlas::Campaign campaign(fleet, registry, model, config, &schedule);
  ASSERT_TRUE(campaign.batched_eligible());

  atlas::CampaignTelemetry telemetry;
  const atlas::MeasurementDataset dataset = campaign.run(telemetry);
  EXPECT_GT(dataset.records().size(), 0u);
  EXPECT_GT(telemetry.bursts, 0u);
  EXPECT_GT(telemetry.bursts_faulted, 0u);
  EXPECT_GT(telemetry.bursts_batched, 0u);
  // Every cache-served (i.e. sampled) burst went through the lanes.
  EXPECT_EQ(telemetry.bursts_batched, telemetry.bursts_cached);
  // The storm perturbs load, it does not lose bursts: every record is
  // faulted and every record was sampled.
  EXPECT_EQ(telemetry.bursts_faulted, telemetry.bursts);
}

TEST(BatchedCampaign, IneligibleConfigFallsBackSilently) {
  atlas::PlacementConfig placement;
  placement.probe_count = geo::country_count() + 10;
  placement.seed = 5;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  atlas::CampaignConfig config;
  config.duration_days = 1;
  config.seed = 3;
  config.threads = 1;
  config.batched = true;
  config.retry.max_retries = 1;  // retries are outside the kernel's scope
  const atlas::Campaign campaign(fleet, registry, model, config);
  EXPECT_FALSE(campaign.batched_eligible());

  atlas::CampaignTelemetry telemetry;
  const atlas::MeasurementDataset dataset = campaign.run(telemetry);
  EXPECT_GT(dataset.records().size(), 0u);
  EXPECT_EQ(telemetry.bursts_batched, 0u);
}

}  // namespace
}  // namespace shears
