// Corpus-driven loader fuzzing: mutated serialisations of valid datasets
// must either parse or raise the documented line-numbered malformed-row
// error — never crash, never throw anything else. The prop label puts
// this under the sanitize preset, which also shakes out memory errors on
// the parse paths.
#include <gtest/gtest.h>

#include "atlas/measurement.hpp"
#include "check/fuzz.hpp"
#include "check/property.hpp"
#include "check/world.hpp"

namespace shears::check {
namespace {

TEST(Fuzz, CsvReaderParsesOrRejectsWithDiagnostics) {
  std::size_t rejected = 0;
  const CheckResult result = check(
      "fuzz_csv",
      [&](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        const FuzzStats stats = fuzz_csv(gen, world, dataset, 24);
        rejected += stats.rejected;
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
  // The corpus must actually exercise the error paths, not only produce
  // still-valid documents.
  if (result.passed) EXPECT_GT(rejected, 0u);
}

TEST(Fuzz, JsonlReaderParsesOrRejectsWithDiagnostics) {
  std::size_t rejected = 0;
  const CheckResult result = check(
      "fuzz_jsonl",
      [&](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        const FuzzStats stats = fuzz_jsonl(gen, world, dataset, 24);
        rejected += stats.rejected;
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
  if (result.passed) EXPECT_GT(rejected, 0u);
}

TEST(Fuzz, FrameDecoderNeverThrowsPastAFrameBoundary) {
  std::size_t damaged = 0;
  std::size_t clean = 0;
  const CheckResult result = check(
      "fuzz_frames",
      [&](Gen& gen) {
        const FrameFuzzStats stats = fuzz_frames(gen, 32);
        damaged += stats.damaged;
        clean += stats.clean;
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
  if (result.passed) {
    // The mutations must actually reach the decoder's error paths, and
    // the clean rounds must actually exercise exact round-trips.
    EXPECT_GT(damaged, 0u);
    EXPECT_GT(clean, 0u);
  }
}

TEST(Fuzz, FrameReassemblyIsChunkingInvariant) {
  std::size_t frames = 0;
  std::size_t damaged = 0;
  std::size_t mutated = 0;
  const CheckResult result = check(
      "fuzz_reassembly",
      [&](Gen& gen) {
        const ReassemblyFuzzStats stats = fuzz_reassembly(gen, 32);
        frames += stats.frames;
        damaged += stats.damaged;
        mutated += stats.mutated;
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
  if (result.passed) {
    // The property is vacuous unless the rounds deliver real frames AND
    // hit the error paths whose tallies it pins.
    EXPECT_GT(frames, 0u);
    EXPECT_GT(damaged, 0u);
    EXPECT_GT(mutated, 0u);
  }
}

TEST(Fuzz, CorpusTokensAreDeterministic) {
  Gen a(1234, 10);
  Gen b(1234, 10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(corpus_token(a), corpus_token(b));
  }
}

}  // namespace
}  // namespace shears::check
