// Tests for the P² streaming quantile estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/distributions.hpp"
#include "stats/ecdf.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/rng.hpp"

namespace shears::stats {
namespace {

TEST(P2, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_NO_THROW(P2Quantile(0.5));
}

TEST(P2, SmallSamplesAreExactish) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.value(), 0.0);
  median.add(10.0);
  EXPECT_DOUBLE_EQ(median.value(), 10.0);
  median.add(20.0);
  median.add(30.0);
  EXPECT_DOUBLE_EQ(median.value(), 20.0);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksLognormalQuantiles) {
  const double q = GetParam();
  P2Quantile estimator(q);
  Xoshiro256 rng(321);
  std::vector<double> sample;
  constexpr int kN = 200000;
  sample.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double x = sample_lognormal_median(rng, 25.0, 1.6);
    estimator.add(x);
    sample.push_back(x);
  }
  const double exact = Ecdf(std::move(sample)).quantile(q);
  EXPECT_NEAR(estimator.value(), exact, exact * 0.05) << "q=" << q;
  EXPECT_EQ(estimator.count(), static_cast<std::uint64_t>(kN));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2, MonotoneUnderSortedInput) {
  P2Quantile p90(0.9);
  for (int i = 1; i <= 10000; ++i) p90.add(static_cast<double>(i));
  EXPECT_NEAR(p90.value(), 9000.0, 200.0);
}

TEST(P2, HandlesConstantStream) {
  P2Quantile median(0.5);
  for (int i = 0; i < 1000; ++i) median.add(7.0);
  EXPECT_DOUBLE_EQ(median.value(), 7.0);
}

}  // namespace
}  // namespace shears::stats
