// Tests for the P² streaming quantile estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "stats/ecdf.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/rng.hpp"

namespace shears::stats {
namespace {

TEST(P2, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_NO_THROW(P2Quantile(0.5));
}

TEST(P2, SmallSamplesAreExactish) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.value(), 0.0);
  median.add(10.0);
  EXPECT_DOUBLE_EQ(median.value(), 10.0);
  median.add(20.0);
  median.add(30.0);
  EXPECT_DOUBLE_EQ(median.value(), 20.0);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksLognormalQuantiles) {
  const double q = GetParam();
  P2Quantile estimator(q);
  Xoshiro256 rng(321);
  std::vector<double> sample;
  constexpr int kN = 200000;
  sample.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double x = sample_lognormal_median(rng, 25.0, 1.6);
    estimator.add(x);
    sample.push_back(x);
  }
  const double exact = Ecdf(std::move(sample)).quantile(q);
  EXPECT_NEAR(estimator.value(), exact, exact * 0.05) << "q=" << q;
  EXPECT_EQ(estimator.count(), static_cast<std::uint64_t>(kN));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2, MonotoneUnderSortedInput) {
  P2Quantile p90(0.9);
  for (int i = 1; i <= 10000; ++i) p90.add(static_cast<double>(i));
  EXPECT_NEAR(p90.value(), 9000.0, 200.0);
}

TEST(P2, HandlesConstantStream) {
  P2Quantile median(0.5);
  for (int i = 0; i < 1000; ++i) median.add(7.0);
  EXPECT_DOUBLE_EQ(median.value(), 7.0);
}

// Nearest-rank quantile over a sorted copy — the documented contract for
// fewer than five samples.
double nearest_rank(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sample.size() - 1),
                       std::floor(q * static_cast<double>(sample.size()))));
  return sample[rank];
}

TEST(P2, SmallNIsExactNearestRankForEveryPrefix) {
  const std::vector<double> stream = {42.0, 3.0, 17.0, 8.0};
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    P2Quantile estimator(q);
    std::vector<double> fed;
    for (const double x : stream) {
      estimator.add(x);
      fed.push_back(x);
      EXPECT_DOUBLE_EQ(estimator.value(), nearest_rank(fed, q))
          << "q=" << q << " n=" << fed.size();
      EXPECT_TRUE(estimator.invariants_ok());
    }
    EXPECT_EQ(estimator.count(), stream.size());
  }
}

TEST(P2, SmallNHandlesDuplicates) {
  for (const double q : {0.25, 0.5, 0.9}) {
    P2Quantile estimator(q);
    std::vector<double> fed;
    for (const double x : {5.0, 5.0, 1.0, 5.0}) {
      estimator.add(x);
      fed.push_back(x);
      EXPECT_DOUBLE_EQ(estimator.value(), nearest_rank(fed, q)) << "q=" << q;
    }
  }
}

TEST(P2, SmallNHandlesMonotoneInput) {
  for (const double q : {0.25, 0.5, 0.75}) {
    P2Quantile ascending(q);
    P2Quantile descending(q);
    std::vector<double> fed;
    for (int i = 1; i <= 4; ++i) {
      ascending.add(static_cast<double>(i));
      descending.add(static_cast<double>(5 - i));
      fed.push_back(static_cast<double>(i));
      EXPECT_DOUBLE_EQ(ascending.value(), nearest_rank(fed, q)) << "q=" << q;
    }
    // After four samples both estimators hold the same multiset {1,2,3,4},
    // so the exact small-n quantiles must agree.
    EXPECT_DOUBLE_EQ(ascending.value(), descending.value()) << "q=" << q;
  }
}

TEST(P2, MarkerInvariantsHoldOnAdversarialStreams) {
  Xoshiro256 rng(777);
  P2Quantile estimator(0.5);
  // Alternate tight duplicates with wild outliers to stress the marker
  // adjustment; the invariants must hold after every single add.
  for (int i = 0; i < 2000; ++i) {
    const double x = (i % 3 == 0)   ? 10.0
                     : (i % 3 == 1) ? rng.uniform(9.999, 10.001)
                                    : rng.uniform(0.0, 1e6);
    estimator.add(x);
    ASSERT_TRUE(estimator.invariants_ok()) << "after sample " << i;
  }
}

}  // namespace
}  // namespace shears::stats
