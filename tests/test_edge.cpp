// Tests for the edge-deployment model: placement latencies, the
// Hadzic/Cartas gain reality-check, and the economies-of-scale estimator.
#include <gtest/gtest.h>

#include "edge/deployment.hpp"
#include "stats/ecdf.hpp"
#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::edge {
namespace {

const geo::Country& country(std::string_view iso2) {
  const geo::Country* c = geo::find_country(iso2);
  EXPECT_NE(c, nullptr);
  return *c;
}

TEST(Placement, DeeperPlacementIsFaster) {
  double prev = 1e18;
  for (const EdgePlacement p :
       {EdgePlacement::kRegionalSite, EdgePlacement::kMetroPop,
        EdgePlacement::kCentralOffice, EdgePlacement::kBasestation}) {
    const double backhaul = placement_backhaul_ms(p);
    EXPECT_LT(backhaul, prev) << to_string(p);
    prev = backhaul;
  }
}

TEST(Placement, EdgeRttDominatedByAccessForWireless) {
  const net::LatencyModel model;
  const geo::Country& de = country("DE");
  const net::Endpoint lte{de.site, de.tier, net::AccessTechnology::kLte};
  const double edge_rtt =
      edge_baseline_rtt_ms(model, lte, EdgePlacement::kBasestation);
  const double access = model.access_profile_of(lte).median_ms;
  EXPECT_GT(access / edge_rtt, 0.9);  // backhaul is a rounding error
  // Even a basestation-colocated edge cannot meet MTP over LTE: the
  // paper's wireless floor.
  EXPECT_GT(edge_rtt, 20.0);
}

TEST(Gain, MinimalForWirelessUsersInServedRegions) {
  // Hadzic/Cartas: an LTE-colocated edge gains little over a datacenter
  // within the continent for wireless users in well-served countries.
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  const EdgeGain gain = analyze_gain(model, country("DE"),
                                     net::AccessTechnology::kLte, cloud,
                                     EdgePlacement::kBasestation);
  ASSERT_NE(gain.nearest_region, nullptr);
  // Relative gain under ~25%: the last mile dominates both paths.
  EXPECT_LT(gain.relative_gain, 0.25);
  EXPECT_LT(gain.absolute_gain_ms, 15.0);
}

TEST(Gain, SubstantialForWiredUsersInUnderServedRegions) {
  // §6: "in developing regions, gains are more significant".
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  const EdgeGain gain = analyze_gain(model, country("TD"),
                                     net::AccessTechnology::kEthernet, cloud,
                                     EdgePlacement::kMetroPop);
  ASSERT_NE(gain.nearest_region, nullptr);
  EXPECT_GT(gain.relative_gain, 0.7);
  EXPECT_GT(gain.absolute_gain_ms, 80.0);
}

TEST(Gain, WiredServedUsersGainLittleInAbsoluteTerms) {
  const net::LatencyModel model;
  const auto cloud = topology::CloudRegistry::campaign_footprint();
  const EdgeGain gain = analyze_gain(model, country("NL"),
                                     net::AccessTechnology::kFibre, cloud,
                                     EdgePlacement::kCentralOffice);
  ASSERT_NE(gain.nearest_region, nullptr);
  EXPECT_LT(gain.absolute_gain_ms, 5.0);  // the cloud is already local
}

TEST(Sites, WirelessMtpIsInfeasibleEverywhere) {
  // The headline of Fig. 8's latency floor: no density of edge sites
  // delivers MTP (20 ms) over today's LTE — the access link alone
  // exceeds the budget.
  const net::LatencyModel model;
  const auto estimates = sites_for_target(model, 20.0,
                                          net::AccessTechnology::kLte,
                                          EdgePlacement::kBasestation);
  EXPECT_FALSE(total_sites(estimates).has_value());
}

TEST(Sites, WiredMtpIsFeasibleButExpensive) {
  const net::LatencyModel model;
  const auto estimates = sites_for_target(model, 20.0,
                                          net::AccessTechnology::kFibre,
                                          EdgePlacement::kCentralOffice);
  const auto total = total_sites(estimates);
  ASSERT_TRUE(total.has_value());
  // Far more edge sites than the 101 cloud regions — §5's economies of
  // scale argument.
  EXPECT_GT(*total, 101u);
}

TEST(Sites, TighterTargetsNeedMoreSites) {
  const net::LatencyModel model;
  const auto strict = sites_for_target(model, 15.0,
                                       net::AccessTechnology::kFibre,
                                       EdgePlacement::kCentralOffice);
  const auto loose = sites_for_target(model, 50.0,
                                      net::AccessTechnology::kFibre,
                                      EdgePlacement::kCentralOffice);
  const auto strict_total = total_sites(strict);
  const auto loose_total = total_sites(loose);
  ASSERT_TRUE(strict_total.has_value());
  ASSERT_TRUE(loose_total.has_value());
  EXPECT_GT(*strict_total, *loose_total);
}

TEST(Sites, PerCountryEstimatesAreConsistent) {
  const net::LatencyModel model;
  const auto estimates = sites_for_target(model, 30.0,
                                          net::AccessTechnology::kFibre,
                                          EdgePlacement::kCentralOffice);
  EXPECT_EQ(estimates.size(), geo::country_count());
  for (const SiteEstimate& e : estimates) {
    ASSERT_NE(e.country, nullptr);
    if (e.feasible) {
      EXPECT_GT(e.radius_km, 0.0) << e.country->name;
      EXPECT_GE(e.sites, 1u) << e.country->name;
    } else {
      EXPECT_EQ(e.sites, 0u) << e.country->name;
    }
  }
  // Big countries need more sites than city-states at the same target.
  const auto find = [&estimates](std::string_view iso2) {
    for (const SiteEstimate& e : estimates) {
      if (e.country->iso2 == iso2) return e;
    }
    return SiteEstimate{};
  };
  const SiteEstimate us = find("US");
  const SiteEstimate sg = find("SG");
  ASSERT_TRUE(us.feasible);
  ASSERT_TRUE(sg.feasible);
  EXPECT_GT(us.sites, sg.sites);
}

TEST(EdgeCampaign, CounterfactualShapesMatchTheNarrative) {
  atlas::PlacementConfig placement;
  placement.probe_count = 1200;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const net::LatencyModel model;
  const auto world = simulate_edge_campaign(
      fleet, model, EdgePlacement::kBasestation, 40, 7);

  const auto& eu = world.samples[geo::index_of(geo::Continent::kEurope)];
  const auto& af = world.samples[geo::index_of(geo::Continent::kAfrica)];
  ASSERT_GT(eu.size(), 1000u);
  ASSERT_GT(af.size(), 500u);
  const stats::Ecdf eu_ecdf(eu);
  const stats::Ecdf af_ecdf(af);
  // Edge RTTs carry no wide-area path: single-digit medians in EU,
  // higher in Africa (worse last miles), but far below Africa's cloud.
  EXPECT_LT(eu_ecdf.median(), 10.0);
  EXPECT_GT(af_ecdf.median(), eu_ecdf.median());
  EXPECT_LT(af_ecdf.median(), 60.0);
  // Even with edge everywhere, a visible share of samples (the cellular
  // probes) misses MTP: the wireless floor.
  EXPECT_LT(eu_ecdf.fraction_at_or_below(20.0), 0.95);
}

TEST(EdgeCampaign, DeterministicAndRespectsPrivilegedFilter) {
  atlas::PlacementConfig placement;
  placement.probe_count = 400;
  const auto fleet = atlas::ProbeFleet::generate(placement);
  const net::LatencyModel model;
  const auto a = simulate_edge_campaign(fleet, model,
                                        EdgePlacement::kMetroPop, 10, 5);
  const auto b = simulate_edge_campaign(fleet, model,
                                        EdgePlacement::kMetroPop, 10, 5);
  std::size_t probes = 0;
  for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
    ASSERT_EQ(a.samples[c].size(), b.samples[c].size());
    for (std::size_t i = 0; i < a.samples[c].size(); ++i) {
      EXPECT_DOUBLE_EQ(a.samples[c][i], b.samples[c][i]);
    }
    probes += a.minima[c].size();
  }
  std::size_t expected = 0;
  for (const atlas::Probe& p : fleet.probes()) expected += !p.privileged();
  EXPECT_EQ(probes, expected);
}

}  // namespace
}  // namespace shears::edge
