// Tests for the feasibility zone (Fig. 8) and the §5 verdict logic — the
// paper's headline analytical claims, encoded as assertions.
#include <gtest/gtest.h>

#include "apps/application.hpp"
#include "core/feasibility.hpp"

namespace shears::core {
namespace {

using apps::Application;

Application make_app(double floor_ms, double ceiling_ms, double gb_per_day,
                     double market = 10.0, bool hyped = false) {
  return Application{"test-app", "Test", floor_ms, ceiling_ms, gb_per_day,
                     market, hyped};
}

TEST(FeasibilityZone, GeometryBounds) {
  const FeasibilityConfig config;
  // Inside: the whole requirement band within [10, 250] ms + heavy data.
  EXPECT_TRUE(in_feasibility_zone(make_app(20.0, 100.0, 30.0), config));
  // Too stringent (band dips below the wireless floor).
  EXPECT_FALSE(in_feasibility_zone(make_app(1.0, 9.0, 3000.0), config));
  EXPECT_FALSE(in_feasibility_zone(make_app(5.0, 100.0, 3000.0), config));
  // Too relaxed (ceiling above HRT).
  EXPECT_FALSE(in_feasibility_zone(make_app(100.0, 1000.0, 500.0), config));
  // Light data.
  EXPECT_FALSE(in_feasibility_zone(make_app(20.0, 100.0, 0.01), config));
  // Boundary inclusivity.
  EXPECT_TRUE(in_feasibility_zone(make_app(10.0, 250.0, 1.0), config));
  EXPECT_FALSE(in_feasibility_zone(make_app(9.9, 250.0, 1.0), config));
  EXPECT_FALSE(in_feasibility_zone(make_app(10.0, 250.1, 1.0), config));
}

TEST(FeasibilityZone, PaperPlacements) {
  // §5: traffic-camera monitoring and cloud gaming fall inside the FZ;
  // the hype drivers do not.
  const auto in_fz = [](std::string_view id) {
    const Application* app = apps::find_application(id);
    EXPECT_NE(app, nullptr) << id;
    return app != nullptr && in_feasibility_zone(*app);
  };
  EXPECT_TRUE(in_fz("traffic-monitoring"));
  EXPECT_TRUE(in_fz("cloud-gaming"));
  EXPECT_FALSE(in_fz("ar-vr"));                // too stringent for wireless
  EXPECT_FALSE(in_fz("autonomous-vehicles"));  // too stringent
  EXPECT_FALSE(in_fz("wearables"));            // too little data
  EXPECT_FALSE(in_fz("smart-city"));           // too relaxed
  EXPECT_FALSE(in_fz("smart-home"));           // neither constraint
}

TEST(Verdict, OnboardWhenRequirementBelowWirelessFloor) {
  EXPECT_EQ(classify(make_app(1.0, 8.0, 3000.0), /*cloud rtt*/ 30.0),
            EdgeVerdict::kOnboardOnly);
  // Exactly at the floor is still unreachable over wireless in practice —
  // the paper files autonomous vehicles (<=10 ms) under onboard compute.
  EXPECT_EQ(classify(make_app(1.0, 10.0, 3000.0), 30.0),
            EdgeVerdict::kOnboardOnly);
}

TEST(Verdict, CloudSufficientWhenMeasuredRttMeetsNeed) {
  // Cloud gaming in Europe: ~15 ms median cloud RTT meets the 100 ms need.
  EXPECT_EQ(classify(make_app(40.0, 100.0, 20.0), 15.0),
            EdgeVerdict::kCloudSufficient);
}

TEST(Verdict, EdgeFeasibleWhenCloudFallsShort) {
  // The same application behind a 150 ms cloud (under-served region).
  EXPECT_EQ(classify(make_app(40.0, 100.0, 20.0), 150.0),
            EdgeVerdict::kEdgeFeasible);
}

TEST(Verdict, BandwidthAggregationForRelaxedHeavyApps) {
  // Smart city with a 60 s budget: even a 300 ms cloud meets it, so it is
  // cloud-sufficient; with an (artificial) ceiling just above HRT and an
  // unreachable cloud, only the aggregation case remains.
  EXPECT_EQ(classify(make_app(1000.0, 60000.0, 500.0), 300.0),
            EdgeVerdict::kCloudSufficient);
  EXPECT_EQ(classify(make_app(100.0, 260.0, 500.0), 400.0),
            EdgeVerdict::kBandwidthAggregation);
}

TEST(Verdict, NoEdgeCaseForLightRelaxedApps) {
  EXPECT_EQ(classify(make_app(100.0, 200.0, 0.01), 500.0),
            EdgeVerdict::kNoEdgeCase);
}

TEST(Verdict, CatalogAgainstEuropeIsMostlyCloudSufficient) {
  // §5/§7: in well-connected regions "the cloud is able to satisfy almost
  // all application requirements". With the EU median cloud RTT (~15 ms),
  // every catalog app except the sub-10ms ones is cloud-sufficient.
  const auto rows = classify_catalog(apps::application_catalog(), 15.0);
  std::size_t cloud = 0;
  std::size_t onboard = 0;
  for (const FeasibilityRow& row : rows) {
    if (row.verdict == EdgeVerdict::kCloudSufficient) ++cloud;
    if (row.verdict == EdgeVerdict::kOnboardOnly) ++onboard;
  }
  EXPECT_EQ(cloud + onboard, rows.size());
  EXPECT_GE(onboard, 2u);  // AV and industrial automation
}

TEST(Verdict, CatalogAgainstAfricaShowsEdgeCases) {
  // Behind a 150 ms cloud (under-served region) edge-feasible verdicts
  // appear — §6: "in developing regions, gains are more significant".
  const auto rows = classify_catalog(apps::application_catalog(), 150.0);
  std::size_t edge = 0;
  for (const FeasibilityRow& row : rows) {
    if (row.verdict == EdgeVerdict::kEdgeFeasible) ++edge;
  }
  EXPECT_GE(edge, 2u);
}

TEST(MarketShare, FeasibilityZonePales) {
  // §5: "the predicted market share of applications within the edge FZ
  // pales compared to those for which edge does not provide much benefit".
  const MarketShareSummary summary =
      market_share_summary(apps::application_catalog());
  EXPECT_GT(summary.in_zone_apps, 0u);
  EXPECT_GT(summary.out_of_zone_busd, 3.0 * summary.in_zone_busd);
  // And the hyped drivers sit predominantly outside the zone.
  EXPECT_GT(summary.hyped_out_of_zone_busd, summary.in_zone_busd);
}

TEST(MarketShare, SummaryIsExhaustive) {
  const MarketShareSummary summary =
      market_share_summary(apps::application_catalog());
  double total = 0.0;
  for (const Application& a : apps::application_catalog()) {
    total += a.market_2025_busd;
  }
  EXPECT_NEAR(summary.in_zone_busd + summary.out_of_zone_busd, total, 1e-9);
}

TEST(FeasibilityConfig, WiderZoneAdmitsMoreApps) {
  // Property: relaxing the wireless floor (better 5G) or the bandwidth
  // threshold monotonically grows the zone.
  FeasibilityConfig strict;
  FeasibilityConfig loose;
  loose.latency_floor_ms = 1.0;
  loose.bandwidth_threshold_gb = 0.01;
  std::size_t strict_count = 0;
  std::size_t loose_count = 0;
  for (const Application& a : apps::application_catalog()) {
    strict_count += in_feasibility_zone(a, strict);
    loose_count += in_feasibility_zone(a, loose);
  }
  EXPECT_GE(loose_count, strict_count);
  EXPECT_GT(loose_count, strict_count);  // catalog has apps in the gap
}

}  // namespace
}  // namespace shears::core
