// Tests for the SVG renderer: well-formedness and content checks.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "report/svg.hpp"

namespace shears::report {
namespace {

Series ramp(const std::string& name) {
  Series s;
  s.name = name;
  for (int i = 1; i <= 100; ++i) {
    s.points.emplace_back(i, i / 100.0);
  }
  return s;
}

TEST(Svg, CdfDocumentStructure) {
  SvgPlotOptions options;
  options.title = "Fig. T<est> & co";
  const std::string svg =
      render_svg_cdf({ramp("EU"), ramp("NA")}, {{"MTP", 20.0}}, options);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Two series paths, one marker line (dashed), a legend per series.
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
  EXPECT_NE(svg.find(">EU</text>"), std::string::npos);
  EXPECT_NE(svg.find(">NA</text>"), std::string::npos);
  EXPECT_NE(svg.find("MTP"), std::string::npos);
  // XML escaping of the title.
  EXPECT_NE(svg.find("Fig. T&lt;est&gt; &amp; co"), std::string::npos);
  EXPECT_EQ(svg.find("<est>"), std::string::npos);
}

TEST(Svg, DistinctColoursPerSeries) {
  const std::string svg = render_svg_cdf({ramp("a"), ramp("b")}, {});
  EXPECT_NE(svg.find("#0072B2"), std::string::npos);
  EXPECT_NE(svg.find("#D55E00"), std::string::npos);
}

TEST(Svg, LogAxisDrawsDecadeTicks) {
  SvgPlotOptions options;
  options.log_x = true;
  options.x_min = 1.0;
  options.x_max = 1000.0;
  const std::string svg = render_svg_cdf({ramp("x")}, {}, options);
  EXPECT_NE(svg.find(">1</text>"), std::string::npos);
  EXPECT_NE(svg.find(">10</text>"), std::string::npos);
  EXPECT_NE(svg.find(">100</text>"), std::string::npos);
  EXPECT_NE(svg.find(">1000</text>"), std::string::npos);
}

TEST(Svg, EmptySeriesStillValid) {
  const std::string svg = render_svg_cdf({}, {});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, BarsRenderValuesAndLabels) {
  const std::string svg = render_svg_bars(
      {{"alpha & beta", 42.0}, {"gamma", 7.0}}, "Sites", "sites");
  EXPECT_NE(svg.find("alpha &amp; beta"), std::string::npos);
  EXPECT_NE(svg.find("42.0 sites"), std::string::npos);
  EXPECT_NE(svg.find(">Sites</text>"), std::string::npos);
}

TEST(Svg, MapRendersLayersAndGraticule) {
  MapLayer dots;
  dots.name = "probes";
  dots.lon_lat = {{8.68, 50.11}, {-74.01, 40.71}, {151.21, -33.87}};
  MapLayer diamonds;
  diamonds.name = "regions";
  diamonds.diamond = true;
  diamonds.lon_lat = {{103.82, 1.35}};
  const std::string svg = render_svg_map({dots, diamonds}, "Fig. 3");
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("probes (3)"), std::string::npos);
  EXPECT_NE(svg.find("regions (1)"), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);  // diamond marker
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  // Equirectangular: Frankfurt (lon 8.68) lands right of centre on an
  // 880px map -> cx around (8.68+180)/360*880 = 461.
  EXPECT_NE(svg.find("cx=\"461."), std::string::npos);
}

TEST(Svg, WriteTextFileRoundTrip) {
  const std::string path = "/tmp/shears_svg_test.svg";
  const std::string content = render_svg_cdf({ramp("x")}, {});
  ASSERT_TRUE(write_text_file(path, content));
  std::ifstream in(path);
  std::string read((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(read, content);
  std::remove(path.c_str());
  EXPECT_FALSE(write_text_file("/nonexistent-dir/x.svg", content));
}

}  // namespace
}  // namespace shears::report
