// The socket transport, tested three ways: differentially (a scripted
// request stream served over real TCP must produce byte-identical
// responses to the simulated transport, at oracle thread counts 1 and
// 8), under byte-stream torture (1-byte dribble, tiny-SO_SNDBUF partial
// writes), and against malicious peers (oversized lengths, corrupted
// magic, slowloris trickle, abrupt RST) — each attack confined to its
// own connection.
//
// Every test that needs a kernel socket probes for the capability first
// and skips (never fails) where the sandbox lacks socket(2).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "atlas/tags.hpp"
#include "front/frame.hpp"
#include "front/server.hpp"
#include "front/transport/blocking_client.hpp"
#include "front/transport/clock.hpp"
#include "front/transport/socket_server.hpp"
#include "geo/country.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

namespace shears::front {
namespace {

// ---------------------------------------------------------------- world

atlas::Probe make_probe(atlas::ProbeId id, const char* iso2,
                        net::AccessTechnology access) {
  atlas::Probe probe;
  probe.id = id;
  probe.country = geo::find_country(iso2);
  EXPECT_NE(probe.country, nullptr) << iso2;
  probe.endpoint.location = probe.country->site;
  probe.endpoint.tier = probe.country->tier;
  probe.endpoint.access = access;
  probe.environment = atlas::Environment::kHome;
  probe.tags = atlas::make_tags(access, atlas::Environment::kHome, true);
  return probe;
}

atlas::Measurement row(atlas::ProbeId probe, std::uint16_t region,
                       std::uint32_t tick, float min_ms) {
  atlas::Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.min_ms = min_ms;
  m.avg_ms = min_ms + 1.0f;
  m.max_ms = min_ms + 2.0f;
  m.sent = 3;
  m.received = 3;
  return m;
}

/// The FrontWorld fixture with a configurable oracle thread count — the
/// differential tests pin the socket path against thread counts 1 and 8.
struct World {
  topology::CloudRegistry registry;
  atlas::ProbeFleet fleet;
  serve::ColumnarStore store;
  serve::Oracle oracle;

  explicit World(int threads)
      : registry({topology::all_regions().data(),
                  topology::all_regions().data() + 1,
                  topology::all_regions().data() + 2}),
        fleet(atlas::ProbeFleet::from_probes({
            make_probe(0, "DE", net::AccessTechnology::kEthernet),
            make_probe(1, "DE", net::AccessTechnology::kLte),
            make_probe(2, "FR", net::AccessTechnology::kEthernet),
        })),
        store(&fleet, &registry, serve::StoreConfig{1}),
        oracle(&store,
               serve::OracleConfig{static_cast<std::size_t>(threads), {}}) {
    store.append(std::vector<atlas::Measurement>{
        row(0, 0, 0, 20.0f), row(0, 1, 0, 55.0f), row(1, 0, 0, 35.0f),
        row(2, 1, 0, 70.0f)});
    store.refresh();
  }
};

std::vector<std::uint8_t> request_bytes(std::uint64_t id,
                                        std::uint64_t client_id,
                                        const char* iso2,
                                        SimTime deadline_us = 0) {
  Request req;
  req.request_id = id;
  req.client_id = client_id;
  req.deadline_us = deadline_us;
  req.kind = serve::QueryKind::kBestRtt;
  req.country_iso2 = iso2;
  req.any_access = true;
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, req);
  return bytes;
}

/// Hand-rolls a frame with arbitrary header fields and a valid checksum.
std::vector<std::uint8_t> raw_frame(std::uint8_t version, std::uint8_t type,
                                    std::uint32_t claimed_length,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(kFrameMagic));
  out.push_back(static_cast<std::uint8_t>(kFrameMagic >> 8));
  out.push_back(version);
  out.push_back(type);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(claimed_length >> (8 * i)));
  }
  const std::uint32_t checksum = frame_checksum(version, type, payload);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Decodes every frame in a delivered byte buffer.
std::vector<FrameDecoder::Item> decode_all(
    const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  std::vector<FrameDecoder::Item> items;
  while (true) {
    FrameDecoder::Item item = decoder.next();
    if (item.status == DecodeStatus::kNeedMore) break;
    items.push_back(std::move(item));
  }
  return items;
}

std::size_t count_frames(const std::vector<std::uint8_t>& bytes,
                         FrameType type) {
  std::size_t n = 0;
  for (const auto& item : decode_all(bytes)) {
    if (item.status == DecodeStatus::kFrame && item.type == type) n += 1;
  }
  return n;
}

std::size_t count_errors(const std::vector<std::uint8_t>& bytes,
                         ErrorCode code) {
  std::size_t n = 0;
  for (const auto& item : decode_all(bytes)) {
    if (item.status != DecodeStatus::kFrame || item.type != FrameType::kError) {
      continue;
    }
    Error err;
    if (decode_error(item.payload, err) && err.code == code) n += 1;
  }
  return n;
}

// --------------------------------------------------- differential gate

/// One scripted arrival: `bytes` from `client` land at sim time `at`.
/// The same script drives both transports.
struct Event {
  SimTime at = 0;
  std::size_t client = 0;
  std::vector<std::uint8_t> bytes;
};

struct PathResult {
  std::vector<std::vector<std::uint8_t>> streams;  ///< per client
  FrontStats stats;
  bool drained = false;
};

/// The oracle side: the simulated transport, taking output at exactly
/// the same instants the socket path pumps.
PathResult run_sim(World& world, const FrontConfig& config,
                   std::size_t clients, const std::vector<Event>& script,
                   SimTime horizon) {
  FrontServer server(&world.oracle, &world.store, config);
  std::vector<ConnId> conns;
  conns.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    conns.push_back(server.connect(i));
  }
  PathResult result;
  result.streams.resize(clients);
  for (const Event& event : script) {
    server.submit(conns[event.client], event.bytes, event.at);
    for (std::size_t i = 0; i < clients; ++i) {
      const auto out = server.take_output(conns[i], event.at);
      result.streams[i].insert(result.streams[i].end(), out.begin(),
                               out.end());
    }
  }
  server.run_until(horizon);
  for (std::size_t i = 0; i < clients; ++i) {
    const auto out = server.take_output(conns[i], horizon);
    result.streams[i].insert(result.streams[i].end(), out.begin(), out.end());
  }
  result.stats = server.stats();
  result.drained = server.drained();
  return result;
}

/// The system under test: the same script over real TCP. ManualClock
/// pins every timestamp the session layer sees; auto_pump is off so
/// batch formation happens at scripted instants, not at whatever
/// granularity TCP delivered the bytes; events are serialized (each
/// one's bytes are fully ingested before the next send) so admission
/// order matches the script.
void run_socket(World& world, const FrontConfig& config, std::size_t clients,
                const std::vector<Event>& script, SimTime horizon,
                const std::vector<std::size_t>& expected_sizes,
                PathResult* result) {
  FrontServer server(&world.oracle, &world.store, config);
  ManualClock clock;
  TransportConfig tconfig;
  tconfig.auto_pump = false;
  SocketServer transport(&server, &clock, tconfig);
  const std::uint16_t port = transport.listen();

  std::vector<BlockingClient> socks(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    socks[i].connect(port);
    // Serialize accepts so accept-order client ids match the script's.
    for (int spin = 0; transport.connection_count() < i + 1; ++spin) {
      ASSERT_LT(spin, 5'000) << "accept #" << i << " never completed";
      (void)transport.poll(1'000);
    }
  }

  std::uint64_t sent_total = 0;
  for (const Event& event : script) {
    clock.advance_to(event.at);
    socks[event.client].send(event.bytes);
    sent_total += event.bytes.size();
    for (int spin = 0; transport.stats().bytes_in < sent_total; ++spin) {
      ASSERT_LT(spin, 5'000) << "bytes at t=" << event.at << " never arrived";
      (void)transport.poll(1'000);
    }
    transport.pump_session();
  }
  clock.advance_to(horizon);
  transport.pump_session();

  result->streams.resize(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    std::vector<std::uint8_t>& stream = result->streams[i];
    for (int spin = 0; stream.size() < expected_sizes[i]; ++spin) {
      ASSERT_LT(spin, 5'000) << "client " << i << " short-read: "
                             << stream.size() << " of " << expected_sizes[i]
                             << " bytes";
      const auto raw = socks[i].recv_some(20);
      if (raw.empty()) {
        ASSERT_FALSE(socks[i].eof()) << "client " << i;
        (void)transport.poll(1'000);  // flush anything owed on EPOLLOUT
        continue;
      }
      stream.insert(stream.end(), raw.begin(), raw.end());
    }
    // The socket path must not have sent anything the simulation did
    // not: after the expected bytes, the pipe is silent.
    const auto extra = socks[i].recv_some(20);
    EXPECT_TRUE(extra.empty()) << "client " << i << " over-delivered";
  }
  result->stats = server.stats();
  result->drained = server.drained();
}

/// Runs the script through both transports and requires byte-identical
/// per-connection response streams, identical session-layer stats, and
/// a drained server on both sides. `threads` varies the socket path's
/// oracle parallelism against the single-threaded golden run.
void expect_differential(const FrontConfig& config, std::size_t clients,
                         const std::vector<Event>& script, SimTime horizon,
                         int threads) {
  World golden_world(1);
  const PathResult golden =
      run_sim(golden_world, config, clients, script, horizon);

  World socket_world(threads);
  std::vector<std::size_t> expected_sizes;
  expected_sizes.reserve(clients);
  for (const auto& stream : golden.streams) {
    expected_sizes.push_back(stream.size());
  }
  PathResult got;
  run_socket(socket_world, config, clients, script, horizon, expected_sizes,
             &got);
  if (::testing::Test::HasFatalFailure()) return;

  for (std::size_t i = 0; i < clients; ++i) {
    EXPECT_EQ(got.streams[i], golden.streams[i])
        << "client " << i << " diverged (threads=" << threads << ")";
  }
  EXPECT_EQ(got.stats, golden.stats) << "threads=" << threads;
  EXPECT_TRUE(golden.drained);
  EXPECT_TRUE(got.drained);
}

TEST(FrontTransportDifferential, UncontendedStreamMatchesSimulation) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  FrontConfig config;
  std::vector<Event> script;
  const char* iso[3] = {"DE", "FR", "DE"};
  std::uint64_t id = 1;
  for (SimTime t = 1'000; t <= 12'000; t += 1'000) {
    const std::size_t client = (t / 1'000) % 3;
    script.push_back({t, client, request_bytes(id++, client, iso[client])});
  }
  for (const int threads : {1, 8}) {
    expect_differential(config, 3, script, 1'000'000, threads);
  }
}

TEST(FrontTransportDifferential, OverloadAndDeadlinesMatchSimulation) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  FrontConfig config;
  config.queue_capacity = 3;
  config.max_batch = 2;
  config.batch_overhead_us = 2'000;  // slow service: the queue backs up
  config.default_deadline_us = 6'000;
  std::vector<Event> script;
  std::uint64_t id = 1;
  // A same-instant burst far beyond the queue: sheds at the door, then
  // deadline expiries for the tail that got in but cannot be served.
  for (int burst = 0; burst < 10; ++burst) {
    script.push_back({1'000, static_cast<std::size_t>(burst % 2),
                      request_bytes(id++, burst % 2, "DE", 7'000)});
  }
  script.push_back({30'000, 0, request_bytes(id++, 0, "FR")});
  for (const int threads : {1, 8}) {
    expect_differential(config, 2, script, 1'000'000, threads);
  }
}

TEST(FrontTransportDifferential, ThrottledClientMatchesSimulation) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  FrontConfig config;
  config.client_rate_qps = 10;
  config.client_burst = 1;
  std::vector<Event> script;
  std::uint64_t id = 1;
  // Client 0 hammers far past its bucket; client 1 stays polite.
  for (int k = 0; k < 8; ++k) {
    script.push_back(
        {2'000 + static_cast<SimTime>(k), 0, request_bytes(id++, 0, "DE")});
  }
  script.push_back({5'000, 1, request_bytes(id++, 1, "FR")});
  for (const int threads : {1, 8}) {
    expect_differential(config, 2, script, 1'000'000, threads);
  }
}

TEST(FrontTransportDifferential, DecodeDamageMatchesSimulation) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  FrontConfig config;
  std::vector<Event> script;
  script.push_back({1'000, 0, request_bytes(1, 0, "DE")});
  // A corrupted frame (payload bit flip breaks the checksum) between
  // two valid ones: the damage must cost exactly one frame on both
  // transports.
  std::vector<std::uint8_t> damaged = request_bytes(2, 0, "DE");
  damaged.back() ^= 0xff;
  script.push_back({2'000, 0, std::move(damaged)});
  // Client 1 interleaves raw garbage and then a valid frame: resync.
  script.push_back({2'500, 1, {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}});
  script.push_back({3'000, 0, request_bytes(3, 0, "DE")});
  script.push_back({4'000, 1, request_bytes(4, 1, "FR")});
  for (const int threads : {1, 8}) {
    expect_differential(config, 2, script, 1'000'000, threads);
  }
}

// ------------------------------------------------------------- torture

/// Polls the transport until `done` or the spin budget dies.
template <typename Pred>
void poll_until(SocketServer& transport, Pred done, const char* what) {
  for (int spin = 0; !done(); ++spin) {
    ASSERT_LT(spin, 10'000) << what;
    (void)transport.poll(1'000);
  }
}

TEST(FrontTransportTorture, OneByteDribbleReassemblesEveryFrame) {
  if (!socketpair_available()) GTEST_SKIP() << "no socketpair here";
  World world(1);
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  ManualClock clock;
  SocketServer transport(&server, &clock, TransportConfig{});

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  (void)transport.adopt(fds[0], 7);
  BlockingClient client;
  client.adopt(fds[1]);

  constexpr int kRequests = 5;
  std::vector<std::uint8_t> wire;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    const auto frame = request_bytes(id, 7, id % 2 == 0 ? "DE" : "FR");
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  // One byte per send: every frame crosses the transport in ~40 pieces
  // and must reassemble exactly once — no drop, no duplicate.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    client.send(std::span<const std::uint8_t>(&wire[i], 1));
    poll_until(
        transport,
        [&] { return transport.stats().bytes_in >= i + 1; },
        "dribbled byte never arrived");
    if (HasFatalFailure()) return;
  }
  clock.advance_by(1'000'000);
  transport.pump_session();

  EXPECT_EQ(server.stats().frames_in, kRequests);
  EXPECT_EQ(server.stats().decode_errors, 0u);
  std::vector<std::uint8_t> responses;
  while (responses.size() < kRequests * kFrameHeaderBytes) {
    const auto raw = client.recv_some(2'000);
    ASSERT_FALSE(raw.empty() && client.eof()) << "server closed early";
    ASSERT_FALSE(raw.empty()) << "response timeout";
    responses.insert(responses.end(), raw.begin(), raw.end());
    if (count_frames(responses, FrameType::kResponse) == kRequests) break;
  }
  EXPECT_EQ(count_frames(responses, FrameType::kResponse), kRequests);
}

TEST(FrontTransportTorture, TinySendBufferForcesPartialWrites) {
  if (!socketpair_available()) GTEST_SKIP() << "no socketpair here";
  World world(1);
  FrontConfig fconfig;
  fconfig.queue_capacity = 4096;
  FrontServer server(&world.oracle, &world.store, fconfig);
  ManualClock clock;
  TransportConfig tconfig;
  tconfig.write_high_watermark = 8u << 20;  // shed must NOT fire here
  SocketServer transport(&server, &clock, tconfig);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Starve the server side's send buffer so flushes hit EAGAIN while
  // the client is not reading. (The kernel clamps to its floor — a few
  // KB — so the response volume below must comfortably exceed it.)
  const int tiny = 1;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)),
            0);
  (void)transport.adopt(fds[0], 7);
  BlockingClient client;
  client.adopt(fds[1]);

  constexpr int kRequests = 600;
  std::vector<std::uint8_t> wire;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    const auto frame = request_bytes(id, 7, "DE");
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  client.send(wire);
  poll_until(
      transport,
      [&] { return transport.stats().bytes_in >= wire.size(); },
      "requests never arrived");
  if (HasFatalFailure()) return;
  clock.advance_by(10'000'000);
  transport.pump_session();
  ASSERT_EQ(server.stats().answered, kRequests);
  EXPECT_GT(transport.stats().partial_writes, 0u)
      << "send buffer never filled; the partial-write path went untested";
  EXPECT_EQ(transport.stats().shed_highwater, 0u);

  // Now read slowly; EPOLLOUT must flush the backlog without dropping,
  // duplicating, or reordering a single frame.
  std::vector<std::uint8_t> responses;
  for (int spin = 0;
       count_frames(responses, FrameType::kResponse) < kRequests; ++spin) {
    ASSERT_LT(spin, 10'000) << "backlog never flushed";
    const auto raw = client.recv_some(50);
    if (raw.empty()) {
      ASSERT_FALSE(client.eof()) << "server closed mid-backlog";
      (void)transport.poll(1'000);
      continue;
    }
    responses.insert(responses.end(), raw.begin(), raw.end());
  }
  EXPECT_EQ(count_frames(responses, FrameType::kResponse), kRequests);
  // Stream integrity: all frames decoded cleanly, in request-id order.
  std::uint64_t expect_id = 1;
  for (const auto& item : decode_all(responses)) {
    ASSERT_EQ(item.status, DecodeStatus::kFrame);
    Response res;
    ASSERT_TRUE(decode_response(item.payload, res));
    EXPECT_EQ(res.request_id, expect_id++);
  }
}

// ----------------------------------------------------- malicious peers

TEST(FrontTransportMalicious, OversizedLengthResyncsAndServesOn) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  World world(1);
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  ManualClock clock;
  SocketServer transport(&server, &clock, TransportConfig{});
  const std::uint16_t port = transport.listen();

  BlockingClient attacker;
  attacker.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 1; },
      "attacker accept");
  BlockingClient victim;
  victim.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 2; },
      "victim accept");
  if (HasFatalFailure()) return;

  // A header advertising 16 MB must not allocate 16 MB or stall the
  // decoder: it costs one header's worth of resync, then the valid
  // frame behind it is served.
  std::vector<std::uint8_t> attack = raw_frame(
      kProtocolVersion, static_cast<std::uint8_t>(FrameType::kRequest),
      16u << 20, {});
  const auto good = request_bytes(1, 0, "DE");
  attack.insert(attack.end(), good.begin(), good.end());
  attacker.send(attack);
  victim.send(request_bytes(2, 1, "FR"));

  // The victim's frame is the same size as `good` (equal-length bodies).
  const std::size_t total = attack.size() + good.size();
  poll_until(
      transport, [&] { return transport.stats().bytes_in >= total; },
      "attack bytes");
  if (HasFatalFailure()) return;
  clock.advance_by(1'000'000);
  transport.pump_session();

  EXPECT_GE(server.stats().decode_errors, 1u);
  EXPECT_EQ(server.stats().answered, 2u);
  EXPECT_EQ(transport.connection_count(), 2u);
  for (BlockingClient* c : {&attacker, &victim}) {
    std::vector<std::uint8_t> got;
    while (count_frames(got, FrameType::kResponse) < 1) {
      const auto raw = c->recv_some(2'000);
      ASSERT_FALSE(raw.empty()) << "no response";
      got.insert(got.end(), raw.begin(), raw.end());
    }
  }
}

TEST(FrontTransportMalicious, CorruptedMagicMidStreamResyncs) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  World world(1);
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  ManualClock clock;
  SocketServer transport(&server, &clock, TransportConfig{});
  const std::uint16_t port = transport.listen();

  BlockingClient peer;
  peer.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 1; }, "accept");
  if (HasFatalFailure()) return;

  // valid | garbage torn from a frame whose magic got stomped | valid:
  // the decoder must resync to the second valid frame's magic.
  std::vector<std::uint8_t> wire = request_bytes(1, 0, "DE");
  auto stomped = request_bytes(99, 0, "FR");
  stomped[0] ^= 0xff;  // no longer starts with kFrameMagic
  wire.insert(wire.end(), stomped.begin(), stomped.end());
  const auto good = request_bytes(2, 0, "DE");
  wire.insert(wire.end(), good.begin(), good.end());
  peer.send(wire);

  poll_until(
      transport, [&] { return transport.stats().bytes_in >= wire.size(); },
      "stream");
  if (HasFatalFailure()) return;
  clock.advance_by(1'000'000);
  transport.pump_session();

  EXPECT_EQ(server.stats().frames_in, 2u);
  EXPECT_EQ(server.stats().answered, 2u);
  EXPECT_EQ(transport.connection_count(), 1u);
}

TEST(FrontTransportMalicious, SlowlorisTrickleHitsIdleTimeoutAlone) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  World world(1);
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  ManualClock clock;
  TransportConfig tconfig;
  tconfig.idle_timeout_us = 1'000'000;
  SocketServer transport(&server, &clock, tconfig);
  const std::uint16_t port = transport.listen();

  BlockingClient slow;
  slow.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 1; },
      "slow accept");
  BlockingClient honest;
  honest.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 2; },
      "honest accept");
  if (HasFatalFailure()) return;

  // The slowloris shape: three header bytes, then hold the fd open.
  const std::uint8_t trickle[3] = {
      static_cast<std::uint8_t>(kFrameMagic),
      static_cast<std::uint8_t>(kFrameMagic >> 8), kProtocolVersion};
  slow.send(trickle);
  poll_until(
      transport, [&] { return transport.stats().bytes_in >= 3; }, "trickle");
  if (HasFatalFailure()) return;

  // 900 ms later the honest client transacts normally — its read
  // refreshes its idle anchor; the slowloris fd stays silent.
  clock.advance_to(900'000);
  const auto good = request_bytes(1, 1, "DE");
  honest.send(good);
  poll_until(
      transport,
      [&] { return transport.stats().bytes_in >= 3 + good.size(); },
      "honest request");
  if (HasFatalFailure()) return;
  transport.pump_session();
  EXPECT_EQ(server.stats().answered, 1u);

  // At 1.1 s the slow fd has been idle past the timeout; the honest one
  // is 200 ms fresh. Exactly one connection dies.
  clock.advance_to(1'100'000);
  (void)transport.poll(0);
  EXPECT_EQ(transport.stats().idle_closed, 1u);
  EXPECT_EQ(transport.connection_count(), 1u);
  poll_until(
      transport, [&] { return slow.recv_some(10).empty() && slow.eof(); },
      "slowloris close");
  if (HasFatalFailure()) return;

  // The survivor keeps being served.
  honest.send(request_bytes(2, 1, "FR"));
  poll_until(
      transport,
      [&] { return transport.stats().bytes_in >= 3 + 2 * good.size(); },
      "second honest request");
  if (HasFatalFailure()) return;
  // Jump past the batch's completion so its response frame is released.
  clock.advance_by(1'000'000);
  transport.pump_session();
  EXPECT_EQ(server.stats().answered, 2u);
  std::vector<std::uint8_t> got;
  while (count_frames(got, FrameType::kResponse) < 2) {
    const auto raw = honest.recv_some(2'000);
    ASSERT_FALSE(raw.empty()) << "honest client starved";
    got.insert(got.end(), raw.begin(), raw.end());
  }
}

TEST(FrontTransportMalicious, AbruptResetIsConfinedToOneConnection) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  World world(1);
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  ManualClock clock;
  SocketServer transport(&server, &clock, TransportConfig{});
  const std::uint16_t port = transport.listen();

  BlockingClient rude;
  rude.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 1; },
      "rude accept");
  BlockingClient polite;
  polite.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 2; },
      "polite accept");
  if (HasFatalFailure()) return;

  // The rude peer fires a request and slams the door (SO_LINGER(0) →
  // RST) without reading its response. Whether the RST lands before or
  // after the request is read, the close must surface as reset_by_peer
  // on that connection only.
  rude.send(request_bytes(1, 0, "DE"));
  rude.reset();
  poll_until(
      transport, [&] { return transport.stats().reset_by_peer >= 1; },
      "reset never surfaced");
  if (HasFatalFailure()) return;
  EXPECT_EQ(transport.connection_count(), 1u);

  clock.advance_by(1'000'000);
  const auto good = request_bytes(2, 1, "FR");
  const std::uint64_t seen = transport.stats().bytes_in;
  polite.send(good);
  poll_until(
      transport,
      [&] { return transport.stats().bytes_in >= seen + good.size(); },
      "polite request never arrived");
  if (HasFatalFailure()) return;
  // Jump past the batch's completion so its response frame is released.
  clock.advance_by(1'000'000);
  transport.pump_session();
  EXPECT_GE(server.stats().answered, 1u);
  std::vector<std::uint8_t> got;
  while (count_frames(got, FrameType::kResponse) < 1) {
    const auto raw = polite.recv_some(2'000);
    ASSERT_FALSE(raw.empty()) << "polite client starved";
    got.insert(got.end(), raw.begin(), raw.end());
  }
  EXPECT_EQ(count_errors(got, ErrorCode::kBadRequest), 0u);
}

// --------------------------------------------------------------- drain

TEST(FrontTransport, GracefulDrainFlushesEverythingThenCloses) {
  if (!sockets_available()) GTEST_SKIP() << "no loopback sockets here";
  World world(1);
  FrontServer server(&world.oracle, &world.store, FrontConfig{});
  MonotonicClock clock;  // drain needs real time: batches must complete
  SocketServer transport(&server, &clock, TransportConfig{});
  const std::uint16_t port = transport.listen();

  BlockingClient a;
  a.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 1; },
      "accept a");
  BlockingClient b;
  b.connect(port);
  poll_until(
      transport, [&] { return transport.connection_count() == 2; },
      "accept b");
  if (HasFatalFailure()) return;

  std::size_t wire_bytes = 0;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const auto req_a = request_bytes(id, 0, "DE");
    const auto req_b = request_bytes(100 + id, 1, "FR");
    a.send(req_a);
    b.send(req_b);
    wire_bytes += req_a.size() + req_b.size();
  }
  // Make sure every request reached the server before draining — drain
  // means "finish what you have", not "guess what is still in the
  // kernel's buffers".
  poll_until(
      transport, [&] { return transport.stats().bytes_in >= wire_bytes; },
      "requests never arrived");
  if (HasFatalFailure()) return;
  // Drain from here on: the loop must finish the queued batches, flush
  // both outboxes, close both connections, and return.
  transport.request_drain();
  transport.run();

  EXPECT_TRUE(transport.drained());
  EXPECT_TRUE(server.drained());
  EXPECT_EQ(transport.connection_count(), 0u);
  EXPECT_EQ(server.stats().answered, 8u);
  EXPECT_EQ(transport.stats().closed, 2u);

  // Every response was flushed before the close: each client reads 4
  // whole responses, then a clean EOF.
  for (BlockingClient* c : {&a, &b}) {
    std::vector<std::uint8_t> got;
    while (!c->eof()) {
      const auto raw = c->recv_some(2'000);
      if (raw.empty() && !c->eof()) break;
      got.insert(got.end(), raw.begin(), raw.end());
    }
    EXPECT_TRUE(c->eof());
    EXPECT_EQ(count_frames(got, FrameType::kResponse), 4u);
  }
}

}  // namespace
}  // namespace shears::front
