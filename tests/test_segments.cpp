// Tests for the path-segment decomposition and traceroute semantics
// behind §4.3's "Where is the Delay?".
#include <gtest/gtest.h>

#include "geo/country.hpp"
#include "net/segments.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace shears::net {
namespace {

const topology::CloudRegion* region_by_id(std::string_view id) {
  for (const topology::CloudRegion& r : topology::all_regions()) {
    if (r.region_id == id) return &r;
  }
  return nullptr;
}

Endpoint endpoint_in(std::string_view iso2, AccessTechnology access) {
  const geo::Country* c = geo::find_country(iso2);
  EXPECT_NE(c, nullptr);
  return {c->site, c->tier, access};
}

TEST(Segments, DecompositionSumsToBaseline) {
  const LatencyModel model;
  for (const char* iso2 : {"DE", "BR", "TD", "JP"}) {
    for (const AccessTechnology access :
         {AccessTechnology::kEthernet, AccessTechnology::kLte}) {
      const Endpoint src = endpoint_in(iso2, access);
      for (const char* region_id : {"eu-central-1", "nyc1"}) {
        const auto* region = region_by_id(region_id);
        ASSERT_NE(region, nullptr);
        const SegmentBreakdown breakdown = decompose_path(model, src, *region);
        EXPECT_NEAR(breakdown.total(), model.baseline_rtt_ms(src, *region),
                    1e-9)
            << iso2 << " -> " << region_id;
      }
    }
  }
}

TEST(Segments, AllSegmentsNonNegative) {
  const LatencyModel model;
  const Endpoint src = endpoint_in("KE", AccessTechnology::kDsl);
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  const SegmentBreakdown breakdown = decompose_path(model, src, *region);
  for (const double v : breakdown.ms) EXPECT_GE(v, 0.0);
  EXPECT_NEAR(breakdown.share(PathSegment::kLastMile) +
                  breakdown.share(PathSegment::kAccessNetwork) +
                  breakdown.share(PathSegment::kTransit) +
                  breakdown.share(PathSegment::kPeeringOrBackbone) +
                  breakdown.share(PathSegment::kDatacenter),
              1.0, 1e-9);
}

TEST(Segments, WirelessLastMileDominatesShortPaths) {
  // §4.3 finding two: for a wireless user near a datacenter, the last
  // mile is the bottleneck.
  const LatencyModel model;
  const Endpoint lte = endpoint_in("DE", AccessTechnology::kLte);
  const auto* fra = region_by_id("eu-central-1");
  ASSERT_NE(fra, nullptr);
  const SegmentBreakdown breakdown = decompose_path(model, lte, *fra);
  EXPECT_GT(breakdown.share(PathSegment::kLastMile), 0.5);
}

TEST(Segments, TransitDominatesUnderServedPaths) {
  // §4.3 finding one: for an under-served country reaching a remote
  // continent, the stretched transit dominates.
  const LatencyModel model;
  const Endpoint chad = endpoint_in("TD", AccessTechnology::kEthernet);
  const auto* fra = region_by_id("eu-central-1");
  ASSERT_NE(fra, nullptr);
  const SegmentBreakdown breakdown = decompose_path(model, chad, *fra);
  EXPECT_GT(breakdown.share(PathSegment::kTransit), 0.6);
}

TEST(Segments, PublicTransitShowsPeeringShare) {
  const LatencyModel model;
  const Endpoint src = endpoint_in("FR", AccessTechnology::kFibre);
  const auto* pub = region_by_id("fra1");         // Digital Ocean, public
  const auto* priv = region_by_id("eu-central-1");  // AWS, private
  ASSERT_NE(pub, nullptr);
  ASSERT_NE(priv, nullptr);
  EXPECT_GT(decompose_path(model, src, *pub)[PathSegment::kPeeringOrBackbone],
            0.0);
  EXPECT_DOUBLE_EQ(
      decompose_path(model, src, *priv)[PathSegment::kPeeringOrBackbone], 0.0);
}

TEST(Traceroute, HopsAreOrderedAndMonotone) {
  const LatencyModel model;
  const Endpoint src = endpoint_in("ES", AccessTechnology::kCable);
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(99);
  const auto hops = traceroute(model, src, *region, rng);
  ASSERT_GE(hops.size(), 6u);  // cpe + 3 metro + >=1 transit + peer + dc
  int prev_ttl = 0;
  double prev_rtt = 0.0;
  unsigned char prev_segment = 0;
  for (const TracerouteHop& hop : hops) {
    EXPECT_EQ(hop.ttl, prev_ttl + 1);
    prev_ttl = hop.ttl;
    EXPECT_GE(static_cast<unsigned char>(hop.segment), prev_segment);
    prev_segment = static_cast<unsigned char>(hop.segment);
    if (hop.responded) {
      EXPECT_GE(hop.rtt_ms, prev_rtt);
      prev_rtt = hop.rtt_ms;
    }
    EXPECT_FALSE(hop.label.empty());
  }
  EXPECT_EQ(hops.front().segment, PathSegment::kLastMile);
  EXPECT_EQ(hops.back().segment, PathSegment::kDatacenter);
}

TEST(Traceroute, LongPathsHaveMoreHops) {
  const LatencyModel model;
  const Endpoint src = endpoint_in("DE", AccessTechnology::kEthernet);
  const auto* near = region_by_id("eu-central-1");
  const auto* far = region_by_id("ap-northeast-1");
  ASSERT_NE(near, nullptr);
  ASSERT_NE(far, nullptr);
  stats::Xoshiro256 rng(7);
  const auto near_hops = traceroute(model, src, *near, rng);
  const auto far_hops = traceroute(model, src, *far, rng);
  EXPECT_GT(far_hops.size(), near_hops.size());
}

TEST(Traceroute, FinalHopNearPingBaseline) {
  const LatencyModel model;
  const Endpoint src = endpoint_in("GB", AccessTechnology::kFibre);
  const auto* region = region_by_id("eu-west-2");
  ASSERT_NE(region, nullptr);
  const double baseline = model.baseline_rtt_ms(src, *region);
  stats::Xoshiro256 rng(3);
  // Average the last responded hop over several traces.
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < 200; ++i) {
    const auto hops = traceroute(model, src, *region, rng);
    for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
      if (it->responded) {
        sum += it->rtt_ms;
        ++n;
        break;
      }
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(sum / n, baseline, baseline * 0.25);
}

TEST(Traceroute, SomeHopsGoSilent) {
  const LatencyModel model;
  const Endpoint src = endpoint_in("US", AccessTechnology::kEthernet);
  const auto* region = region_by_id("us-east-1");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(11);
  std::size_t silent = 0;
  std::size_t total = 0;
  for (int i = 0; i < 300; ++i) {
    for (const TracerouteHop& hop : traceroute(model, src, *region, rng)) {
      ++total;
      silent += !hop.responded;
    }
  }
  EXPECT_GT(silent, 0u);
  EXPECT_LT(silent, total / 4);
}

}  // namespace
}  // namespace shears::net
