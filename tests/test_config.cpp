// Tests for the INI reader and scenario loader.
#include <gtest/gtest.h>

#include <fstream>

#include "config/ini.hpp"
#include "config/scenario.hpp"
#include "stats/rng.hpp"

namespace shears::config {
namespace {

TEST(Ini, ParsesSectionsKeysAndComments) {
  const IniFile ini = IniFile::parse_string(
      "top = 1\n"
      "# comment line\n"
      "[alpha]\n"
      "key = value with spaces   ; trailing comment\n"
      "num=42\n"
      "\n"
      "[Beta]\n"
      "flag = TRUE\n");
  EXPECT_EQ(ini.get_string("", "top", ""), "1");
  EXPECT_EQ(ini.get_string("alpha", "key", ""), "value with spaces");
  EXPECT_EQ(ini.get_int("alpha", "num", 0), 42);
  EXPECT_TRUE(ini.get_bool("beta", "flag", false));  // case-insensitive
}

TEST(Ini, FallbacksWhenAbsent) {
  const IniFile ini = IniFile::parse_string("");
  EXPECT_EQ(ini.get_string("a", "b", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(ini.get_double("a", "b", 2.5), 2.5);
  EXPECT_EQ(ini.get_int("a", "b", -3), -3);
  EXPECT_FALSE(ini.get_bool("a", "b", false));
}

TEST(Ini, RejectsMalformedInput) {
  EXPECT_THROW(IniFile::parse_string("[unclosed\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse_string("no equals sign\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse_string("= novalue\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse_string("a=1\na=2\n"), std::runtime_error);
}

TEST(Ini, RejectsBadTypedValues) {
  const IniFile ini = IniFile::parse_string("x = 12abc\ny = maybe\n");
  EXPECT_THROW((void)ini.get_double("", "x", 0.0), std::runtime_error);
  EXPECT_THROW((void)ini.get_int("", "x", 0), std::runtime_error);
  EXPECT_THROW((void)ini.get_bool("", "y", false), std::runtime_error);
}

TEST(Ini, ListsSplitOnCommas) {
  const IniFile ini = IniFile::parse_string("l = a, b ,c\nempty =\n");
  const auto list = ini.get_list("", "l");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[1], "b");
  EXPECT_EQ(list[2], "c");
  EXPECT_TRUE(ini.get_list("", "empty").empty());
  EXPECT_TRUE(ini.get_list("", "missing").empty());
}

TEST(Ini, RequireOnlyFlagsTypos) {
  const IniFile ini = IniFile::parse_string("[fleet]\nprobse = 10\n");
  EXPECT_THROW(ini.require_only({"fleet.probes"}), std::runtime_error);
  EXPECT_NO_THROW(ini.require_only({"fleet.probse"}));
}

TEST(Scenario, DefaultsRoundTrip) {
  // The generated default text must parse back to the default scenario.
  const Scenario s = parse_scenario_string(default_scenario_text());
  const Scenario d;
  EXPECT_EQ(s.fleet.probe_count, d.fleet.probe_count);
  EXPECT_EQ(s.campaign.duration_days, d.campaign.duration_days);
  EXPECT_DOUBLE_EQ(s.model.wireless_latency_scale,
                   d.model.wireless_latency_scale);
  EXPECT_DOUBLE_EQ(s.model.path.fibre_us_per_km, d.model.path.fibre_us_per_km);
  EXPECT_EQ(s.footprint_year, 0);
  EXPECT_TRUE(s.providers.empty());
}

TEST(Scenario, OverridesApply) {
  const Scenario s = parse_scenario_string(
      "name = sweep-5g\n"
      "[fleet]\nprobes = 800\nseed = 9\n"
      "[campaign]\ndays = 12\nuptime = 0.9\n"
      "[model]\nwireless_scale = 0.25\n"
      "[footprint]\nyear = 2016\nproviders = Amazon, Vultr\n");
  EXPECT_EQ(s.name, "sweep-5g");
  EXPECT_EQ(s.fleet.probe_count, 800u);
  EXPECT_EQ(s.campaign.duration_days, 12);
  EXPECT_DOUBLE_EQ(s.campaign.probe_uptime, 0.9);
  EXPECT_DOUBLE_EQ(s.model.wireless_latency_scale, 0.25);
  EXPECT_EQ(s.footprint_year, 2016);
  ASSERT_EQ(s.providers.size(), 2u);
  EXPECT_EQ(s.providers[0], topology::CloudProvider::kAmazon);
  EXPECT_EQ(s.providers[1], topology::CloudProvider::kVultr);
}

TEST(Scenario, FaultAndResilienceKeysApply) {
  const Scenario s = parse_scenario_string(
      "[faults]\nseed = 5\nepoch_ticks = 28\nregion_outage_rate = 0.1\n"
      "route_flap_rate = 0.2\nroute_flap_multiplier = 2.5\n"
      "storm_rate = 0.3\nstorm_wireless_only = false\n"
      "clock_skew_rate = 0.05\nclock_skew_ms = 40\nblackout_rate = 0.01\n"
      "[resilience]\nmax_retries = 3\nbackoff_cap_ticks = 4\n"
      "quarantine = true\nquarantine_window = 8\n"
      "quarantine_loss_threshold = 0.75\nquarantine_cooldown_ticks = 24\n");
  EXPECT_EQ(s.faults.seed, 5u);
  EXPECT_EQ(s.faults.epoch_ticks, 28u);
  EXPECT_DOUBLE_EQ(s.faults.region_outage_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.faults.route_flap_rate, 0.2);
  EXPECT_DOUBLE_EQ(s.faults.route_flap_latency_multiplier, 2.5);
  EXPECT_DOUBLE_EQ(s.faults.storm_rate, 0.3);
  EXPECT_FALSE(s.faults.storm_wireless_only);
  EXPECT_DOUBLE_EQ(s.faults.clock_skew_ms, 40.0);
  EXPECT_EQ(s.campaign.retry.max_retries, 3);
  EXPECT_EQ(s.campaign.retry.backoff_cap_ticks, 4u);
  EXPECT_TRUE(s.campaign.quarantine.enabled);
  EXPECT_EQ(s.campaign.quarantine.window_bursts, 8);
  EXPECT_DOUBLE_EQ(s.campaign.quarantine.loss_threshold, 0.75);
  EXPECT_EQ(s.campaign.quarantine.cooldown_ticks, 24u);
  EXPECT_FALSE(s.make_fault_schedule().empty());
}

TEST(Scenario, DefaultFaultScheduleIsEmpty) {
  const Scenario s = parse_scenario_string("");
  EXPECT_FALSE(s.faults.any_rate());
  EXPECT_TRUE(s.make_fault_schedule().empty());
  EXPECT_EQ(s.campaign.retry.max_retries, 0);
  EXPECT_FALSE(s.campaign.quarantine.enabled);
}

TEST(Scenario, RejectsOutOfRangeFaultAndResilienceValues) {
  EXPECT_THROW(parse_scenario_string("[faults]\nstorm_rate = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_scenario_string("[faults]\nroute_flap_multiplier = 0.5\n"),
      std::runtime_error);
  EXPECT_THROW(parse_scenario_string("[resilience]\nmax_retries = -1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string(
                   "[resilience]\nquarantine = true\nquarantine_window = 1\n"),
               std::runtime_error);
}

TEST(Scenario, MakeRegistryRespectsYearAndProviders) {
  Scenario s;
  s.footprint_year = 2012;
  EXPECT_EQ(s.make_registry().size(),
            topology::CloudRegistry::footprint_as_of(2012).size());
  s.providers = {topology::CloudProvider::kAmazon};
  const auto aws_2012 = s.make_registry();
  EXPECT_GT(aws_2012.size(), 0u);
  for (const topology::CloudRegion* r : aws_2012.regions()) {
    EXPECT_EQ(r->provider, topology::CloudProvider::kAmazon);
    EXPECT_LE(r->launch_year, 2012);
  }
}

TEST(Scenario, RejectsUnknownKeysAndProviders) {
  EXPECT_THROW(parse_scenario_string("[fleet]\nprobse = 10\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string("[footprint]\nproviders = Initech\n"),
               std::runtime_error);
}

TEST(Scenario, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse_scenario_string("[campaign]\ndays = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string("[campaign]\nuptime = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string("[model]\nwireless_scale = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string("[path]\nfibre_us_per_km = 1.0\n"),
               std::runtime_error);  // faster than light in fibre
}

TEST(Scenario, SnapshotKeysApply) {
  const Scenario s = parse_scenario_string(
      "[snapshot]\n"
      "path = store.snap\n"
      "delta = store.delta\n"
      "mode = mmap\n"
      "lazy = true\n"
      "compact = true\n");
  EXPECT_EQ(s.snapshot.path, "store.snap");
  EXPECT_EQ(s.snapshot.delta, "store.delta");
  EXPECT_EQ(s.snapshot.mode, "mmap");
  EXPECT_TRUE(s.snapshot.lazy);
  EXPECT_TRUE(s.snapshot.compact);

  // Defaults: persistence off, buffered read, eager summaries.
  const Scenario d = parse_scenario_string("");
  EXPECT_TRUE(d.snapshot.path.empty());
  EXPECT_TRUE(d.snapshot.delta.empty());
  EXPECT_EQ(d.snapshot.mode, "read");
  EXPECT_FALSE(d.snapshot.lazy);
  EXPECT_FALSE(d.snapshot.compact);
}

TEST(Scenario, RejectsBadSnapshotConfig) {
  EXPECT_THROW(parse_scenario_string("[snapshot]\nmode = eager\n"),
               std::runtime_error);
  // A delta log without a base snapshot has nothing to key itself to.
  EXPECT_THROW(parse_scenario_string("[snapshot]\ndelta = x.delta\n"),
               std::runtime_error);
}

TEST(Scenario, ShippedScenarioFilesParse) {
  // Every file in scenarios/ must parse and validate.
  const std::string dir = std::string(SHEARS_SOURCE_DIR) + "/scenarios/";
  const char* files[] = {
      "paper_9_months.ini",   "five_g_delivers.ini",
      "cloud_2014.ini",       "hyperscalers_only.ini",
      "stress_noisy_network.ini", "faulted_9_months.ini",
  };
  for (const char* file : files) {
    std::ifstream in(dir + file);
    ASSERT_TRUE(in.good()) << dir + file;
    EXPECT_NO_THROW({
      const Scenario s = parse_scenario(in);
      EXPECT_FALSE(s.make_registry().empty()) << file;
    }) << file;
  }
}

TEST(Ini, FuzzNeverCrashesOnlyThrows) {
  // Random byte soup must either parse or throw -- never crash or hang.
  stats::Xoshiro256 rng(4242);
  const char alphabet[] = "ab[]=#; \t\n0123.j{}\"'%";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng.bounded(200);
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[rng.bounded(sizeof(alphabet) - 1)];
    }
    try {
      const IniFile ini = IniFile::parse_string(text);
      (void)ini.keys();
    } catch (const std::runtime_error&) {
      // expected for malformed soup
    }
  }
}

}  // namespace
}  // namespace shears::config
