// Integration tests: the full pipeline (fleet → campaign → analyses) must
// reproduce the *shape* of every §4 figure. These assertions encode the
// paper's published numbers with tolerances wide enough for seed noise but
// tight enough to catch calibration regressions.
#include <gtest/gtest.h>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/access_comparison.hpp"
#include "core/analysis.hpp"
#include "core/feasibility.hpp"
#include "net/latency_model.hpp"
#include "stats/ecdf.hpp"
#include "topology/registry.hpp"

namespace shears::core {
namespace {

using geo::Continent;

/// One shared campaign for the whole suite (30 days, full fleet).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new atlas::ProbeFleet(atlas::ProbeFleet::generate({}));
    registry_ = new topology::CloudRegistry(
        topology::CloudRegistry::campaign_footprint());
    model_ = new net::LatencyModel();
    atlas::CampaignConfig config;
    config.duration_days = 30;
    dataset_ = new atlas::MeasurementDataset(
        atlas::Campaign(*fleet_, *registry_, *model_, config).run());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete registry_;
    registry_ = nullptr;
    delete fleet_;
    fleet_ = nullptr;
  }

  static const std::vector<double>& continent_mins(Continent c) {
    static const auto by_continent = min_rtt_by_continent(*dataset_);
    return by_continent[geo::index_of(c)];
  }

  static const std::vector<double>& continent_samples(Continent c) {
    static const auto by_continent =
        best_region_samples_by_continent(*dataset_);
    return by_continent[geo::index_of(c)];
  }

  static atlas::ProbeFleet* fleet_;
  static topology::CloudRegistry* registry_;
  static net::LatencyModel* model_;
  static atlas::MeasurementDataset* dataset_;
};

atlas::ProbeFleet* IntegrationTest::fleet_ = nullptr;
topology::CloudRegistry* IntegrationTest::registry_ = nullptr;
net::LatencyModel* IntegrationTest::model_ = nullptr;
atlas::MeasurementDataset* IntegrationTest::dataset_ = nullptr;

TEST_F(IntegrationTest, Fig3ScaleMatchesStudy) {
  EXPECT_GE(fleet_->size(), 3200u);
  EXPECT_GE(fleet_->country_count(), 166u);
  EXPECT_EQ(registry_->size(), 101u);
  EXPECT_EQ(registry_->hosting_countries().size(), 21u);
}

TEST_F(IntegrationTest, DatasetScaleComparableToPaper) {
  // The paper's nine-month dataset holds 3.2M datapoints; our 30-day run
  // must land within an order of magnitude (the nine-month bench run
  // reproduces the full count).
  EXPECT_GT(dataset_->size(), 300000u);
  EXPECT_LT(dataset_->loss_fraction(), 0.05);
}

TEST_F(IntegrationTest, Fig4CountryBands) {
  const auto rows = country_min_latency(*dataset_);
  const LatencyBands bands = band_country_latencies(rows);
  // Paper: 32 countries <10 ms, 21 in 10-20 ms, all but ~16 under 100 ms.
  EXPECT_GE(bands.under_10, 25u);
  EXPECT_LE(bands.under_10, 48u);
  EXPECT_GE(bands.from_10_to_20, 12u);
  EXPECT_LE(bands.from_10_to_20, 32u);
  EXPECT_GE(bands.over_100, 8u);
  EXPECT_LE(bands.over_100, 30u);
  // Nearly every country produced at least one successful measurement.
  EXPECT_GE(bands.total(), geo::country_count() - 3);
}

TEST_F(IntegrationTest, Fig4LocalDatacentersExplainTheFastBand) {
  // Countries under 10 ms overwhelmingly host a datacenter or border one.
  const auto rows = country_min_latency(*dataset_);
  const auto hosts = registry_->hosting_countries();
  std::size_t fast_hosting = 0;
  std::size_t fast_total = 0;
  for (const CountryMinLatency& row : rows) {
    if (row.min_rtt_ms >= 10.0) continue;
    ++fast_total;
    for (const auto host : hosts) {
      if (row.country->iso2 == host) {
        ++fast_hosting;
        break;
      }
    }
  }
  ASSERT_GT(fast_total, 0u);
  // All 21 hosting countries are fast, and they make up the majority of
  // the fast band.
  EXPECT_GE(fast_hosting, 19u);
  EXPECT_GE(fast_hosting * 2, fast_total);
}

TEST_F(IntegrationTest, Fig5MinCdfShapes) {
  const stats::Ecdf eu(continent_mins(Continent::kEurope));
  const stats::Ecdf na(continent_mins(Continent::kNorthAmerica));
  const stats::Ecdf oc(continent_mins(Continent::kOceania));
  // "Around 80% probes in Europe and North America ... within MTP".
  EXPECT_GE(eu.fraction_at_or_below(20.0), 0.65);
  EXPECT_GE(na.fraction_at_or_below(20.0), 0.60);
  // "almost all [Oceania probes] can access the cloud within 50 ms".
  EXPECT_GE(oc.fraction_at_or_below(50.0), 0.80);
  // "≈75% probes in Africa and Latin America achieve less than 100 ms".
  const auto& af = continent_mins(Continent::kAfrica);
  const auto& sa = continent_mins(Continent::kSouthAmerica);
  std::vector<double> af_latam;
  af_latam.insert(af_latam.end(), af.begin(), af.end());
  af_latam.insert(af_latam.end(), sa.begin(), sa.end());
  const stats::Ecdf combined(std::move(af_latam));
  EXPECT_GE(combined.fraction_at_or_below(100.0), 0.60);
  EXPECT_LE(combined.fraction_at_or_below(100.0), 0.90);
}

TEST_F(IntegrationTest, Fig5EuropeAndNorthAmericaLeadTheWorld) {
  const double eu = stats::Ecdf(continent_mins(Continent::kEurope)).median();
  const double na =
      stats::Ecdf(continent_mins(Continent::kNorthAmerica)).median();
  for (const Continent c :
       {Continent::kAfrica, Continent::kAsia, Continent::kSouthAmerica}) {
    const double other = stats::Ecdf(continent_mins(c)).median();
    EXPECT_LT(eu, other) << to_string(c);
    EXPECT_LT(na, other) << to_string(c);
  }
}

TEST_F(IntegrationTest, Fig6FullDistributionShapes) {
  // ">75% of the probes achieving RTT below the PL threshold" in NA/EU/OC.
  for (const Continent c : {Continent::kEurope, Continent::kNorthAmerica,
                            Continent::kOceania}) {
    const stats::Ecdf ecdf(continent_samples(c));
    EXPECT_GE(ecdf.fraction_at_or_below(100.0), 0.75) << to_string(c);
  }
  // "The top 25% probes in NA and EU can even support MTP".
  for (const Continent c : {Continent::kEurope, Continent::kNorthAmerica}) {
    const stats::Ecdf ecdf(continent_samples(c));
    EXPECT_LE(ecdf.percentile(25.0), 20.0) << to_string(c);
  }
  // "only a fraction of probes can satisfy the PL threshold" in Africa.
  const stats::Ecdf africa(continent_samples(Continent::kAfrica));
  EXPECT_LE(africa.fraction_at_or_below(100.0), 0.70);
  // "the worst performance is in Africa".
  for (const Continent c :
       {Continent::kEurope, Continent::kAsia, Continent::kNorthAmerica,
        Continent::kSouthAmerica, Continent::kOceania}) {
    EXPECT_GT(africa.median(), stats::Ecdf(continent_samples(c)).median())
        << to_string(c);
  }
}

TEST_F(IntegrationTest, Fig6EuropeTailIsDrivenByEasternEurope) {
  // "the primary contributors to the tail are probes in eastern EU and
  // countries without local or neighboring datacenters": above the EU p90,
  // tier-2 (eastern) European countries must be strongly over-represented
  // relative to their overall sample share.
  const auto best = per_probe_best(*dataset_);
  std::vector<double> eu_all;
  std::vector<unsigned char> eu_tier2;
  for (const atlas::Measurement& m : dataset_->records()) {
    if (m.lost()) continue;
    const ProbeBest& b = best[m.probe_id];
    if (!b.valid || m.region_index != b.region_index) continue;
    const atlas::Probe& probe = dataset_->probe_of(m);
    if (probe.privileged()) continue;
    if (probe.country->continent != Continent::kEurope) continue;
    eu_all.push_back(m.min_ms);
    eu_tier2.push_back(probe.country->tier != geo::ConnectivityTier::kTier1);
  }
  ASSERT_GT(eu_all.size(), 1000u);
  const double p90 = stats::Ecdf(eu_all).percentile(90.0);
  std::size_t tail = 0;
  std::size_t tail_tier2 = 0;
  std::size_t total_tier2 = 0;
  for (std::size_t i = 0; i < eu_all.size(); ++i) {
    total_tier2 += eu_tier2[i];
    if (eu_all[i] > p90) {
      ++tail;
      tail_tier2 += eu_tier2[i];
    }
  }
  const double overall_share =
      static_cast<double>(total_tier2) / static_cast<double>(eu_all.size());
  const double tail_share =
      static_cast<double>(tail_tier2) / static_cast<double>(tail);
  EXPECT_GT(tail_share, 1.5 * overall_share);
  // And the tail is long in absolute terms: p99 well past 4x the median.
  const stats::Ecdf eu(continent_samples(Continent::kEurope));
  EXPECT_GT(eu.percentile(99.0), 4.0 * eu.median());
}

TEST_F(IntegrationTest, Fig7WirelessPenalty) {
  const AccessComparison cmp = compare_access(*dataset_);
  EXPECT_GT(cmp.wired_probe_count, 100u);
  EXPECT_GT(cmp.wireless_probe_count, 50u);
  // "≈2.5x longer to access the nearest cloud region".
  EXPECT_GE(cmp.median_ratio, 1.8);
  EXPECT_LE(cmp.median_ratio, 3.2);
  // "10-40 ms of added latency while using wireless as last-mile".
  EXPECT_GE(cmp.added_latency_ms, 10.0);
  EXPECT_LE(cmp.added_latency_ms, 40.0);
  // The gap is persistent over time, not an aggregate artefact.
  std::size_t wireless_worse = 0;
  for (std::size_t i = 0; i < cmp.wired_over_time.size() &&
                          i < cmp.wireless_over_time.size();
       ++i) {
    wireless_worse +=
        cmp.wireless_over_time[i].second > cmp.wired_over_time[i].second;
  }
  EXPECT_GE(wireless_worse, cmp.wired_over_time.size() * 9 / 10);
}

TEST_F(IntegrationTest, HeadlineCloudIsCloseEnough) {
  // The paper's thesis, end to end: against the measured EU median cloud
  // RTT, every catalog application is either cloud-sufficient or needs
  // onboard compute anyway — edge adds nothing in well-connected regions.
  const stats::Ecdf eu(continent_samples(Continent::kEurope));
  const auto rows = classify_catalog(apps::application_catalog(), eu.median());
  for (const FeasibilityRow& row : rows) {
    EXPECT_TRUE(row.verdict == EdgeVerdict::kCloudSufficient ||
                row.verdict == EdgeVerdict::kOnboardOnly)
        << row.app->id << " -> " << to_string(row.verdict);
  }
  // Against the African upper-quartile experience (a typical under-served
  // user, comfortably beyond PL), edge-feasible cases appear.
  const stats::Ecdf af(continent_samples(Continent::kAfrica));
  const auto af_rows =
      classify_catalog(apps::application_catalog(), af.percentile(75.0));
  std::size_t edge = 0;
  for (const FeasibilityRow& row : af_rows) {
    edge += row.verdict == EdgeVerdict::kEdgeFeasible;
  }
  EXPECT_GE(edge, 1u);
}

}  // namespace
}  // namespace shears::core
