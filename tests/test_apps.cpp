// Tests for the application taxonomy: perception thresholds, the Fig. 2
// catalog, and the quadrant classification of §3.
#include <gtest/gtest.h>

#include <set>

#include "apps/application.hpp"
#include "apps/thresholds.hpp"

namespace shears::apps {
namespace {

TEST(Thresholds, PaperConstants) {
  EXPECT_DOUBLE_EQ(kMotionToPhotonMs, 20.0);
  EXPECT_DOUBLE_EQ(kMtpDisplayShareMs, 13.0);
  EXPECT_DOUBLE_EQ(kMtpComputeBudgetMs, 7.0);
  EXPECT_DOUBLE_EQ(kNasaHudComputeMs, 2.5);
  EXPECT_DOUBLE_EQ(kPerceivableLatencyMs, 100.0);
  EXPECT_DOUBLE_EQ(kHumanReactionTimeMs, 250.0);
  // MTP decomposes into display + compute shares.
  EXPECT_DOUBLE_EQ(kMtpDisplayShareMs + kMtpComputeBudgetMs,
                   kMotionToPhotonMs);
}

TEST(Thresholds, RegimeClassification) {
  EXPECT_EQ(classify_latency(2.0), LatencyRegime::kSubMtpCompute);
  EXPECT_EQ(classify_latency(7.0), LatencyRegime::kSubMtpCompute);
  EXPECT_EQ(classify_latency(15.0), LatencyRegime::kMtp);
  EXPECT_EQ(classify_latency(20.0), LatencyRegime::kMtp);
  EXPECT_EQ(classify_latency(60.0), LatencyRegime::kPerceivable);
  EXPECT_EQ(classify_latency(100.0), LatencyRegime::kPerceivable);
  EXPECT_EQ(classify_latency(200.0), LatencyRegime::kReaction);
  EXPECT_EQ(classify_latency(250.0), LatencyRegime::kReaction);
  EXPECT_EQ(classify_latency(1000.0), LatencyRegime::kRelaxed);
}

TEST(Thresholds, RegimeCeilingsAreMonotone) {
  EXPECT_LT(regime_ceiling_ms(LatencyRegime::kSubMtpCompute),
            regime_ceiling_ms(LatencyRegime::kMtp));
  EXPECT_LT(regime_ceiling_ms(LatencyRegime::kMtp),
            regime_ceiling_ms(LatencyRegime::kPerceivable));
  EXPECT_LT(regime_ceiling_ms(LatencyRegime::kPerceivable),
            regime_ceiling_ms(LatencyRegime::kReaction));
  EXPECT_LT(regime_ceiling_ms(LatencyRegime::kReaction),
            regime_ceiling_ms(LatencyRegime::kRelaxed));
}

TEST(Thresholds, ClassifyIsConsistentWithCeilings) {
  // Property: any latency classifies into the regime whose ceiling bounds
  // it from above.
  for (double ms = 0.5; ms < 2000.0; ms *= 1.3) {
    const LatencyRegime r = classify_latency(ms);
    EXPECT_LE(ms, regime_ceiling_ms(r));
  }
}

TEST(Catalog, SixteenApplicationsWithUniqueIds) {
  const auto catalog = application_catalog();
  EXPECT_EQ(catalog.size(), 16u);
  std::set<std::string_view> ids;
  for (const Application& a : catalog) {
    EXPECT_TRUE(ids.insert(a.id).second) << a.id;
  }
}

TEST(Catalog, FieldsValid) {
  for (const Application& a : application_catalog()) {
    EXPECT_FALSE(a.name.empty());
    EXPECT_GT(a.latency_floor_ms, 0.0) << a.id;
    EXPECT_GE(a.latency_ceiling_ms, a.latency_floor_ms) << a.id;
    EXPECT_GT(a.data_gb_per_entity_day, 0.0) << a.id;
    EXPECT_GT(a.market_2025_busd, 0.0) << a.id;
  }
}

TEST(Catalog, LookupWorks) {
  const Application* gaming = find_application("cloud-gaming");
  ASSERT_NE(gaming, nullptr);
  EXPECT_EQ(gaming->name, "Cloud gaming");
  EXPECT_EQ(find_application("time-machine"), nullptr);
}

TEST(Catalog, EveryQuadrantPopulated) {
  std::set<Quadrant> seen;
  for (const Application& a : application_catalog()) seen.insert(quadrant_of(a));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Catalog, PaperPlacements) {
  // §3's quadrant examples.
  const auto expect_quadrant = [](std::string_view id, Quadrant q) {
    const Application* a = find_application(id);
    ASSERT_NE(a, nullptr) << id;
    EXPECT_EQ(quadrant_of(*a), q) << id;
  };
  expect_quadrant("wearables", Quadrant::kQ1LowLatencyLowBandwidth);
  expect_quadrant("online-gaming", Quadrant::kQ1LowLatencyLowBandwidth);
  expect_quadrant("ar-vr", Quadrant::kQ2LowLatencyHighBandwidth);
  expect_quadrant("autonomous-vehicles", Quadrant::kQ2LowLatencyHighBandwidth);
  expect_quadrant("cloud-gaming", Quadrant::kQ2LowLatencyHighBandwidth);
  expect_quadrant("smart-city", Quadrant::kQ3HighLatencyHighBandwidth);
  expect_quadrant("smart-home", Quadrant::kQ4HighLatencyLowBandwidth);
  expect_quadrant("weather-monitoring", Quadrant::kQ4HighLatencyLowBandwidth);
}

TEST(Catalog, MtpBoundApplicationsExist) {
  // AR/VR must demand MTP-or-better; its floor reaches the NASA HUD bound.
  const Application* arvr = find_application("ar-vr");
  ASSERT_NE(arvr, nullptr);
  EXPECT_LE(arvr->latency_ceiling_ms, kMotionToPhotonMs);
  EXPECT_LE(arvr->latency_floor_ms, kNasaHudComputeMs);
}

TEST(Catalog, HypeIsInQ2) {
  // §3: "most applications in this quadrant ... are popularly heralded as
  // the driving force behind edge computing" — Q2's market share must
  // dominate and the hyped set must be concentrated there.
  double market[5] = {};
  for (const Application& a : application_catalog()) {
    market[static_cast<int>(quadrant_of(a))] += a.market_2025_busd;
  }
  std::size_t hyped_q2 = 0;
  std::size_t hyped = 0;
  for (const Application& a : application_catalog()) {
    if (!a.hyped_edge_driver) continue;
    ++hyped;
    if (quadrant_of(a) == Quadrant::kQ2LowLatencyHighBandwidth) ++hyped_q2;
  }
  EXPECT_GE(hyped, 5u);
  EXPECT_GE(hyped_q2 * 2, hyped);  // at least half the hype sits in Q2
  EXPECT_GT(market[2], market[3]);  // Q2 > Q3
}

TEST(Catalog, BandwidthThresholdSplitsCatalog) {
  std::size_t heavy = 0;
  for (const Application& a : application_catalog()) {
    if (is_bandwidth_heavy(a)) ++heavy;
  }
  EXPECT_GT(heavy, 4u);
  EXPECT_LT(heavy, application_catalog().size());
}

}  // namespace
}  // namespace shears::apps
