// The observability subsystem and its two contracts:
//
//   * fidelity — metric values published by an instrumented campaign
//     match the CampaignTelemetry ground truth, and snapshots round-trip
//     through JSONL exactly;
//   * non-perturbation — attaching a MetricsRegistry never changes the
//     dataset: the sampling-cache golden checksum (captured from the
//     pre-cache, pre-obs engine) must keep passing with instrumentation
//     compiled in and attached.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/access_comparison.hpp"
#include "core/analysis.hpp"
#include "faults/fault_schedule.hpp"
#include "net/latency_model.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "topology/registry.hpp"

namespace shears {
namespace {

// --- registry primitives ---------------------------------------------------

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.events");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), 4000u);
  EXPECT_EQ(registry.snapshot().counter("test.events"), 4000u);
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("a");
  // Force rebalancing pressure on the underlying container.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).increment();
  }
  obs::Counter& again = registry.counter("a");
  EXPECT_EQ(&first, &again);
  first.add(7);
  EXPECT_EQ(registry.snapshot().counter("a"), 7u);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  obs::MetricsRegistry registry;
  registry.gauge("g").set(1.5);
  registry.gauge("g").set(-2.25);
  EXPECT_EQ(registry.snapshot().gauge("g"), -2.25);
}

TEST(Metrics, HistogramTracksSummaryStatistics) {
  obs::LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const obs::LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum_ms, 5050.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  // P² estimates on a uniform ramp land near the true quantiles.
  EXPECT_NEAR(s.p50_ms, 50.0, 5.0);
  EXPECT_NEAR(s.p90_ms, 90.0, 5.0);
  EXPECT_NEAR(s.p99_ms, 99.0, 5.0);
}

TEST(Metrics, SpanRecordsElapsedOnceAndNullSpanIsFree) {
  obs::MetricsRegistry registry;
  obs::LatencyHistogram& h = registry.histogram("span.ms");
  {
    obs::Span span(&h);
    span.stop();
    span.stop();  // second stop must not double-record
  }               // destructor after stop() must not record either
  EXPECT_EQ(h.summary().count, 1u);
  {
    obs::Span disabled(nullptr);  // must not crash or record anywhere
  }
  obs::Span via_registry(static_cast<obs::MetricsRegistry*>(nullptr), "x");
  EXPECT_EQ(registry.snapshot().find("x"), nullptr);
}

// --- snapshot export -------------------------------------------------------

TEST(Metrics, SnapshotOrdersSamplesByName) {
  obs::MetricsRegistry registry;
  registry.counter("zeta").add(1);
  registry.gauge("alpha").set(2.0);
  registry.histogram("mid").record(3.0);
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples().size(), 3u);
  EXPECT_EQ(snap.samples()[0].name, "alpha");
  EXPECT_EQ(snap.samples()[1].name, "mid");
  EXPECT_EQ(snap.samples()[2].name, "zeta");
}

TEST(Metrics, SnapshotJsonlRoundTripsExactly) {
  obs::MetricsRegistry registry;
  registry.counter("campaign.bursts").add(6144);
  registry.gauge("campaign.wall_ms_per_day").set(0.1 + 0.2);  // not exact
  obs::LatencyHistogram& h = registry.histogram("campaign.shard_wall_ms");
  h.record(1.25);
  h.record(3.75);
  h.record(0.5);
  const obs::Snapshot snap = registry.snapshot();

  std::stringstream buffer;
  snap.write_jsonl(buffer);
  const obs::Snapshot loaded = obs::Snapshot::read_jsonl(buffer);

  // Doubles print with max_digits10, so the round trip is bit-exact.
  ASSERT_EQ(loaded.samples().size(), snap.samples().size());
  for (std::size_t i = 0; i < snap.samples().size(); ++i) {
    EXPECT_EQ(loaded.samples()[i], snap.samples()[i]) << i;
  }
}

TEST(Metrics, SnapshotCsvHasHeaderAndOneRowPerMetric) {
  obs::MetricsRegistry registry;
  registry.counter("a").add(1);
  registry.gauge("b").set(2.0);
  std::stringstream buffer;
  registry.snapshot().write_csv(buffer);
  std::string line;
  ASSERT_TRUE(std::getline(buffer, line));
  EXPECT_EQ(line,
            "metric,kind,count,value,sum_ms,min_ms,max_ms,p50_ms,p90_ms,"
            "p99_ms");
  std::size_t rows = 0;
  while (std::getline(buffer, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(Metrics, SnapshotReadJsonlRejectsMalformedInput) {
  std::stringstream not_json("nope\n");
  EXPECT_THROW(obs::Snapshot::read_jsonl(not_json), std::runtime_error);
  std::stringstream bad_kind("{\"metric\":\"x\",\"kind\":\"timer\"}\n");
  EXPECT_THROW(obs::Snapshot::read_jsonl(bad_kind), std::runtime_error);
  std::stringstream bad_count(
      "{\"metric\":\"x\",\"kind\":\"counter\",\"count\":many}\n");
  EXPECT_THROW(obs::Snapshot::read_jsonl(bad_count), std::runtime_error);
  std::stringstream missing("{\"metric\":\"x\",\"kind\":\"gauge\"}\n");
  EXPECT_THROW(obs::Snapshot::read_jsonl(missing), std::runtime_error);
}

// --- campaign instrumentation ----------------------------------------------

/// Same digest as test_sampling_cache.cpp: FNV-1a over every record field,
/// floats by bit pattern.
std::uint64_t dataset_checksum(const atlas::MeasurementDataset& ds) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const atlas::Measurement& m : ds.records()) {
    mix(m.probe_id);
    mix(m.region_index);
    mix(m.tick);
    std::uint32_t bits = 0;
    std::memcpy(&bits, &m.min_ms, sizeof bits);
    mix(bits);
    std::memcpy(&bits, &m.avg_ms, sizeof bits);
    mix(bits);
    std::memcpy(&bits, &m.max_ms, sizeof bits);
    mix(bits);
    mix(m.sent);
    mix(m.received);
    mix(m.retries);
    mix(m.faults);
  }
  return h;
}

/// Golden checksum of the small default campaign, captured from the
/// pre-cache engine (see test_sampling_cache.cpp). Instrumentation must
/// keep reproducing it bit for bit.
constexpr std::uint64_t kGoldenSmallDefault = 0xc651f46c9bbf3d01ULL;

atlas::ProbeFleet small_fleet() {
  atlas::PlacementConfig pc;
  pc.probe_count = 256;
  pc.seed = 5;
  return atlas::ProbeFleet::generate(pc);
}

atlas::CampaignConfig small_config() {
  atlas::CampaignConfig cc;
  cc.duration_days = 3;
  cc.seed = 7;
  cc.threads = 1;
  return cc;
}

TEST(CampaignObservability, AttachedRegistryDoesNotPerturbTheDataset) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  atlas::Campaign campaign(fleet, registry, model, small_config());
  obs::MetricsRegistry metrics;
  campaign.attach_metrics(&metrics);
  const auto dataset = campaign.run();
  EXPECT_EQ(dataset_checksum(dataset), kGoldenSmallDefault);
  EXPECT_FALSE(metrics.snapshot().empty());
}

TEST(CampaignObservability, CountersMatchCampaignGroundTruth) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  atlas::Campaign campaign(fleet, registry, model, small_config());
  obs::MetricsRegistry metrics;
  campaign.attach_metrics(&metrics);
  atlas::CampaignTelemetry telemetry;
  const auto dataset = campaign.run(telemetry);
  const obs::Snapshot snap = metrics.snapshot();

  EXPECT_EQ(snap.counter("campaign.bursts"), telemetry.bursts);
  EXPECT_EQ(snap.counter("campaign.bursts"), dataset.size());
  // The default config runs the cached fast path: every burst is a cache
  // hit, and the resilience counters stay zero.
  EXPECT_EQ(snap.counter("campaign.path_cache_hits"), dataset.size());
  EXPECT_EQ(snap.counter("campaign.retries"), 0u);
  EXPECT_EQ(snap.counter("campaign.bursts_faulted"), 0u);
  EXPECT_EQ(snap.counter("campaign.quarantine_entries"), 0u);
  // Wall gauges and the shard histogram are populated (values are wall
  // clock, so only their presence and plausibility are asserted).
  EXPECT_GT(snap.gauge("campaign.wall_ms"), 0.0);
  EXPECT_GT(snap.gauge("campaign.wall_ms_per_day"), 0.0);
  const obs::MetricSample* shard = snap.find("campaign.shard_wall_ms");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->count, 1u);  // threads = 1 -> one shard span
  // Clean runs register no fault-kind counters at all.
  EXPECT_EQ(snap.find("faults.activations.region-outage"), nullptr);
}

TEST(CampaignObservability, UncachedRunRecordsNoCacheHits) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  atlas::CampaignConfig cc = small_config();
  cc.sampling_cache = false;

  atlas::Campaign campaign(fleet, registry, model, cc);
  obs::MetricsRegistry metrics;
  campaign.attach_metrics(&metrics);
  const auto dataset = campaign.run();
  const obs::Snapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counter("campaign.bursts"), dataset.size());
  EXPECT_EQ(snap.counter("campaign.path_cache_hits"), 0u);
}

TEST(CampaignObservability, FaultedRunPublishesPerKindActivations) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  faults::FaultScheduleConfig fc;
  fc.seed = 21;
  fc.route_flap_rate = 0.05;
  fc.clock_skew_rate = 0.05;
  const faults::FaultSchedule schedule(fc);

  atlas::Campaign campaign(fleet, registry, model, small_config(), &schedule);
  obs::MetricsRegistry metrics;
  campaign.attach_metrics(&metrics);
  atlas::CampaignTelemetry telemetry;
  const auto dataset = campaign.run(telemetry);

  // Ground truth from the records themselves.
  std::uint64_t flapped = 0;
  std::uint64_t skewed = 0;
  for (const atlas::Measurement& m : dataset.records()) {
    if ((m.faults & faults::fault_bit(faults::FaultKind::kRouteFlap)) != 0) {
      ++flapped;
    }
    if ((m.faults & faults::fault_bit(faults::FaultKind::kClockSkew)) != 0) {
      ++skewed;
    }
  }
  ASSERT_GT(flapped + skewed, 0u);  // rates high enough to trigger

  const obs::Snapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counter("faults.activations.route-flap"), flapped);
  EXPECT_EQ(snap.counter("faults.activations.clock-skew"), skewed);
  EXPECT_EQ(telemetry.fault_kinds.of(faults::FaultKind::kRouteFlap), flapped);
  EXPECT_EQ(telemetry.fault_kinds.of(faults::FaultKind::kClockSkew), skewed);
  EXPECT_EQ(telemetry.fault_kinds.total(), flapped + skewed);
  EXPECT_EQ(snap.counter("campaign.bursts_faulted"), telemetry.bursts_faulted);
}

TEST(CampaignObservability, TelemetryIsThreadCountInvariant) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  atlas::CampaignConfig cc = small_config();
  atlas::CampaignTelemetry single;
  (void)atlas::Campaign(fleet, registry, model, cc).run(single);
  cc.threads = 4;
  atlas::CampaignTelemetry multi;
  (void)atlas::Campaign(fleet, registry, model, cc).run(multi);

  EXPECT_EQ(single.bursts, multi.bursts);
  EXPECT_EQ(single.bursts_cached, multi.bursts_cached);
  EXPECT_EQ(single.fault_kinds.total(), multi.fault_kinds.total());
}

// --- analysis instrumentation ----------------------------------------------

TEST(AnalysisObservability, ShardScanTimingsArePublished) {
  const auto fleet = small_fleet();
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  const auto dataset =
      atlas::Campaign(fleet, registry, model, small_config()).run();

  obs::MetricsRegistry metrics;
  core::AnalysisOptions options;
  options.threads = 2;
  options.metrics = &metrics;
  const auto with_metrics = core::country_min_latency(dataset, options);
  (void)core::per_probe_best(dataset, options);
  (void)core::best_region_samples_by_continent(dataset, options);
  (void)core::server_side_view(dataset, options);
  core::AccessComparisonOptions ac_options;
  ac_options.threads = 2;
  ac_options.metrics = &metrics;
  (void)core::compare_access(dataset, ac_options);

  const obs::Snapshot snap = metrics.snapshot();
  for (const char* name :
       {"core.country_min.shard_ms", "core.per_probe_best.shard_ms",
        "core.best_region_samples.shard_ms", "core.server_view.shard_ms",
        "core.access_comparison.shard_ms"}) {
    const obs::MetricSample* s = snap.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_GE(s->count, 1u) << name;
    EXPECT_GE(s->max_ms, s->min_ms) << name;
  }

  // Observation never changes the analysis results.
  core::AnalysisOptions plain;
  plain.threads = 2;
  const auto without = core::country_min_latency(dataset, plain);
  ASSERT_EQ(with_metrics.size(), without.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_metrics[i].country, without[i].country);
    EXPECT_EQ(with_metrics[i].min_rtt_ms, without[i].min_rtt_ms);
  }
}

}  // namespace
}  // namespace shears
