// Differential oracles over generated worlds: cached vs uncached engine,
// 1 vs 8 campaign threads, serial vs sharded analyses, CSV/JSONL round
// trips, and the empty-schedule ≡ clean-engine identity. Each oracle must
// agree bit for bit on every world the generator can produce.
#include <gtest/gtest.h>

#include "atlas/measurement.hpp"
#include "check/oracles.hpp"
#include "check/property.hpp"
#include "check/world.hpp"

namespace shears::check {
namespace {

TEST(Differential, CachedVsUncachedEngine) {
  const CheckResult result = check(
      "cached_vs_uncached",
      [](Gen& gen) {
        const World world = make_world(gen);
        check_cached_vs_uncached(world);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, CampaignThreadInvariance) {
  const CheckResult result = check(
      "campaign_thread_invariance",
      [](Gen& gen) {
        const World world = make_world(gen);
        check_campaign_thread_invariance(world);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, BatchedVsScalarEngine) {
  const CheckResult result = check(
      "batched_vs_scalar",
      [](Gen& gen) {
        const World world = make_world(gen);
        check_batched_vs_scalar(world);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, AnalysisThreadInvariance) {
  const CheckResult result = check(
      "analysis_thread_invariance",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        check_analysis_thread_invariance(world, dataset);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, CsvRoundTrip) {
  const CheckResult result = check(
      "csv_roundtrip",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        check_csv_roundtrip(world, dataset);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, JsonlRoundTrip) {
  const CheckResult result = check(
      "jsonl_roundtrip",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        check_jsonl_roundtrip(world, dataset);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, EmptyScheduleMatchesCleanEngine) {
  const CheckResult result = check(
      "empty_schedule_identity",
      [](Gen& gen) {
        const World world = make_world(gen);
        check_empty_schedule_identity(world);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Differential, ChecksumAgreesWithRecordEquality) {
  // The checksum is the oracles' fast path; it must never contradict the
  // field-by-field comparison.
  const CheckResult result = check(
      "checksum_consistency",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset a = world.run();
        const atlas::MeasurementDataset b = world.run();
        std::string why;
        require(datasets_identical(a, b, why),
                "re-running the same world diverged: " + why);
        require(dataset_checksum(a) == dataset_checksum(b),
                "identical datasets produced different checksums");
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

}  // namespace
}  // namespace shears::check
