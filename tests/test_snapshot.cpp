// Snapshot persistence: save → load must reproduce the store byte for
// byte (columns, counters, every summary scalar), across build paths,
// thread counts, file and mmap loads, and mid-ingest snapshots that are
// appended to after loading. The corrupt-file corpus pins the error
// confinement contract: a damaged image — truncated, bit-flipped,
// wrong version, wrong fleet — throws a precise SnapshotError or
// io::BlockError and never yields a partial store. The delta log is
// exercised end to end: publish / crash-recover / extend / compact /
// torn tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "atlas/tags.hpp"
#include "config/scenario.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/country.hpp"
#include "io/block_file.hpp"
#include "net/latency_model.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "serve/reference.hpp"
#include "serve/snapshot.hpp"
#include "topology/registry.hpp"

namespace shears::serve {
namespace {

atlas::Probe make_probe(atlas::ProbeId id, const char* iso2,
                        net::AccessTechnology access,
                        atlas::Environment environment) {
  atlas::Probe probe;
  probe.id = id;
  probe.country = geo::find_country(iso2);
  EXPECT_NE(probe.country, nullptr) << iso2;
  probe.endpoint.location = probe.country->site;
  probe.endpoint.tier = probe.country->tier;
  probe.endpoint.access = access;
  probe.environment = environment;
  probe.tags = atlas::make_tags(access, environment, true);
  return probe;
}

atlas::Measurement row(atlas::ProbeId probe, std::uint16_t region,
                       std::uint32_t tick, float min_ms,
                       std::uint8_t received = 3) {
  atlas::Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.min_ms = min_ms;
  m.avg_ms = min_ms + 1.0f;
  m.max_ms = min_ms + 2.0f;
  m.sent = 3;
  m.received = received;
  return m;
}

/// Same tiny fixed world the store tests use: DE ethernet, DE LTE, FR
/// ethernet, plus one privileged DE probe the store must drop.
struct TinyWorld {
  topology::CloudRegistry registry;
  atlas::ProbeFleet fleet;

  TinyWorld()
      : registry({topology::all_regions().data(),
                  topology::all_regions().data() + 1,
                  topology::all_regions().data() + 2}),
        fleet(atlas::ProbeFleet::from_probes({
            make_probe(0, "DE", net::AccessTechnology::kEthernet,
                       atlas::Environment::kHome),
            make_probe(1, "DE", net::AccessTechnology::kLte,
                       atlas::Environment::kHome),
            make_probe(2, "FR", net::AccessTechnology::kEthernet,
                       atlas::Environment::kHome),
            make_probe(3, "DE", net::AccessTechnology::kEthernet,
                       atlas::Environment::kDatacenter),
        })) {}

  [[nodiscard]] std::vector<atlas::Measurement> standard_rows() const {
    return {
        row(0, 0, 0, 20.0f), row(0, 0, 1, 10.0f), row(0, 0, 2, 40.0f),
        row(0, 0, 3, 30.0f),                      // DE/eth region 0
        row(1, 0, 0, 50.0f), row(1, 0, 1, 5.0f),  // DE/lte region 0
        row(2, 1, 0, 70.0f),                      // FR/eth region 1
        row(3, 0, 0, 1.0f),                       // privileged: dropped
        row(0, 1, 0, 90.0f, 0),                   // lost: dropped
    };
  }
};

/// A small but real campaign dataset for the identity tests.
struct CampaignWorld {
  topology::CloudRegistry registry =
      topology::CloudRegistry::campaign_footprint();
  atlas::ProbeFleet fleet;
  net::LatencyModel model;
  atlas::CampaignConfig config;

  CampaignWorld()
      : fleet(atlas::ProbeFleet::generate(small_fleet())),
        model(net::LatencyModelConfig{}) {
    config.duration_days = 1;
    config.interval_hours = 6;
    config.seed = 20200913;
  }

  static atlas::PlacementConfig small_fleet() {
    atlas::PlacementConfig p;
    p.probe_count = geo::country_count() + 40;
    p.seed = 7;
    return p;
  }

  [[nodiscard]] atlas::MeasurementDataset run() const {
    return atlas::Campaign(fleet, registry, model, config).run();
  }
};

void expect_same_store(const ColumnarStore& a, const ColumnarStore& b) {
  ASSERT_EQ(a.rows_stored(), b.rows_stored());
  ASSERT_EQ(a.rows_dropped(), b.rows_dropped());
  const auto shards_a = a.shards();
  const auto shards_b = b.shards();
  ASSERT_EQ(shards_a.size(), shards_b.size());
  for (std::size_t s = 0; s < shards_a.size(); ++s) {
    EXPECT_EQ(shards_a[s].country, shards_b[s].country);
    EXPECT_EQ(shards_a[s].access, shards_b[s].access);
    ASSERT_EQ(shards_a[s].rtt_ms.size(), shards_b[s].rtt_ms.size());
    for (std::size_t i = 0; i < shards_a[s].rtt_ms.size(); ++i) {
      ASSERT_EQ(shards_a[s].probe_ids[i], shards_b[s].probe_ids[i]);
      ASSERT_EQ(shards_a[s].region_index[i], shards_b[s].region_index[i]);
      ASSERT_EQ(shards_a[s].ticks[i], shards_b[s].ticks[i]);
      ASSERT_EQ(shards_a[s].rtt_ms[i], shards_b[s].rtt_ms[i]);
    }
    const std::size_t country = country_index_of(shards_a[s].country);
    const auto stats_a = a.shard_stats(country, shards_a[s].access);
    const auto stats_b = b.shard_stats(country, shards_b[s].access);
    ASSERT_EQ(stats_a.size(), stats_b.size());
    for (std::size_t r = 0; r < stats_a.size(); ++r) {
      ASSERT_EQ(stats_a[r].count, stats_b[r].count);
      ASSERT_EQ(stats_a[r].min_ms, stats_b[r].min_ms);
      ASSERT_EQ(stats_a[r].median_ms, stats_b[r].median_ms);
      ASSERT_EQ(stats_a[r].p95_ms, stats_b[r].p95_ms);
    }
    const auto rollup_a = a.country_stats(country);
    const auto rollup_b = b.country_stats(country);
    ASSERT_EQ(rollup_a.size(), rollup_b.size());
    for (std::size_t r = 0; r < rollup_a.size(); ++r) {
      ASSERT_EQ(rollup_a[r].count, rollup_b[r].count);
      ASSERT_EQ(rollup_a[r].min_ms, rollup_b[r].min_ms);
      ASSERT_EQ(rollup_a[r].median_ms, rollup_b[r].median_ms);
      ASSERT_EQ(rollup_a[r].p95_ms, rollup_b[r].p95_ms);
    }
  }
}

[[nodiscard]] std::vector<std::uint8_t> image_of(const ColumnarStore& store) {
  std::ostringstream os(std::ios::binary);
  save_snapshot(store, os);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

[[nodiscard]] ColumnarStore load_image(const std::vector<std::uint8_t>& image,
                                       const TinyWorld& world,
                                       SnapshotLoadOptions options = {}) {
  return load_snapshot(image, &world.fleet, &world.registry, StoreConfig{1},
                       options);
}

// Container header is 16 bytes; the first block (META) starts right
// after it, its payload 16 block-header bytes later. The corpus tests
// patch payload fields and re-seal the CRC so corruption reaches the
// *semantic* validators instead of the checksum.
constexpr std::size_t kMetaBlockAt = io::kContainerHeaderBytes;
constexpr std::size_t kMetaPayloadAt = kMetaBlockAt + io::kBlockHeaderBytes;

[[nodiscard]] std::uint64_t block_payload_len(
    const std::vector<std::uint8_t>& image, std::size_t block_at) {
  std::uint64_t len = 0;
  std::memcpy(&len, image.data() + block_at + 4, sizeof(len));
  return len;
}

void reseal_block_crc(std::vector<std::uint8_t>& image, std::size_t block_at) {
  const auto len = static_cast<std::size_t>(block_payload_len(image, block_at));
  std::uint32_t crc = io::crc32({image.data() + block_at, 12});
  crc = io::crc32({image.data() + block_at + io::kBlockHeaderBytes, len}, crc);
  std::memcpy(image.data() + block_at + 12, &crc, sizeof(crc));
}

[[nodiscard]] std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ------------------------------------------------------------ round-trip

TEST(Snapshot, TinyRoundTripIsExact) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());
  store.refresh();

  const std::vector<std::uint8_t> image = image_of(store);
  ColumnarStore loaded = load_image(image, world);
  EXPECT_TRUE(loaded.fresh());
  expect_same_store(store, loaded);

  // Saving the loaded store reproduces the image bit for bit — the
  // format round-trips through itself, not just through the store.
  EXPECT_EQ(image_of(loaded), image);
}

TEST(Snapshot, EmptyStoreRoundTrips) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  ASSERT_TRUE(store.fresh());

  ColumnarStore loaded = load_image(image_of(store), world);
  EXPECT_TRUE(loaded.fresh());
  EXPECT_EQ(loaded.rows_stored(), 0u);
  EXPECT_EQ(loaded.rows_dropped(), 0u);
  EXPECT_EQ(loaded.shard_count(), 0u);
}

TEST(Snapshot, StaleStoreRefusesToSave) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());
  ASSERT_FALSE(store.fresh());
  std::ostringstream os(std::ios::binary);
  EXPECT_THROW(save_snapshot(store, os), std::logic_error);
}

TEST(Snapshot, LazyLoadDefersSummariesButKeepsColumns) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());
  store.refresh();

  SnapshotLoadOptions lazy;
  lazy.lazy_summaries = true;
  ColumnarStore loaded = load_image(image_of(store), world, lazy);
  EXPECT_FALSE(loaded.fresh());
  EXPECT_THROW((void)loaded.country_stats(0), std::logic_error);
  loaded.refresh();
  expect_same_store(store, loaded);
}

TEST(Snapshot, MidIngestSnapshotPlusAppendEqualsFullBuild) {
  // The satellite identity: build(N+M) == snapshot(N) → load → append(M),
  // for 1 and 8 worker threads on both sides of the snapshot.
  const CampaignWorld world;
  const atlas::MeasurementDataset dataset = world.run();
  ASSERT_GT(dataset.size(), 0u);
  const ColumnarStore one_shot = ColumnarStore::build(dataset, StoreConfig{1});

  const auto rows = dataset.records();
  const std::size_t cut = rows.size() / 3 + 1;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ColumnarStore partial(&dataset.fleet(), &dataset.registry(),
                          StoreConfig{threads});
    partial.append(rows.subspan(0, cut));
    partial.refresh();

    ColumnarStore resumed =
        load_snapshot(image_of(partial), &dataset.fleet(),
                      &dataset.registry(), StoreConfig{threads});
    resumed.append(rows.subspan(cut));
    resumed.refresh();
    expect_same_store(one_shot, resumed);
  }
}

TEST(Snapshot, FileRoundTripBufferedAndMmap) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());
  store.refresh();

  const std::string path = temp_path("snapshot_roundtrip.snap");
  save_snapshot(store, path);

  ColumnarStore buffered =
      load_snapshot(path, &world.fleet, &world.registry, StoreConfig{1});
  expect_same_store(store, buffered);

  SnapshotLoadOptions mmap;
  mmap.mmap = true;
  ColumnarStore mapped = load_snapshot(path, &world.fleet, &world.registry,
                                       StoreConfig{1}, mmap);
  expect_same_store(store, mapped);
}

TEST(Snapshot, SaveToUnwritablePathLeavesNoFile) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.refresh();
  const std::string path =
      temp_path("no_such_dir") + "/nested/snapshot.snap";
  EXPECT_THROW(save_snapshot(store, path), io::BlockError);
  EXPECT_FALSE(std::ifstream(path).good());
}

// --------------------------------------------------------- wrong worlds

TEST(Snapshot, WrongFleetIsRejected) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());
  store.refresh();
  const std::vector<std::uint8_t> image = image_of(store);

  // Same shape, one probe's access differs — the fingerprint must see it.
  const atlas::ProbeFleet other = atlas::ProbeFleet::from_probes({
      make_probe(0, "DE", net::AccessTechnology::kEthernet,
                 atlas::Environment::kHome),
      make_probe(1, "DE", net::AccessTechnology::kEthernet,
                 atlas::Environment::kHome),
      make_probe(2, "FR", net::AccessTechnology::kEthernet,
                 atlas::Environment::kHome),
      make_probe(3, "DE", net::AccessTechnology::kEthernet,
                 atlas::Environment::kDatacenter),
  });
  try {
    (void)load_snapshot(image, &other, &world.registry);
    FAIL() << "wrong fleet accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("fleet fingerprint"),
              std::string::npos)
        << error.what();
  }
}

TEST(Snapshot, WrongRegistryIsRejected) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());
  store.refresh();
  const std::vector<std::uint8_t> image = image_of(store);

  const topology::CloudRegistry other({topology::all_regions().data(),
                                       topology::all_regions().data() + 1});
  try {
    (void)load_snapshot(image, &world.fleet, &other);
    FAIL() << "wrong registry accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("registry fingerprint"),
              std::string::npos)
        << error.what();
  }
}

// -------------------------------------------------------- corrupt corpus

class SnapshotCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.emplace(&world_.fleet, &world_.registry, StoreConfig{1});
    store_->append(world_.standard_rows());
    store_->refresh();
    image_ = image_of(*store_);
  }

  TinyWorld world_;
  std::optional<ColumnarStore> store_;
  std::vector<std::uint8_t> image_;
};

TEST_F(SnapshotCorpus, TruncationAnywhereIsDetected) {
  // Every strict prefix must fail — header-only, mid-block-header,
  // mid-payload, and one byte short of complete.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, io::kContainerHeaderBytes,
        kMetaPayloadAt - 3, kMetaPayloadAt + 20, image_.size() - 1}) {
    const std::vector<std::uint8_t> cut(image_.begin(),
                                        image_.begin() + keep);
    EXPECT_THROW((void)load_image(cut, world_), io::BlockError)
        << "prefix of " << keep << " bytes";
  }
}

TEST_F(SnapshotCorpus, FlippedByteFailsTheChecksum) {
  // Flip one bit in every 13th byte past the container header — block
  // heads and payloads alike must be caught by the CRC (or, for the
  // CRC field itself, by the mismatch it creates).
  for (std::size_t at = io::kContainerHeaderBytes; at < image_.size();
       at += 13) {
    std::vector<std::uint8_t> bad = image_;
    bad[at] ^= 0x10;
    EXPECT_THROW((void)load_image(bad, world_), io::BlockError)
        << "flip at byte " << at;
  }
}

TEST_F(SnapshotCorpus, WrongContainerVersionIsRejected) {
  std::vector<std::uint8_t> bad = image_;
  bad[8] = 0x7f;  // container version field, not covered by a block CRC
  EXPECT_THROW((void)load_image(bad, world_), io::BlockError);
}

TEST_F(SnapshotCorpus, WrongApplicationTagIsRejected) {
  std::vector<std::uint8_t> bad = image_;
  bad[12] = 'X';  // app fourcc: a delta log is not a snapshot
  EXPECT_THROW((void)load_image(bad, world_), io::BlockError);
}

TEST_F(SnapshotCorpus, WrongSnapshotVersionIsRejected) {
  std::vector<std::uint8_t> bad = image_;
  const std::uint32_t version = 99;
  std::memcpy(bad.data() + kMetaPayloadAt, &version, sizeof(version));
  reseal_block_crc(bad, kMetaBlockAt);
  try {
    (void)load_image(bad, world_);
    FAIL() << "wrong snapshot version accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("unsupported snapshot version"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(SnapshotCorpus, WrongFleetHashIsRejected) {
  std::vector<std::uint8_t> bad = image_;
  bad[kMetaPayloadAt + 4] ^= 0xff;  // fleet fingerprint, first byte
  reseal_block_crc(bad, kMetaBlockAt);
  try {
    (void)load_image(bad, world_);
    FAIL() << "wrong fleet hash accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("fleet fingerprint"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(SnapshotCorpus, ScalarTripwireCatchesColumnTampering) {
  // Rewrite the last RTT of the first shard to a different finite value
  // and re-seal the CRC: the checksum passes, row validation passes,
  // but the summaries rebuilt from the columns no longer match the
  // scalars recorded at save time.
  std::vector<std::uint8_t> bad = image_;
  const std::size_t shard_at =
      kMetaPayloadAt +
      static_cast<std::size_t>(block_payload_len(bad, kMetaBlockAt));
  const auto shard_len =
      static_cast<std::size_t>(block_payload_len(bad, shard_at));
  const float forged = 999.0f;
  std::memcpy(bad.data() + shard_at + io::kBlockHeaderBytes + shard_len -
                  sizeof(float),
              &forged, sizeof(forged));
  reseal_block_crc(bad, shard_at);
  try {
    (void)load_image(bad, world_);
    FAIL() << "tampered column accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("does not match the scalars"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(SnapshotCorpus, NegativeRttIsRejectedAtRowValidation) {
  std::vector<std::uint8_t> bad = image_;
  const std::size_t shard_at =
      kMetaPayloadAt +
      static_cast<std::size_t>(block_payload_len(bad, kMetaBlockAt));
  const auto shard_len =
      static_cast<std::size_t>(block_payload_len(bad, shard_at));
  const float forged = -1.0f;
  std::memcpy(bad.data() + shard_at + io::kBlockHeaderBytes + shard_len -
                  sizeof(float),
              &forged, sizeof(forged));
  reseal_block_crc(bad, shard_at);
  try {
    (void)load_image(bad, world_);
    FAIL() << "negative RTT accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("negative RTT"),
              std::string::npos)
        << error.what();
  }
}

// ------------------------------------------------- shard overflow guard

TEST(StoreOverflowGuard, CapacityIsEnforcedWithStrongGuarantee) {
  // Regression for the u32 scatter-offset overflow: growth past the
  // per-shard ceiling must throw *before* any row lands. The synthetic
  // near-limit cap stands in for 2^32 - 1.
  const TinyWorld world;
  StoreConfig config;
  config.threads = 1;
  config.max_shard_rows = 4;
  ColumnarStore store(&world.fleet, &world.registry, config);

  std::vector<atlas::Measurement> five;
  for (std::uint32_t t = 0; t < 5; ++t) five.push_back(row(0, 0, t, 10.0f));
  try {
    store.append(five);
    FAIL() << "over-capacity batch accepted";
  } catch (const std::length_error& error) {
    EXPECT_NE(std::string(error.what()).find("DE"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("no rows were appended"),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(store.rows_stored(), 0u);  // strong guarantee: nothing landed

  // Filling exactly to the cap works; one more row over is refused and
  // leaves the store untouched — including rows bound for *other*
  // shards in the same rejected batch.
  five.pop_back();
  store.append(five);
  EXPECT_EQ(store.rows_stored(), 4u);
  EXPECT_THROW(
      store.append(std::vector<atlas::Measurement>{row(0, 0, 9, 10.0f),
                                                   row(2, 1, 9, 70.0f)}),
      std::length_error);
  EXPECT_EQ(store.rows_stored(), 4u);
  store.refresh();
  EXPECT_EQ(store.shard_count(), 1u);
}

TEST(StoreOverflowGuard, LoadedStoreInheritsTheConfiguredCap) {
  // A store restored from a snapshot must keep refusing growth past the
  // cap its loader configured.
  const TinyWorld world;
  StoreConfig config;
  config.threads = 1;
  config.max_shard_rows = 4;
  ColumnarStore store(&world.fleet, &world.registry, config);
  std::vector<atlas::Measurement> four;
  for (std::uint32_t t = 0; t < 4; ++t) four.push_back(row(0, 0, t, 10.0f));
  store.append(four);
  store.refresh();

  ColumnarStore loaded =
      load_snapshot(image_of(store), &world.fleet, &world.registry, config);
  EXPECT_THROW(
      loaded.append(std::vector<atlas::Measurement>{row(0, 0, 9, 10.0f)}),
      std::length_error);
}

// ------------------------------------------------------------ delta log

TEST(DeltaLog, BasePlusLogRecoversTheCrashedStore) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::vector<atlas::Measurement> rows = world.standard_rows();

  // Base snapshot after the first three rows...
  store.append(std::span<const atlas::Measurement>(rows).subspan(0, 3));
  store.refresh();
  const std::string base = temp_path("delta_base.snap");
  const std::string log_path = temp_path("delta_tail.log");
  save_snapshot(store, base);

  // ...then two logged batches (the second carries the dropped rows).
  DeltaLog log(&store, log_path);
  log.publish(std::span<const atlas::Measurement>(rows).subspan(3, 3));
  log.publish(std::span<const atlas::Measurement>(rows).subspan(6));
  EXPECT_EQ(log.segments(), 2u);
  store.refresh();

  // "Crash": rebuild from base + log alone.
  ColumnarStore recovered =
      load_snapshot(base, &world.fleet, &world.registry, StoreConfig{1});
  EXPECT_EQ(apply_delta_log(recovered, log_path), 2u);
  recovered.refresh();
  expect_same_store(store, recovered);
}

TEST(DeltaLog, EmptyPublishWritesNoSegment) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  DeltaLog log(&store, temp_path("delta_empty.log"));
  log.publish({});
  EXPECT_EQ(log.segments(), 0u);
}

TEST(DeltaLog, ExtendContinuesAValidLog) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::vector<atlas::Measurement> rows = world.standard_rows();
  const std::string log_path = temp_path("delta_extend.log");

  {
    DeltaLog log(&store, log_path);
    log.publish(std::span<const atlas::Measurement>(rows).subspan(0, 4));
  }
  {
    DeltaLog log(&store, log_path, DeltaLog::Open::kExtend);
    EXPECT_EQ(log.segments(), 1u);
    log.publish(std::span<const atlas::Measurement>(rows).subspan(4));
    EXPECT_EQ(log.segments(), 2u);
  }
  store.refresh();

  ColumnarStore recovered(&world.fleet, &world.registry, StoreConfig{1});
  EXPECT_EQ(apply_delta_log(recovered, log_path), 2u);
  recovered.refresh();
  expect_same_store(store, recovered);
}

TEST(DeltaLog, ExtendRejectsAStoreTheLogDoesNotExplain) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::vector<atlas::Measurement> rows = world.standard_rows();
  const std::string log_path = temp_path("delta_drift.log");
  {
    DeltaLog log(&store, log_path);
    log.publish(std::span<const atlas::Measurement>(rows).subspan(0, 4));
  }
  // Rows appended *outside* the log: replaying it would lose them.
  store.append(std::span<const atlas::Measurement>(rows).subspan(4, 2));
  try {
    DeltaLog log(&store, log_path, DeltaLog::Open::kExtend);
    FAIL() << "drifted store accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("row accounting"),
              std::string::npos)
        << error.what();
  }
}

TEST(DeltaLog, CompactFoldsTheLogIntoAFreshBase) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::vector<atlas::Measurement> rows = world.standard_rows();
  const std::string base = temp_path("compact_base.snap");
  const std::string log_path = temp_path("compact_tail.log");

  DeltaLog log(&store, log_path);
  log.publish(std::span<const atlas::Measurement>(rows).subspan(0, 5));
  store.refresh();
  log.compact(base);
  EXPECT_EQ(log.segments(), 0u);
  log.publish(std::span<const atlas::Measurement>(rows).subspan(5));
  store.refresh();

  ColumnarStore recovered =
      load_snapshot(base, &world.fleet, &world.registry, StoreConfig{1});
  EXPECT_EQ(apply_delta_log(recovered, log_path), 1u);
  recovered.refresh();
  expect_same_store(store, recovered);
}

TEST(DeltaLog, TornTailIsDetected) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::string log_path = temp_path("delta_torn.log");
  {
    DeltaLog log(&store, log_path);
    log.publish(world.standard_rows());
  }

  // Chop a few bytes off the tail — the crash-mid-write shape.
  std::vector<char> bytes;
  {
    std::ifstream in(log_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 5u);
  {
    std::ofstream out(log_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 5));
  }

  ColumnarStore recovered(&world.fleet, &world.registry, StoreConfig{1});
  EXPECT_THROW((void)apply_delta_log(recovered, log_path), io::BlockError);
  EXPECT_EQ(recovered.rows_stored(), 0u);  // all-or-nothing replay
}

TEST(DeltaLog, ApplyRejectsTheWrongBase) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(world.standard_rows());  // log base records these counters
  const std::string log_path = temp_path("delta_wrong_base.log");
  DeltaLog log(&store, log_path);

  ColumnarStore empty(&world.fleet, &world.registry, StoreConfig{1});
  try {
    (void)apply_delta_log(empty, log_path);
    FAIL() << "wrong base accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("base rows"), std::string::npos)
        << error.what();
  }
}

TEST(DeltaLog, FailedStoreAppendNeverReachesTheLog) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::string log_path = temp_path("delta_poison.log");
  DeltaLog log(&store, log_path);
  log.publish(std::vector<atlas::Measurement>{row(0, 0, 0, 10.0f)});

  // A batch the store rejects (unresolvable probe) must not grow the log.
  EXPECT_THROW(
      log.publish(std::vector<atlas::Measurement>{row(99, 0, 1, 10.0f)}),
      std::invalid_argument);
  EXPECT_EQ(log.segments(), 1u);

  ColumnarStore recovered(&world.fleet, &world.registry, StoreConfig{1});
  EXPECT_EQ(apply_delta_log(recovered, log_path), 1u);
  EXPECT_EQ(recovered.rows_stored(), 1u);
}

TEST(DeltaLog, CampaignSinkLogReplaysToTheSameStore) {
  // End to end: a campaign streams through the DeltaLog sink from an
  // empty base; replaying the log alone rebuilds the identical store.
  const CampaignWorld world;
  ColumnarStore live(&world.fleet, &world.registry, StoreConfig{2});
  const std::string log_path = temp_path("delta_campaign.log");
  DeltaLog log(&live, log_path);

  atlas::Campaign campaign(world.fleet, world.registry, world.model,
                           world.config);
  campaign.attach_sink(&log);
  (void)campaign.run();
  ASSERT_GT(log.segments(), 0u);
  live.refresh();

  ColumnarStore recovered(&world.fleet, &world.registry, StoreConfig{1});
  EXPECT_EQ(apply_delta_log(recovered, log_path), log.segments());
  recovered.refresh();
  expect_same_store(live, recovered);
}

// ---------------------------------------------- shipped scenarios

/// Deterministic mixed query batch over a fleet — the shape
/// test_serve's scenario suite uses: every kind, location and ISO-2
/// resolution, per-access filters, real and bogus app slugs.
std::vector<Query> scenario_queries(const atlas::ProbeFleet& fleet) {
  static const char* kApps[] = {"cloud-gaming", "no-such-app"};
  std::vector<Query> queries;
  const std::span<const atlas::Probe> probes = fleet.probes();
  for (std::size_t i = 0; i < probes.size(); i += 3) {
    const atlas::Probe& probe = probes[i];
    Query q;
    q.kind = static_cast<QueryKind>(i % 3);
    q.where = probe.endpoint.location;
    if (i % 2 == 0) q.country_iso2 = probe.country->iso2;
    q.any_access = (i % 5) != 0;
    q.access = probe.endpoint.access;
    if (q.kind == QueryKind::kFeasibility) q.app_id = kApps[(i / 3) % 2];
    if (q.kind == QueryKind::kTopK) {
      q.budget_ms = 20.0 + static_cast<double>(i % 7) * 30.0;
      q.k = static_cast<std::uint32_t>(i % 6);
    }
    queries.push_back(q);
  }
  return queries;
}

class ScenarioSnapshot : public testing::TestWithParam<const char*> {};

// The acceptance bar for persistence: on every shipped scenario, a
// store loaded from a snapshot answers the full mixed query batch
// byte-identically to the live-built store it was saved from — at 1
// and 8 oracle threads, eager and lazy — and re-saving it reproduces
// the image bit for bit.
TEST_P(ScenarioSnapshot, LoadedStoreAnswersIdentically) {
  const std::string path =
      std::string(SHEARS_SOURCE_DIR) + "/scenarios/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  config::Scenario s = config::parse_scenario(in);
  s.fleet.probe_count = std::min<std::size_t>(s.fleet.probe_count, 256);
  s.campaign.duration_days = 1;

  const topology::CloudRegistry registry = s.make_registry();
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(s.fleet);
  const net::LatencyModel model(s.model);
  const faults::FaultSchedule schedule = s.make_fault_schedule();
  const atlas::Campaign campaign(fleet, registry, model, s.campaign,
                                 schedule.empty() ? nullptr : &schedule);
  const atlas::MeasurementDataset dataset = campaign.run();
  ASSERT_GT(dataset.size(), 0u);

  const ColumnarStore live = ColumnarStore::build(dataset, StoreConfig{1});
  const std::vector<Query> queries = scenario_queries(fleet);
  const std::vector<Answer> expected =
      Oracle(&live, OracleConfig{1, {}}).answer(queries);

  std::ostringstream image;
  save_snapshot(live, image);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const bool lazy : {false, true}) {
      SnapshotLoadOptions options;
      options.lazy_summaries = lazy;
      const std::string bytes = image.str();
      ColumnarStore loaded = load_snapshot(
          {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()},
          &fleet, &registry, StoreConfig{threads}, options);
      if (lazy) loaded.refresh();
      const std::vector<Answer> got =
          Oracle(&loaded, OracleConfig{threads, {}}).answer(queries);
      std::string why;
      EXPECT_TRUE(answers_identical(expected, got, why))
          << GetParam() << " (threads " << threads << ", lazy " << lazy
          << "): " << why;
      std::ostringstream resaved;
      save_snapshot(loaded, resaved);
      EXPECT_EQ(resaved.str(), image.str())
          << GetParam() << ": re-saved image diverges";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShippedScenarios, ScenarioSnapshot,
                         testing::Values("paper_9_months.ini",
                                         "five_g_delivers.ini",
                                         "cloud_2014.ini",
                                         "hyperscalers_only.ini",
                                         "stress_noisy_network.ini",
                                         "faulted_9_months.ini"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

// ---------------------------------------------------------- fingerprints

TEST(Fingerprints, SensitiveToEveryIdentityField) {
  const TinyWorld world;
  const std::uint64_t base = fleet_fingerprint(world.fleet);
  EXPECT_EQ(base, fleet_fingerprint(world.fleet));  // deterministic

  const atlas::ProbeFleet moved = atlas::ProbeFleet::from_probes({
      make_probe(0, "DE", net::AccessTechnology::kEthernet,
                 atlas::Environment::kHome),
      make_probe(1, "DE", net::AccessTechnology::kLte,
                 atlas::Environment::kHome),
      make_probe(2, "AT", net::AccessTechnology::kEthernet,  // FR -> AT
                 atlas::Environment::kHome),
      make_probe(3, "DE", net::AccessTechnology::kEthernet,
                 atlas::Environment::kDatacenter),
  });
  EXPECT_NE(base, fleet_fingerprint(moved));

  const std::uint64_t registry_base = registry_fingerprint(world.registry);
  const topology::CloudRegistry shrunk({topology::all_regions().data(),
                                        topology::all_regions().data() + 1});
  EXPECT_NE(registry_base, registry_fingerprint(shrunk));
}

}  // namespace
}  // namespace shears::serve
