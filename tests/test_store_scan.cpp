// Byte-identity gates for the vectorized store scan kernels: every
// kernel family (scalar reference, AVX2 when the build/CPU carry it)
// must reproduce the Ecdf-based RegionStats summaries bit for bit, and
// the order-statistic primitives must agree exactly with their textbook
// counterparts on random columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "serve/columnar.hpp"
#include "serve/scan.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace shears::serve {
namespace {

/// Keeps the fleet/registry alive for the lifetime of the store.
struct ScanWorld {
  topology::CloudRegistry registry =
      topology::CloudRegistry::campaign_footprint();
  atlas::ProbeFleet fleet;
  net::LatencyModel model;
  atlas::CampaignConfig config;

  ScanWorld() : fleet(atlas::ProbeFleet::generate(placement())) {
    config.duration_days = 2;
    config.seed = 29;
    config.threads = 1;
  }

  static atlas::PlacementConfig placement() {
    atlas::PlacementConfig p;
    p.probe_count = geo::country_count() + 60;
    p.seed = 17;
    return p;
  }

  [[nodiscard]] atlas::MeasurementDataset run() const {
    return atlas::Campaign(fleet, registry, model, config).run();
  }
};

std::vector<float> random_column(std::size_t n, std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<float> data(n);
  for (float& v : data) {
    v = static_cast<float>(rng.uniform(0.0, 400.0));
  }
  return data;
}

void expect_bitwise(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void check_store_against_kernels(const ColumnarStore& store,
                                 const ScanKernels& kernels) {
  std::size_t cells = 0;
  for (const ColumnarStore::ShardView& view : store.shards()) {
    const std::size_t country = country_index_of(view.country);
    const std::span<const RegionStats> stats =
        store.shard_stats(country, view.access);
    for (std::uint16_t region = 0; region < stats.size(); ++region) {
      const RegionStats& reference = stats[region];
      const ColumnarStore::ScanSummary scan =
          store.scan_region(country, view.access, region, 100.0f, kernels);
      ASSERT_EQ(scan.count, reference.count);
      if (reference.empty()) continue;
      ++cells;
      expect_bitwise(scan.min_ms, reference.min_ms, kernels.name);
      expect_bitwise(scan.median_ms, reference.median_ms, kernels.name);
      expect_bitwise(scan.p95_ms, reference.p95_ms, kernels.name);
      // Cross-check the feasibility count against the raw column.
      std::size_t within = 0;
      for (std::size_t i = 0; i < view.rtt_ms.size(); ++i) {
        if (view.region_index[i] == region && view.rtt_ms[i] <= 100.0f) {
          ++within;
        }
      }
      EXPECT_EQ(scan.within_budget, within);
    }
  }
  EXPECT_GT(cells, 0u) << "dataset produced no non-empty cells";
}

TEST(StoreScan, ScalarKernelsMatchEcdfSummariesBitwise) {
  const ScanWorld world;
  const ColumnarStore store = ColumnarStore::build(world.run());
  check_store_against_kernels(store, scalar_scan_kernels());
}

TEST(StoreScan, ActiveKernelsMatchEcdfSummariesBitwise) {
  const ScanWorld world;
  const ColumnarStore store = ColumnarStore::build(world.run());
  check_store_against_kernels(store, active_scan_kernels());
}

TEST(StoreScan, CountLeMatchesStdCount) {
  const std::vector<float> data = random_column(10007, 3);
  for (const ScanKernels* kernels :
       {&scalar_scan_kernels(), &active_scan_kernels()}) {
    for (const float threshold : {-1.0f, 0.0f, 55.5f, 200.0f, 401.0f}) {
      const auto expected = static_cast<std::size_t>(std::count_if(
          data.begin(), data.end(),
          [threshold](float v) { return v <= threshold; }));
      EXPECT_EQ(kernels->count_le(data.data(), data.size(), threshold),
                expected)
          << kernels->name << " @ " << threshold;
    }
  }
}

TEST(StoreScan, MinAndKthSmallestMatchSortedColumn) {
  for (const std::size_t n : {1u, 2u, 7u, 8u, 9u, 4097u}) {
    std::vector<float> data = random_column(n, 1000 + n);
    std::vector<float> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    for (const ScanKernels* kernels :
         {&scalar_scan_kernels(), &active_scan_kernels()}) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(
                    kernels->min(data.data(), data.size())),
                std::bit_cast<std::uint32_t>(sorted.front()))
          << kernels->name << " n=" << n;
      for (const std::size_t k : {std::size_t{0}, n / 2, n - 1}) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(
                      kth_smallest(*kernels, data.data(), data.size(), k)),
                  std::bit_cast<std::uint32_t>(sorted[k]))
            << kernels->name << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(StoreScan, QuantileType7MatchesEcdfBitwise) {
  const std::vector<float> data = random_column(999, 77);
  std::vector<double> widened(data.begin(), data.end());
  std::sort(widened.begin(), widened.end());
  const stats::Ecdf ecdf = stats::Ecdf::from_sorted(std::move(widened));
  for (const ScanKernels* kernels :
       {&scalar_scan_kernels(), &active_scan_kernels()}) {
    for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.999, 1.0}) {
      expect_bitwise(quantile_type7(*kernels, data.data(), data.size(), q),
                     ecdf.quantile(q), kernels->name);
    }
  }
}

TEST(StoreScan, ForceScalarEnvPinsDispatch) {
  // active_scan_kernels() latches on first use, so exercise the dispatch
  // decision indirectly: whatever family is active must be one of the
  // two known families, and the scalar family is always available.
  const ScanKernels& active = active_scan_kernels();
  const bool is_scalar = std::string_view(active.name) == "scalar";
  const bool is_avx2 = std::string_view(active.name) == "avx2";
  EXPECT_TRUE(is_scalar || is_avx2);
  if (detail::avx2_scan_kernels() == nullptr) {
    EXPECT_TRUE(is_scalar);
  }
}

}  // namespace
}  // namespace shears::serve
