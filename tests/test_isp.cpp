// Tests for the ISP-market model and per-ASN analysis.
#include <gtest/gtest.h>

#include <set>

#include "atlas/campaign.hpp"
#include "atlas/isp.hpp"
#include "atlas/placement.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::atlas {
namespace {

TEST(IspMarket, DeterministicAndWellFormed) {
  const geo::Country* de = geo::find_country("DE");
  const auto& market_a = isp_market(*de);
  const auto& market_b = isp_market(*de);
  EXPECT_EQ(&market_a, &market_b);  // cached
  ASSERT_GE(market_a.size(), 5u);   // 4 fixed + 3 mobile for tier 1
  double fixed_share = 0.0;
  double mobile_share = 0.0;
  std::set<std::uint32_t> asns;
  for (const IspProfile& isp : market_a) {
    EXPECT_FALSE(isp.name.empty());
    EXPECT_GT(isp.market_share, 0.0);
    EXPECT_GT(isp.quality, 0.5);
    EXPECT_LT(isp.quality, 2.5);
    EXPECT_TRUE(asns.insert(isp.asn).second);
    (isp.mobile ? mobile_share : fixed_share) += isp.market_share;
  }
  EXPECT_NEAR(fixed_share, 1.0, 1e-9);
  EXPECT_NEAR(mobile_share, 1.0, 1e-9);
}

TEST(IspMarket, PoorTiersHaveFewerOperators) {
  const geo::Country* de = geo::find_country("DE");  // tier 1
  const geo::Country* td = geo::find_country("TD");  // tier 4
  EXPECT_GT(isp_market(*de).size(), isp_market(*td).size());
}

TEST(IspMarket, IncumbentLeadsTheQualityLadder) {
  for (const char* iso2 : {"DE", "BR", "IN", "NG"}) {
    const geo::Country* c = geo::find_country(iso2);
    const auto fixed = isps_in_segment(*c, /*mobile=*/false);
    ASSERT_GE(fixed.size(), 2u);
    EXPECT_LT(fixed.front()->quality, fixed.back()->quality) << iso2;
    EXPECT_GT(fixed.front()->market_share, fixed.back()->market_share);
  }
}

TEST(IspMarket, SegmentsPartitionTheMarket) {
  const geo::Country* us = geo::find_country("US");
  const auto fixed = isps_in_segment(*us, false);
  const auto mobile = isps_in_segment(*us, true);
  EXPECT_EQ(fixed.size() + mobile.size(), isp_market(*us).size());
  for (const IspProfile* isp : fixed) EXPECT_FALSE(isp->mobile);
  for (const IspProfile* isp : mobile) EXPECT_TRUE(isp->mobile);
}

TEST(Placement, ProbesCarryIspAttribution) {
  PlacementConfig config;
  config.probe_count = 800;
  const ProbeFleet fleet = ProbeFleet::generate(config);
  std::size_t attributed = 0;
  for (const Probe& p : fleet.probes()) {
    if (p.isp == nullptr) continue;
    ++attributed;
    EXPECT_DOUBLE_EQ(p.endpoint.access_quality, p.isp->quality);
    // Cellular probes belong to mobile operators, wired/WiFi to fixed.
    const bool cellular = p.endpoint.access == net::AccessTechnology::kLte ||
                          p.endpoint.access == net::AccessTechnology::kFiveG;
    EXPECT_EQ(p.isp->mobile, cellular) << p.isp->name;
  }
  EXPECT_EQ(attributed, fleet.size());
}

TEST(Placement, MarketShareIsRoughlyRespected) {
  PlacementConfig config;
  config.probe_count = 6400;
  const ProbeFleet fleet = ProbeFleet::generate(config);
  const geo::Country* de = geo::find_country("DE");
  const auto fixed = isps_in_segment(*de, false);
  std::size_t incumbent = 0;
  std::size_t total = 0;
  for (const Probe& p : fleet.probes()) {
    if (p.country != de || p.isp == nullptr || p.isp->mobile) continue;
    ++total;
    incumbent += p.isp == fixed.front();
  }
  ASSERT_GT(total, 100u);
  EXPECT_NEAR(static_cast<double>(incumbent) / static_cast<double>(total),
              fixed.front()->market_share, 0.1);
}

TEST(IspAnalysis, ComparisonOrdersByLatency) {
  PlacementConfig placement;
  placement.probe_count = 1600;
  const ProbeFleet fleet = ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config;
  config.duration_days = 8;
  const auto dataset = Campaign(fleet, registry, model, config).run();

  const auto stats = core::isp_comparison(dataset, "DE");
  ASSERT_GE(stats.size(), 3u);
  double prev = 0.0;
  std::size_t probes = 0;
  for (const core::IspStats& s : stats) {
    ASSERT_NE(s.isp, nullptr);
    EXPECT_GE(s.median_min_rtt_ms, prev);
    prev = s.median_min_rtt_ms;
    probes += s.probe_count;
  }
  EXPECT_GT(probes, 100u);
  // Quality ordering shows through: the best-quality fixed ISP beats the
  // worst one on median latency.
  const geo::Country* de = geo::find_country("DE");
  const auto fixed = isps_in_segment(*de, false);
  double best_quality_median = -1.0;
  double worst_quality_median = -1.0;
  for (const core::IspStats& s : stats) {
    if (s.isp == fixed.front()) best_quality_median = s.median_min_rtt_ms;
    if (s.isp == fixed.back()) worst_quality_median = s.median_min_rtt_ms;
  }
  ASSERT_GT(best_quality_median, 0.0);
  ASSERT_GT(worst_quality_median, 0.0);
  EXPECT_LT(best_quality_median, worst_quality_median);
}

TEST(IspAnalysis, UnknownCountryIsEmpty) {
  PlacementConfig placement;
  placement.probe_count = 400;
  const ProbeFleet fleet = ProbeFleet::generate(placement);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  CampaignConfig config;
  config.duration_days = 2;
  const auto dataset = Campaign(fleet, registry, model, config).run();
  EXPECT_TRUE(core::isp_comparison(dataset, "XX").empty());
}

}  // namespace
}  // namespace shears::atlas
