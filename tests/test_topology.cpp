// Tests for the cloud-topology substrate: the 101-region dataset and the
// registry's snapshot / query semantics.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "geo/country.hpp"
#include "topology/provider.hpp"
#include "topology/region.hpp"
#include "topology/registry.hpp"

namespace shears::topology {
namespace {

TEST(Provider, SevenProviders) {
  EXPECT_EQ(kProviderCount, 7u);
  std::set<std::string_view> names;
  for (const CloudProvider p : kAllProviders) names.insert(to_string(p));
  EXPECT_EQ(names.size(), 7u);
}

TEST(Provider, BackboneClassesMatchPaper) {
  // §4.1: Amazon/Google(/Azure/Alibaba) run private backbones; Linode,
  // Digital Ocean (and Vultr) largely ride the public Internet.
  EXPECT_EQ(backbone_class(CloudProvider::kAmazon), BackboneClass::kPrivate);
  EXPECT_EQ(backbone_class(CloudProvider::kGoogle), BackboneClass::kPrivate);
  EXPECT_EQ(backbone_class(CloudProvider::kAzure), BackboneClass::kPrivate);
  EXPECT_EQ(backbone_class(CloudProvider::kDigitalOcean),
            BackboneClass::kPublic);
  EXPECT_EQ(backbone_class(CloudProvider::kLinode), BackboneClass::kPublic);
  EXPECT_EQ(backbone_class(CloudProvider::kVultr), BackboneClass::kPublic);
}

TEST(Provider, NameRoundTrip) {
  for (const CloudProvider p : kAllProviders) {
    const auto parsed = provider_from_string(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(provider_from_string("Initech").has_value());
}

TEST(RegionData, Exactly101RegionsIn21Countries) {
  EXPECT_EQ(region_count(), 101u);
  std::set<std::string_view> countries;
  for (const CloudRegion& r : all_regions()) countries.insert(r.country_iso2);
  EXPECT_EQ(countries.size(), 21u);  // §4.1: "101 datacenters in 21 countries"
}

TEST(RegionData, AllProvidersRepresented) {
  std::set<CloudProvider> providers;
  for (const CloudRegion& r : all_regions()) providers.insert(r.provider);
  EXPECT_EQ(providers.size(), kProviderCount);
}

TEST(RegionData, FieldsValid) {
  std::set<std::pair<CloudProvider, std::string_view>> ids;
  for (const CloudRegion& r : all_regions()) {
    EXPECT_FALSE(r.region_id.empty());
    EXPECT_FALSE(r.city.empty());
    EXPECT_TRUE(geo::is_valid(r.location)) << r.region_id;
    EXPECT_GE(r.launch_year, 2004);
    EXPECT_LE(r.launch_year, 2020);
    // region_id unique within a provider.
    EXPECT_TRUE(ids.insert({r.provider, r.region_id}).second) << r.region_id;
    // Hosting country must resolve in the geo registry.
    EXPECT_NE(geo::find_country(r.country_iso2), nullptr) << r.country_iso2;
  }
}

TEST(RegionData, RegionSitsInItsCountry) {
  // Region coordinates must be plausibly near the hosting country's
  // registry site (same metro area or at least same region of the world).
  for (const CloudRegion& r : all_regions()) {
    const geo::Country* c = geo::find_country(r.country_iso2);
    ASSERT_NE(c, nullptr);
    EXPECT_LT(geo::haversine_km(r.location, c->site), 4500.0)
        << r.region_id << " vs " << c->name;
  }
}

TEST(RegionData, AmazonGrewFromAHandful) {
  // §4: "Amazon's cloud has increased from 3 to 22 datacenter locations".
  // In our registry the 2010 AWS footprint must be a small handful and the
  // 2020 footprint an order of magnitude larger.
  std::size_t aws_2010 = 0;
  std::size_t aws_2020 = 0;
  for (const CloudRegion& r : all_regions()) {
    if (r.provider != CloudProvider::kAmazon) continue;
    if (r.launch_year <= 2010) ++aws_2010;
    ++aws_2020;
  }
  EXPECT_LE(aws_2010, 5u);
  EXPECT_GE(aws_2020, 18u);
}

TEST(Registry, CampaignFootprintIsFullDataset) {
  const CloudRegistry reg = CloudRegistry::campaign_footprint();
  EXPECT_EQ(reg.size(), region_count());
  EXPECT_EQ(reg.hosting_countries().size(), 21u);
}

TEST(Registry, FootprintSnapshotsAreMonotone) {
  std::size_t prev = 0;
  for (const int year : {2008, 2010, 2012, 2014, 2016, 2018, 2020}) {
    const std::size_t n = CloudRegistry::footprint_as_of(year).size();
    EXPECT_GE(n, prev) << year;
    prev = n;
  }
  EXPECT_EQ(CloudRegistry::footprint_as_of(2020).size(), region_count());
  EXPECT_EQ(CloudRegistry::footprint_as_of(2003).size(), 0u);
}

TEST(Registry, AfricaHadNoRegionBefore2019) {
  // Cloud presence in Africa arrived only at the very end of the study
  // window (the paper: "only one operating region").
  const CloudRegistry reg_2018 = CloudRegistry::footprint_as_of(2018);
  EXPECT_TRUE(reg_2018.in_continent(geo::Continent::kAfrica).empty());
  const CloudRegistry full = CloudRegistry::campaign_footprint();
  const auto africa = full.in_continent(geo::Continent::kAfrica);
  EXPECT_GE(africa.size(), 1u);
  EXPECT_LE(africa.size(), 2u);
}

TEST(Registry, ProviderFilter) {
  const CloudRegistry aws =
      CloudRegistry::for_providers({CloudProvider::kAmazon});
  EXPECT_EQ(aws.size(), 20u);
  for (const CloudRegion* r : aws.regions()) {
    EXPECT_EQ(r->provider, CloudProvider::kAmazon);
  }
  const CloudRegistry none = CloudRegistry::for_providers({});
  EXPECT_TRUE(none.empty());
}

TEST(Registry, OfProviderMatchesForProviders) {
  const CloudRegistry full = CloudRegistry::campaign_footprint();
  std::size_t total = 0;
  for (const CloudProvider p : kAllProviders) {
    total += full.of_provider(p).size();
  }
  EXPECT_EQ(total, full.size());
}

TEST(Registry, NearestFindsLocalRegion) {
  const CloudRegistry reg = CloudRegistry::campaign_footprint();
  // A point in central Frankfurt must resolve to a Frankfurt region.
  const auto best = reg.nearest({50.11, 8.68});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->region->city, "Frankfurt");
  EXPECT_LT(best->distance_km, 10.0);
}

TEST(Registry, NearestNIsSortedAndBounded) {
  const CloudRegistry reg = CloudRegistry::campaign_footprint();
  const auto ranked = reg.nearest_n({35.68, 139.69}, 10);  // Tokyo
  ASSERT_EQ(ranked.size(), 10u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].distance_km, ranked[i - 1].distance_km);
  }
  EXPECT_EQ(ranked.front().region->city, "Tokyo");
  // Requesting more than available returns everything.
  EXPECT_EQ(reg.nearest_n({0.0, 0.0}, 1000).size(), reg.size());
}

TEST(Registry, EmptyRegistryBehaviour) {
  const CloudRegistry empty{std::vector<const CloudRegion*>{}};
  EXPECT_FALSE(empty.nearest({0.0, 0.0}).has_value());
  EXPECT_TRUE(std::isinf(empty.nearest_distance_km({0.0, 0.0})));
  EXPECT_TRUE(empty.hosting_countries().empty());
}

TEST(Registry, RejectsNullRegion) {
  std::vector<const CloudRegion*> bad = {nullptr};
  EXPECT_THROW(CloudRegistry{std::move(bad)}, std::invalid_argument);
}

TEST(Registry, ContinentCoverageMatchesPaper) {
  // Fig. 3a: Europe, North America and Asia are dense; Africa and South
  // America sparse.
  const CloudRegistry reg = CloudRegistry::campaign_footprint();
  std::map<geo::Continent, std::size_t> counts;
  for (const geo::Continent c : geo::kAllContinents) {
    counts[c] = reg.in_continent(c).size();
  }
  EXPECT_GE(counts[geo::Continent::kEurope], 20u);
  EXPECT_GE(counts[geo::Continent::kNorthAmerica], 20u);
  EXPECT_GE(counts[geo::Continent::kAsia], 20u);
  EXPECT_LE(counts[geo::Continent::kAfrica], 2u);
  EXPECT_LE(counts[geo::Continent::kSouthAmerica], 4u);
  std::size_t total = 0;
  for (const auto& [c, n] : counts) total += n;
  EXPECT_EQ(total, reg.size());
}

}  // namespace
}  // namespace shears::topology
