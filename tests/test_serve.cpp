// The serving layer: spatial index exactness, columnar-store build /
// append identity, the campaign sink hook, oracle semantics, and — on
// every shipped scenario — byte-identity of the indexed oracle against
// the brute-force full-scan reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "atlas/tags.hpp"
#include "config/scenario.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/coordinates.hpp"
#include "geo/country.hpp"
#include "geo/spatial_index.hpp"
#include "net/latency_model.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "serve/reference.hpp"
#include "topology/registry.hpp"

namespace shears::serve {
namespace {

// ---------------------------------------------------------------- spatial

TEST(SpatialIndex, EmptyIndexAnswersEmpty) {
  const geo::SpatialIndex index{};
  EXPECT_FALSE(index.nearest({0.0, 0.0}).has_value());
  EXPECT_TRUE(index.nearest_n({0.0, 0.0}, 3).empty());
  EXPECT_TRUE(index.within_radius({0.0, 0.0}, 1000.0).empty());
}

TEST(SpatialIndex, InvalidPointThrowsAtBuild) {
  const std::vector<geo::GeoPoint> points = {{91.0, 0.0}};
  EXPECT_THROW(geo::SpatialIndex{points}, std::invalid_argument);
}

TEST(SpatialIndex, AntimeridianIsNotASeam) {
  // 0.5° either side of the antimeridian is ~111 km of real distance;
  // an index over raw longitude would see ~39 900 km.
  const std::vector<geo::GeoPoint> points = {
      {0.0, 179.5}, {0.0, -179.5}, {0.0, 0.0}};
  const geo::SpatialIndex index(points);

  const auto east = index.nearest({0.0, 179.9});
  ASSERT_TRUE(east.has_value());
  EXPECT_EQ(east->id, 0u);
  EXPECT_LT(east->distance_km, 50.0);

  const auto west = index.nearest({0.0, -179.9});
  ASSERT_TRUE(west.has_value());
  EXPECT_EQ(west->id, 1u);
  EXPECT_LT(west->distance_km, 50.0);

  // Both seam points sit within 120 km of a query on the line itself
  // (their distances differ only in the last float bits, so assert the
  // set, not the order).
  auto both = index.within_radius({0.0, 180.0}, 120.0);
  ASSERT_EQ(both.size(), 2u);
  std::sort(both.begin(), both.end(),
            [](const geo::SpatialHit& a, const geo::SpatialHit& b) {
              return a.id < b.id;
            });
  EXPECT_EQ(both[0].id, 0u);
  EXPECT_EQ(both[1].id, 1u);
}

TEST(SpatialIndex, PolesCollapseLongitude) {
  // At 89.9°N every longitude is within ~11 km of the pole.
  const std::vector<geo::GeoPoint> points = {
      {89.9, 0.0}, {89.9, 180.0}, {-89.9, 90.0}, {10.0, 10.0}};
  const geo::SpatialIndex index(points);

  const auto north = index.within_radius({90.0, 45.0}, 50.0);
  ASSERT_EQ(north.size(), 2u);
  EXPECT_EQ(north[0].id, 0u);
  EXPECT_EQ(north[1].id, 1u);

  const auto south = index.nearest({-90.0, -123.0});
  ASSERT_TRUE(south.has_value());
  EXPECT_EQ(south->id, 2u);
  EXPECT_LT(south->distance_km, 50.0);
}

TEST(SpatialIndex, RadiusBoundaryIsInclusive) {
  const std::vector<geo::GeoPoint> points = {{0.0, 0.0}, {0.0, 1.0}};
  const geo::SpatialIndex index(points);
  const double edge = geo::haversine_km({0.0, 0.0}, {0.0, 1.0});
  const auto hits = index.within_radius({0.0, 0.0}, edge);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[1].id, 1u);
  EXPECT_EQ(hits[1].distance_km, edge);
}

TEST(SpatialIndex, DuplicatePointsTieBreakTowardsSmallerId) {
  const std::vector<geo::GeoPoint> points = {
      {10.0, 20.0}, {10.0, 20.0}, {10.0, 20.0}, {50.0, 60.0}};
  const geo::SpatialIndex index(points);
  const auto hit = index.nearest({10.0, 20.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 0u);
  EXPECT_EQ(hit->distance_km, 0.0);
  const auto top = index.nearest_n({10.0, 20.0}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[1].id, 1u);
  EXPECT_EQ(top[2].id, 2u);
}

// ---------------------------------------------------------------- store

atlas::Probe make_probe(atlas::ProbeId id, const char* iso2,
                        net::AccessTechnology access,
                        atlas::Environment environment) {
  atlas::Probe probe;
  probe.id = id;
  probe.country = geo::find_country(iso2);
  EXPECT_NE(probe.country, nullptr) << iso2;
  probe.endpoint.location = probe.country->site;
  probe.endpoint.tier = probe.country->tier;
  probe.endpoint.access = access;
  probe.environment = environment;
  probe.tags = atlas::make_tags(access, environment, true);
  return probe;
}

atlas::Measurement row(atlas::ProbeId probe, std::uint16_t region,
                       std::uint32_t tick, float min_ms,
                       std::uint8_t received = 3) {
  atlas::Measurement m;
  m.probe_id = probe;
  m.region_index = region;
  m.tick = tick;
  m.min_ms = min_ms;
  m.avg_ms = min_ms + 1.0f;
  m.max_ms = min_ms + 2.0f;
  m.sent = 3;
  m.received = received;
  return m;
}

/// A tiny fixed world: DE ethernet, DE LTE, FR ethernet, plus one
/// privileged DE probe the store must ignore.
struct TinyWorld {
  topology::CloudRegistry registry;
  atlas::ProbeFleet fleet;

  TinyWorld()
      : registry({topology::all_regions().data(),
                  topology::all_regions().data() + 1,
                  topology::all_regions().data() + 2}),
        fleet(atlas::ProbeFleet::from_probes({
            make_probe(0, "DE", net::AccessTechnology::kEthernet,
                       atlas::Environment::kHome),
            make_probe(1, "DE", net::AccessTechnology::kLte,
                       atlas::Environment::kHome),
            make_probe(2, "FR", net::AccessTechnology::kEthernet,
                       atlas::Environment::kHome),
            make_probe(3, "DE", net::AccessTechnology::kEthernet,
                       atlas::Environment::kDatacenter),
        })) {}
};

TEST(ColumnarStore, HandBuiltRowsYieldExactSummaries) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  const std::vector<atlas::Measurement> rows = {
      row(0, 0, 0, 20.0f), row(0, 0, 1, 10.0f), row(0, 0, 2, 40.0f),
      row(0, 0, 3, 30.0f),                     // DE/eth region 0
      row(1, 0, 0, 50.0f), row(1, 0, 1, 5.0f),  // DE/lte region 0
      row(2, 1, 0, 70.0f),                     // FR/eth region 1
      row(3, 0, 0, 1.0f),                      // privileged: dropped
      row(0, 1, 0, 90.0f, 0),                  // lost: dropped
  };
  store.append(rows);
  store.refresh();

  EXPECT_EQ(store.rows_stored(), 7u);
  EXPECT_EQ(store.rows_dropped(), 2u);
  EXPECT_EQ(store.shard_count(), 3u);

  const std::size_t de = country_index_of(geo::find_country("DE"));
  const auto eth = store.shard_stats(de, net::AccessTechnology::kEthernet);
  ASSERT_EQ(eth.size(), world.registry.size());
  EXPECT_EQ(eth[0].count, 4u);
  EXPECT_EQ(eth[0].min_ms, 10.0);
  EXPECT_EQ(eth[0].median_ms, 25.0);  // interp between 20 and 30
  EXPECT_EQ(eth[0].p95_ms, 38.5);     // h = 2.85 over {10,20,30,40}
  EXPECT_TRUE(eth[1].empty());        // the lost row never landed

  const auto lte = store.shard_stats(de, net::AccessTechnology::kLte);
  EXPECT_EQ(lte[0].count, 2u);
  EXPECT_EQ(lte[0].min_ms, 5.0);
  EXPECT_EQ(lte[0].median_ms, 27.5);

  // Country rollup = exact merge of the two access shards.
  const auto rollup = store.country_stats(de);
  EXPECT_EQ(rollup[0].count, 6u);
  EXPECT_EQ(rollup[0].min_ms, 5.0);
  EXPECT_EQ(rollup[0].median_ms, 25.0);  // {5,10,20,30,40,50}, h = 2.5
  EXPECT_EQ(rollup[0].p95_ms, 47.5);     // h = 4.75

  // Raw columns keep ingestion order within the shard.
  const auto shards = store.shards();
  ASSERT_EQ(shards.size(), 3u);
  const auto de_eth = std::find_if(
      shards.begin(), shards.end(), [](const ColumnarStore::ShardView& v) {
        return v.country == geo::find_country("DE") &&
               v.access == net::AccessTechnology::kEthernet;
      });
  ASSERT_NE(de_eth, shards.end());
  ASSERT_EQ(de_eth->rtt_ms.size(), 4u);
  EXPECT_EQ(de_eth->rtt_ms[0], 20.0f);
  EXPECT_EQ(de_eth->rtt_ms[3], 30.0f);
}

TEST(ColumnarStore, StaleStoreRefusesReads) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(std::vector<atlas::Measurement>{row(0, 0, 0, 20.0f)});
  EXPECT_FALSE(store.fresh());
  EXPECT_THROW((void)store.shard_stats(0, net::AccessTechnology::kEthernet),
               std::logic_error);
  EXPECT_THROW((void)store.country_stats(0), std::logic_error);
  store.refresh();
  EXPECT_TRUE(store.fresh());
}

TEST(ColumnarStore, UnresolvableRowThrows) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  EXPECT_THROW(
      store.append(std::vector<atlas::Measurement>{row(99, 0, 0, 20.0f)}),
      std::invalid_argument);
  EXPECT_THROW(
      store.append(std::vector<atlas::Measurement>{row(0, 200, 0, 20.0f)}),
      std::invalid_argument);
}

void expect_same_store(const ColumnarStore& a, const ColumnarStore& b) {
  ASSERT_EQ(a.rows_stored(), b.rows_stored());
  ASSERT_EQ(a.rows_dropped(), b.rows_dropped());
  const auto shards_a = a.shards();
  const auto shards_b = b.shards();
  ASSERT_EQ(shards_a.size(), shards_b.size());
  for (std::size_t s = 0; s < shards_a.size(); ++s) {
    EXPECT_EQ(shards_a[s].country, shards_b[s].country);
    EXPECT_EQ(shards_a[s].access, shards_b[s].access);
    ASSERT_EQ(shards_a[s].rtt_ms.size(), shards_b[s].rtt_ms.size());
    for (std::size_t i = 0; i < shards_a[s].rtt_ms.size(); ++i) {
      ASSERT_EQ(shards_a[s].probe_ids[i], shards_b[s].probe_ids[i]);
      ASSERT_EQ(shards_a[s].region_index[i], shards_b[s].region_index[i]);
      ASSERT_EQ(shards_a[s].ticks[i], shards_b[s].ticks[i]);
      ASSERT_EQ(shards_a[s].rtt_ms[i], shards_b[s].rtt_ms[i]);
    }
    const std::size_t country = country_index_of(shards_a[s].country);
    const auto stats_a = a.shard_stats(country, shards_a[s].access);
    const auto stats_b = b.shard_stats(country, shards_b[s].access);
    ASSERT_EQ(stats_a.size(), stats_b.size());
    for (std::size_t r = 0; r < stats_a.size(); ++r) {
      ASSERT_EQ(stats_a[r].count, stats_b[r].count);
      ASSERT_EQ(stats_a[r].min_ms, stats_b[r].min_ms);
      ASSERT_EQ(stats_a[r].median_ms, stats_b[r].median_ms);
      ASSERT_EQ(stats_a[r].p95_ms, stats_b[r].p95_ms);
    }
  }
}

/// A small but real campaign dataset for the identity tests.
struct CampaignWorld {
  topology::CloudRegistry registry = topology::CloudRegistry::campaign_footprint();
  atlas::ProbeFleet fleet;
  net::LatencyModel model;
  atlas::CampaignConfig config;

  CampaignWorld() : fleet(atlas::ProbeFleet::generate(small_fleet())), model(net::LatencyModelConfig{}) {
    config.duration_days = 1;
    config.interval_hours = 6;
    config.seed = 20200913;
  }

  static atlas::PlacementConfig small_fleet() {
    atlas::PlacementConfig p;
    p.probe_count = geo::country_count() + 40;
    p.seed = 7;
    return p;
  }

  [[nodiscard]] atlas::MeasurementDataset run() const {
    return atlas::Campaign(fleet, registry, model, config).run();
  }
};

TEST(ColumnarStore, AppendChunkingAndThreadCountAreInvisible) {
  const CampaignWorld world;
  const atlas::MeasurementDataset dataset = world.run();
  ASSERT_GT(dataset.size(), 0u);

  const ColumnarStore one_shot = ColumnarStore::build(dataset, StoreConfig{1});

  // N then M (uneven chunks, refresh mid-stream), 8 worker threads.
  ColumnarStore chunked(&dataset.fleet(), &dataset.registry(), StoreConfig{8});
  const auto rows = dataset.records();
  const std::size_t cut = rows.size() / 3 + 1;
  chunked.append(rows.subspan(0, cut));
  chunked.refresh();
  chunked.append(rows.subspan(cut));
  chunked.refresh();

  expect_same_store(one_shot, chunked);
}

TEST(ColumnarStore, CampaignSinkMatchesOneShotBuild) {
  const CampaignWorld world;
  const atlas::MeasurementDataset dataset = world.run();

  ColumnarStore live(&world.fleet, &world.registry, StoreConfig{2});
  atlas::Campaign campaign(world.fleet, world.registry, world.model,
                           world.config);
  campaign.attach_sink(&live);
  const atlas::MeasurementDataset streamed = campaign.run();
  live.refresh();

  ASSERT_EQ(streamed.size(), dataset.size());
  const ColumnarStore built = ColumnarStore::build(dataset, StoreConfig{1});
  expect_same_store(built, live);
}

// ---------------------------------------------------------------- oracle

TEST(Oracle, CountryOverrideAndFailureModes) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(std::vector<atlas::Measurement>{
      row(0, 0, 0, 20.0f), row(0, 1, 0, 55.0f), row(2, 1, 0, 70.0f)});
  store.refresh();
  const Oracle oracle(&store, OracleConfig{1, {}});

  Query q;
  q.kind = QueryKind::kBestRtt;
  q.country_iso2 = "DE";
  Answer a = oracle.answer_one(q);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.country, geo::find_country("DE"));
  EXPECT_EQ(a.best_region, world.registry.regions()[0]);
  EXPECT_EQ(a.best_ms, 20.0);

  // A country with no data resolves but answers not-ok.
  q.country_iso2 = "JP";
  a = oracle.answer_one(q);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.country, geo::find_country("JP"));
  EXPECT_EQ(a.best_region, nullptr);

  // An unknown ISO-2 code cannot resolve at all.
  q.country_iso2 = "ZZ";
  a = oracle.answer_one(q);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.country, nullptr);

  // Unknown application slug: resolved country, no verdict.
  Query feas;
  feas.kind = QueryKind::kFeasibility;
  feas.country_iso2 = "DE";
  feas.app_id = "no-such-app";
  a = oracle.answer_one(feas);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.country, geo::find_country("DE"));
}

TEST(Oracle, LocationResolvesViaNearestEligibleProbe) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(std::vector<atlas::Measurement>{row(0, 0, 0, 20.0f),
                                               row(2, 1, 0, 70.0f)});
  store.refresh();
  const Oracle oracle(&store, OracleConfig{1, {}});

  Query q;
  q.kind = QueryKind::kBestRtt;
  q.where = geo::find_country("FR")->site;
  const Answer a = oracle.answer_one(q);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.country, geo::find_country("FR"));
  EXPECT_EQ(a.best_ms, 70.0);

  // Restricting to LTE re-routes resolution to the nearest LTE probe,
  // which lives in Germany — and DE has no LTE data for region 1.
  Query lte = q;
  lte.any_access = false;
  lte.access = net::AccessTechnology::kLte;
  const Answer b = oracle.answer_one(lte);
  EXPECT_EQ(b.country, geo::find_country("DE"));
  EXPECT_FALSE(b.ok);  // DE/LTE shard is empty
}

TEST(Oracle, TopKRespectsBudgetAndK) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(std::vector<atlas::Measurement>{
      row(0, 0, 0, 20.0f), row(0, 1, 0, 35.0f), row(0, 2, 0, 80.0f)});
  store.refresh();
  const Oracle oracle(&store, OracleConfig{1, {}});

  Query q;
  q.kind = QueryKind::kTopK;
  q.country_iso2 = "DE";
  q.budget_ms = 50.0;
  q.k = 5;
  Answer a = oracle.answer_one(q);
  EXPECT_TRUE(a.ok);
  ASSERT_EQ(a.regions.size(), 2u);  // 80 ms region is over budget
  EXPECT_EQ(a.regions[0].rtt_ms, 20.0);
  EXPECT_EQ(a.regions[1].rtt_ms, 35.0);

  q.k = 1;
  a = oracle.answer_one(q);
  ASSERT_EQ(a.regions.size(), 1u);
  EXPECT_EQ(a.regions[0].rtt_ms, 20.0);

  q.k = 0;
  a = oracle.answer_one(q);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(a.regions.empty());
}

TEST(Oracle, BatchApiGuardRails) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(std::vector<atlas::Measurement>{row(0, 0, 0, 20.0f)});
  // Unrefreshed store: the oracle must refuse rather than serve stale
  // summaries.
  const Oracle oracle(&store, OracleConfig{1, {}});
  const std::vector<Query> queries(2);
  std::vector<Answer> out(2);
  EXPECT_THROW(oracle.answer(queries, out), std::logic_error);
  store.refresh();
  std::vector<Answer> short_out(1);
  EXPECT_THROW(oracle.answer(queries, short_out), std::invalid_argument);
  EXPECT_NO_THROW(oracle.answer(queries, out));
}

TEST(Oracle, StaleBatchesRecoverViaTryAnswerAndAutoRefresh) {
  const TinyWorld world;
  ColumnarStore store(&world.fleet, &world.registry, StoreConfig{1});
  store.append(std::vector<atlas::Measurement>{row(0, 0, 0, 20.0f)});

  const std::vector<Query> queries(1);
  std::vector<Answer> out(1);

  // A const-store oracle can only report the condition: try_answer
  // returns kStale and leaves the output span untouched.
  const ColumnarStore& frozen_store = store;
  const Oracle frozen(&frozen_store, OracleConfig{1, {}});
  out[0].best_ms = -1.0;
  EXPECT_EQ(frozen.try_answer(queries, out), BatchStatus::kStale);
  EXPECT_EQ(out[0].best_ms, -1.0);

  // auto_refresh over a const store is ignored, not silently enabled.
  const Oracle frozen_auto(&frozen_store, OracleConfig{1, {}, true});
  EXPECT_EQ(frozen_auto.try_answer(queries, out), BatchStatus::kStale);
  EXPECT_THROW(frozen_auto.answer(queries, out), std::logic_error);

  // A mutable-store oracle with auto_refresh absorbs live appends inside
  // the call — through both the throwing and non-throwing entry points.
  const Oracle live(&store, OracleConfig{1, {}, true});
  EXPECT_EQ(live.try_answer(queries, out), BatchStatus::kOk);
  EXPECT_TRUE(store.fresh());
  store.append(std::vector<atlas::Measurement>{row(1, 1, 1, 30.0f)});
  EXPECT_FALSE(store.fresh());
  EXPECT_NO_THROW(live.answer(queries, out));
  EXPECT_TRUE(store.fresh());

  // Without auto_refresh a mutable-store oracle still refuses; the store
  // owner decides when summaries move.
  store.append(std::vector<atlas::Measurement>{row(2, 1, 2, 40.0f)});
  const Oracle manual(&store, OracleConfig{1, {}});
  EXPECT_EQ(manual.try_answer(queries, out), BatchStatus::kStale);
  store.refresh();
  EXPECT_EQ(manual.try_answer(queries, out), BatchStatus::kOk);
}

TEST(Oracle, NearestRegionsMatchesRegistryScan) {
  const CampaignWorld world;
  const atlas::MeasurementDataset dataset = world.run();
  const ColumnarStore store = ColumnarStore::build(dataset, StoreConfig{1});
  const Oracle oracle(&store, OracleConfig{1, {}});

  const geo::GeoPoint query{48.1, 11.6};  // Munich
  const auto hits = oracle.nearest_regions(query, 3);
  const auto expected = world.registry.nearest_n(query, 3);
  ASSERT_EQ(hits.size(), expected.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(world.registry.regions()[hits[i].id], expected[i].region);
  }
}

// ------------------------------------------------- shipped scenarios

/// Deterministic mixed query batch over a fleet: every kind, location
/// and ISO-2 resolution, per-access filters, real and bogus app slugs.
std::vector<Query> scenario_queries(const atlas::ProbeFleet& fleet) {
  static const char* kApps[] = {"cloud-gaming", "no-such-app"};
  std::vector<Query> queries;
  const std::span<const atlas::Probe> probes = fleet.probes();
  for (std::size_t i = 0; i < probes.size(); i += 3) {
    const atlas::Probe& probe = probes[i];
    Query q;
    q.kind = static_cast<QueryKind>(i % 3);
    q.where = probe.endpoint.location;
    if (i % 2 == 0) q.country_iso2 = probe.country->iso2;
    q.any_access = (i % 5) != 0;
    q.access = probe.endpoint.access;
    if (q.kind == QueryKind::kFeasibility) q.app_id = kApps[(i / 3) % 2];
    if (q.kind == QueryKind::kTopK) {
      q.budget_ms = 20.0 + static_cast<double>(i % 7) * 30.0;
      q.k = static_cast<std::uint32_t>(i % 6);
    }
    queries.push_back(q);
  }
  return queries;
}

class ScenarioOracle : public testing::TestWithParam<const char*> {};

TEST_P(ScenarioOracle, IndexedAnswersMatchFullScan) {
  const std::string path =
      std::string(SHEARS_SOURCE_DIR) + "/scenarios/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  config::Scenario s = config::parse_scenario(in);
  s.fleet.probe_count = std::min<std::size_t>(s.fleet.probe_count, 256);
  s.campaign.duration_days = 1;

  const topology::CloudRegistry registry = s.make_registry();
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(s.fleet);
  const net::LatencyModel model(s.model);
  const faults::FaultSchedule schedule = s.make_fault_schedule();
  const atlas::Campaign campaign(fleet, registry, model, s.campaign,
                                 schedule.empty() ? nullptr : &schedule);
  const atlas::MeasurementDataset dataset = campaign.run();
  ASSERT_GT(dataset.size(), 0u);

  const std::vector<Query> queries = scenario_queries(fleet);
  const ReferenceOracle reference(&dataset);
  const std::vector<Answer> expected = reference.answer(queries);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const ColumnarStore store =
        ColumnarStore::build(dataset, StoreConfig{threads});
    const Oracle oracle(&store, OracleConfig{threads, {}});
    const std::vector<Answer> got = oracle.answer(queries);
    std::string why;
    EXPECT_TRUE(answers_identical(expected, got, why))
        << GetParam() << " (threads " << threads << "): " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(AllShippedScenarios, ScenarioOracle,
                         testing::Values("paper_9_months.ini",
                                         "five_g_delivers.ini",
                                         "cloud_2014.ini",
                                         "hyperscalers_only.ini",
                                         "stress_noisy_network.ini",
                                         "faulted_9_months.ini"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

}  // namespace
}  // namespace shears::serve
