// Every shipped scenario file must not only parse (test_config.cpp) but
// *run*: a short campaign cut from each scenario has to produce a
// nonempty dataset with coherent telemetry. This catches scenario knobs
// that validate but break the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "config/scenario.hpp"
#include "faults/fault_schedule.hpp"
#include "front/server.hpp"
#include "front/traffic.hpp"
#include "edge/deployment.hpp"
#include "net/latency_model.hpp"
#include "opt/candidates.hpp"
#include "opt/search.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

namespace shears::config {
namespace {

Scenario load_scenario(const std::string& file) {
  const std::string path = std::string(SHEARS_SOURCE_DIR) + "/scenarios/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return parse_scenario(in);
}

class ScenarioRun : public testing::TestWithParam<const char*> {};

TEST_P(ScenarioRun, ShortCampaignProducesCleanData) {
  Scenario s = load_scenario(GetParam());

  // Shrink to a smoke-test cut: a small fleet over a single day keeps the
  // whole suite fast while still exercising the scenario's model, fault
  // and resilience knobs.
  s.fleet.probe_count = std::min<std::size_t>(s.fleet.probe_count, 256);
  s.campaign.duration_days = 1;

  const topology::CloudRegistry registry = s.make_registry();
  ASSERT_FALSE(registry.empty()) << GetParam();
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(s.fleet);
  const net::LatencyModel model(s.model);
  const faults::FaultSchedule schedule = s.make_fault_schedule();

  atlas::CampaignTelemetry telemetry;
  const atlas::Campaign campaign(fleet, registry, model, s.campaign,
                                 schedule.empty() ? nullptr : &schedule);
  const atlas::MeasurementDataset dataset = campaign.run(telemetry);

  EXPECT_GT(dataset.size(), 0u) << GetParam();
  EXPECT_EQ(telemetry.bursts, dataset.size()) << GetParam();

  // Retry bookkeeping must be internally coherent regardless of the
  // scenario's resilience settings.
  EXPECT_LE(telemetry.bursts_recovered, telemetry.bursts_retried)
      << GetParam();
  EXPECT_LE(telemetry.bursts_retried, telemetry.retries) << GetParam();
  EXPECT_LE(telemetry.bursts_faulted, telemetry.bursts) << GetParam();

  if (schedule.empty()) {
    // A scenario without fault knobs must run perfectly clean.
    EXPECT_EQ(telemetry.bursts_faulted, 0u) << GetParam();
    EXPECT_EQ(telemetry.hang_ticks, 0u) << GetParam();
    EXPECT_EQ(telemetry.quarantine_entries, 0u) << GetParam();
    EXPECT_EQ(dataset.faulted_fraction(), 0.0) << GetParam();
  }

  // The dataset must be analysable: every record references a real probe
  // and region (probe_of/region_of throw otherwise).
  for (const atlas::Measurement& m : dataset.records()) {
    EXPECT_LE(m.received, m.sent) << GetParam();
    (void)dataset.probe_of(m);
    (void)dataset.region_of(m);
  }
}

// The serving scenario's [traffic] section must drive an actual
// front-end session over the oracle built from its own campaign — a
// smoke-sized cut of the peak-load study, checking the overload
// machinery engages and the session drains.
TEST(ScenarioRun, ServingPeakLoadDrivesFrontEnd) {
  Scenario s = load_scenario("serving_peak_load.ini");
  s.fleet.probe_count = 256;
  s.campaign.duration_days = 1;
  s.traffic.duration_us = 50'000;

  const topology::CloudRegistry registry = s.make_registry();
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(s.fleet);
  const net::LatencyModel model(s.model);
  atlas::CampaignTelemetry telemetry;
  const atlas::Campaign campaign(fleet, registry, model, s.campaign, nullptr);
  const atlas::MeasurementDataset dataset = campaign.run(telemetry);

  serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{0});
  const serve::Oracle oracle(&store, serve::OracleConfig{});
  front::FrontServer server(&oracle, &store, s.front);
  const std::vector<serve::Query> corpus =
      front::make_corpus(dataset.fleet(), 512);
  const front::TrafficReport report =
      front::run_traffic(server, corpus, s.traffic, nullptr);

  EXPECT_GT(report.offered, 0u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_TRUE(report.drained);
  // 10x overload: the admission machinery must actually engage.
  EXPECT_GT(report.server.shed_queue_full + report.server.shed_deadline +
                report.server.shed_throttled,
            0u);
  EXPECT_EQ(report.server.decode_errors, 0u);
}

// The optimizer scenario's [optimizer] section must drive an actual
// footprint search over the store built from its own campaign — the
// planner pipeline end to end at smoke size.
TEST(ScenarioRun, FootprintSearchDrivesOptimizer) {
  Scenario s = load_scenario("footprint_search.ini");
  s.fleet.probe_count = 256;
  s.campaign.duration_days = 1;

  const topology::CloudRegistry registry = s.make_registry();
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(s.fleet);
  const net::LatencyModel model(s.model);
  const atlas::Campaign campaign(fleet, registry, model, s.campaign, nullptr);
  const atlas::MeasurementDataset dataset = campaign.run();
  serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{});

  opt::CandidateConfig candidates;
  candidates.placements.clear();
  for (const std::string& name : s.optimizer.placements) {
    if (name == "regional-site") {
      candidates.placements.push_back(edge::EdgePlacement::kRegionalSite);
    } else {
      candidates.placements.push_back(edge::EdgePlacement::kMetroPop);
    }
  }
  candidates.max_cities_per_country =
      static_cast<std::size_t>(s.optimizer.max_cities_per_country);
  candidates.min_metro_population_m = s.optimizer.min_metro_population_m;

  opt::SearchConfig search;
  search.threshold_ms = s.optimizer.threshold_ms;
  search.max_sites = static_cast<std::size_t>(s.optimizer.max_sites);
  search.swap_passes = static_cast<std::size_t>(s.optimizer.swap_passes);
  const opt::FootprintSearch optimizer(
      &store, opt::generate_candidates(candidates), search);
  const opt::FootprintPlan plan = optimizer.plan();

  EXPECT_LE(plan.sites.size(), search.max_sites);
  EXPECT_GE(plan.objective, plan.base_objective);
  EXPECT_FALSE(plan.coverage.countries.empty());
}

INSTANTIATE_TEST_SUITE_P(AllShippedScenarios, ScenarioRun,
                         testing::Values("paper_9_months.ini",
                                         "five_g_delivers.ini",
                                         "cloud_2014.ini",
                                         "hyperscalers_only.ini",
                                         "stress_noisy_network.ini",
                                         "faulted_9_months.ini",
                                         "serving_peak_load.ini",
                                         "footprint_search.ini"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

}  // namespace
}  // namespace shears::config
