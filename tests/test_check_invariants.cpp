// Metamorphic and invariant properties: the propagation floor, ECDF and
// P² quantile behaviour, feasibility monotonicity, and permutation
// invariance of the §4 aggregates.
#include <gtest/gtest.h>

#include "atlas/measurement.hpp"
#include "check/invariants.hpp"
#include "check/property.hpp"
#include "check/world.hpp"

namespace shears::check {
namespace {

TEST(Invariant, RttRespectsThePropagationFloor) {
  const CheckResult result = check(
      "rtt_floor",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        check_rtt_floor(world, dataset);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Invariant, EcdfProperties) {
  const CheckResult result =
      check("ecdf_properties", check_ecdf_properties, 64);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Invariant, QuantileProperties) {
  const CheckResult result =
      check("quantile_properties", check_quantile_properties, 64);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Invariant, FeasibilityMonotonicity) {
  const CheckResult result =
      check("feasibility_monotonicity", check_feasibility_monotonicity, 64);
  EXPECT_TRUE(result.passed) << result.banner;
}

TEST(Invariant, AggregatesSurviveRowPermutation) {
  const CheckResult result = check(
      "permutation_invariance",
      [](Gen& gen) {
        const World world = make_world(gen);
        const atlas::MeasurementDataset dataset = world.run();
        check_permutation_invariance(gen, world, dataset);
      },
      8);
  EXPECT_TRUE(result.passed) << result.banner;
}

}  // namespace
}  // namespace shears::check
