// Tests for the text rendering helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "report/plot.hpp"
#include "report/table.hpp"

namespace shears::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Columns align: the second column starts at the same offset ("alpha"
  // is the widest first-column cell, so offset = 5 + 2 separator spaces).
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("name", 0) == 0) {
      EXPECT_EQ(line.substr(7), "value");
    }
    if (line.rfind("b", 0) == 0) {
      EXPECT_EQ(line.substr(7), "22");
    }
  }
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CsvEscaping) {
  TextTable table;
  table.set_header({"name", "note"});
  table.add_row({"x,y", "say \"hi\""});
  std::ostringstream os;
  table.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Formatting, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
  EXPECT_EQ(fmt_percent(0.756, 1), "75.6%");
}

TEST(CdfPlot, ContainsSeriesAndMarkers) {
  Series s;
  s.name = "EU";
  for (int i = 0; i <= 100; ++i) {
    s.points.emplace_back(i, i / 100.0);
  }
  const std::string out =
      render_cdf_plot({s}, {{"MTP", 20.0}, {"PL", 100.0}});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("MTP"), std::string::npos);
  EXPECT_NE(out.find("legend: *=EU"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(CdfPlot, EmptyInputIsSafe) {
  EXPECT_EQ(render_cdf_plot({}, {}), "(empty plot)\n");
}

TEST(CdfPlot, LogAxisLabelled) {
  Series s{"x", {{1.0, 0.1}, {10.0, 0.5}, {100.0, 1.0}}};
  CdfPlotOptions options;
  options.log_x = true;
  const std::string out = render_cdf_plot({s}, {}, options);
  EXPECT_NE(out.find("[log]"), std::string::npos);
}

TEST(CdfPlot, MultipleSeriesGetDistinctGlyphs) {
  Series a{"one", {{0.0, 0.2}, {50.0, 0.9}}};
  Series b{"two", {{10.0, 0.1}, {60.0, 0.8}}};
  const std::string out = render_cdf_plot({a, b}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(Bars, EmptyAndZeroInputsAreSafe) {
  EXPECT_EQ(render_bars({}), "");
  const std::string zeros = render_bars({{"a", 0.0}, {"b", 0.0}});
  EXPECT_NE(zeros.find("a"), std::string::npos);
  EXPECT_EQ(zeros.find('#'), std::string::npos);  // no bars drawn
}

TEST(CdfPlot, PointsOutsideExplicitRangeAreClipped) {
  Series s{"x", {{-5.0, 0.1}, {50.0, 0.5}, {500.0, 0.9}}};
  CdfPlotOptions options;
  options.x_min = 0.0;
  options.x_max = 100.0;
  const std::string out = render_cdf_plot({s}, {{"FAR", 400.0}}, options);
  // Only the in-range point draws; the out-of-range marker is dropped.
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_EQ(out.find("FAR"), std::string::npos);
}

TEST(Bars, ProportionalLengths) {
  const std::string out =
      render_bars({{"big", 100.0}, {"half", 50.0}, {"zero", 0.0}}, 40);
  // "big" row has twice as many '#' as "half".
  std::istringstream is(out);
  std::string line;
  std::size_t big = 0;
  std::size_t half = 0;
  while (std::getline(is, line)) {
    const std::size_t hashes =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), '#'));
    if (line.rfind("big", 0) == 0) big = hashes;
    if (line.rfind("half", 0) == 0) half = hashes;
  }
  EXPECT_EQ(big, 40u);
  EXPECT_EQ(half, 20u);
}

}  // namespace
}  // namespace shears::report
