// Tests for the transport-fabric graph (IXPs + submarine cables) and the
// graph-backed path provider.
#include <gtest/gtest.h>

#include <set>

#include "net/latency_model.hpp"
#include "route/graph.hpp"
#include "route/path_provider.hpp"
#include "stats/regression.hpp"
#include "topology/registry.hpp"

namespace shears::route {
namespace {

std::uint16_t node_index(std::string_view id) {
  const auto nodes = transport_nodes();
  for (std::uint16_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id == id) return i;
  }
  ADD_FAILURE() << "unknown node " << id;
  return 0;
}

TEST(NodeData, UniqueIdsAndValidCoordinates) {
  std::set<std::string_view> ids;
  for (const TransportNode& n : transport_nodes()) {
    EXPECT_TRUE(ids.insert(n.id).second) << n.id;
    EXPECT_TRUE(geo::is_valid(n.location)) << n.id;
    EXPECT_FALSE(n.name.empty());
  }
  EXPECT_GE(transport_nodes().size(), 60u);
}

TEST(NodeData, EveryContinentHasNodes) {
  std::set<geo::Continent> seen;
  for (const TransportNode& n : transport_nodes()) seen.insert(n.continent);
  EXPECT_EQ(seen.size(), geo::kContinentCount);
}

TEST(NodeData, LookupWorks) {
  const TransportNode* fra = find_node("fra");
  ASSERT_NE(fra, nullptr);
  EXPECT_EQ(fra->continent, geo::Continent::kEurope);
  EXPECT_EQ(find_node("xxx"), nullptr);
}

TEST(Graph, FullyConnected) {
  const TransportGraph& graph = TransportGraph::instance();
  const std::uint16_t fra = node_index("fra");
  for (std::uint16_t i = 0; i < graph.nodes().size(); ++i) {
    EXPECT_TRUE(std::isfinite(graph.shortest_km(fra, i)))
        << graph.nodes()[i].id << " unreachable from fra";
  }
}

TEST(Graph, LinksNeverShorterThanGeodesic) {
  const TransportGraph& graph = TransportGraph::instance();
  const auto nodes = graph.nodes();
  for (const TransportLink& link : graph.links()) {
    const double geodesic =
        geo::haversine_km(nodes[link.a].location, nodes[link.b].location);
    EXPECT_GE(link.length_km, geodesic - 1e-6);
  }
}

TEST(Graph, ShortestPathIsSymmetricAndTriangular) {
  const TransportGraph& graph = TransportGraph::instance();
  const std::uint16_t lon = node_index("lon");
  const std::uint16_t nyc = node_index("nyc");
  const std::uint16_t sin = node_index("sin");
  EXPECT_DOUBLE_EQ(graph.shortest_km(lon, nyc), graph.shortest_km(nyc, lon));
  EXPECT_LE(graph.shortest_km(lon, sin),
            graph.shortest_km(lon, nyc) + graph.shortest_km(nyc, sin) + 1e-6);
  EXPECT_DOUBLE_EQ(graph.shortest_km(lon, lon), 0.0);
}

TEST(Graph, TransatlanticTakesTheCable) {
  const TransportGraph& graph = TransportGraph::instance();
  const auto path =
      graph.shortest_path(node_index("fra"), node_index("ash"));
  ASSERT_GE(path.size(), 3u);
  // The route must pass through London or Paris (the cable ends).
  bool via_cable_end = false;
  for (const std::uint16_t idx : path) {
    const std::string_view id = graph.nodes()[idx].id;
    via_cable_end |= id == "lon" || id == "par";
  }
  EXPECT_TRUE(via_cable_end);
  // And its length is sane: geodesic FRA-ASH ~6500 km, routed < 1.6x that.
  const double km = graph.shortest_km(node_index("fra"), node_index("ash"));
  EXPECT_GT(km, 6000.0);
  EXPECT_LT(km, 10500.0);
}

TEST(Graph, EuropeToIndiaRoutesViaMiddleEast) {
  // Europe -> India traffic crosses the eastern Mediterranean / Middle
  // East corridor (Suez-Red Sea cables or the Levant terrestrial route),
  // never the Atlantic.
  const TransportGraph& graph = TransportGraph::instance();
  const auto path =
      graph.shortest_path(node_index("fra"), node_index("bom"));
  bool via_middle_east = false;
  bool via_atlantic = false;
  for (const std::uint16_t idx : path) {
    const std::string_view id = graph.nodes()[idx].id;
    via_middle_east |= id == "alx" || id == "dji" || id == "tlv" || id == "fjr";
    via_atlantic |= id == "nyc" || id == "for";
  }
  EXPECT_TRUE(via_middle_east);
  EXPECT_FALSE(via_atlantic);
  // Route length: geodesic ~6300 km, routed below 1.6x of it.
  const double km = graph.shortest_km(node_index("fra"), node_index("bom"));
  EXPECT_GT(km, 6300.0);
  EXPECT_LT(km, 10000.0);
}

TEST(Graph, NearestNodeHonoursContinentFilter) {
  const TransportGraph& graph = TransportGraph::instance();
  // A point in Morocco: nearest node overall may be Iberian, but the
  // Africa-restricted answer must be African.
  const geo::GeoPoint rabat{34.02, -6.84};
  const auto african =
      graph.nearest_node(rabat, geo::Continent::kAfrica);
  ASSERT_TRUE(african.has_value());
  EXPECT_EQ(graph.nodes()[*african].continent, geo::Continent::kAfrica);
  EXPECT_EQ(graph.nodes()[*african].id, "cas");
}

TEST(Graph, RoutedKmNeverBelowGeodesic) {
  const TransportGraph& graph = TransportGraph::instance();
  for (const geo::Country& c : geo::all_countries()) {
    const geo::GeoPoint frankfurt{50.11, 8.68};
    const double routed = graph.routed_km(c.site, frankfurt);
    EXPECT_GE(routed, geo::haversine_km(c.site, frankfurt) - 1e-6) << c.name;
  }
}

TEST(Provider, GraphDrivenModelStaysCalibrated) {
  // Installing the graph provider must keep RTTs within a factor of the
  // stretch model across representative pairs — the two route models are
  // alternative views of the same Internet.
  net::LatencyModel stretch_model;
  net::LatencyModel graph_model;
  const GraphPathProvider provider(TransportGraph::instance());
  graph_model.set_path_provider(&provider);

  std::vector<double> stretch_rtts;
  std::vector<double> graph_rtts;
  for (const char* iso2 : {"DE", "FR", "US", "BR", "IN", "KE", "AU", "JP"}) {
    const geo::Country* c = geo::find_country(iso2);
    const net::Endpoint user{c->site, c->tier,
                             net::AccessTechnology::kEthernet};
    for (const topology::CloudRegion& region : topology::all_regions()) {
      const geo::Continent rc = topology::region_continent(region);
      if (rc != c->continent &&
          geo::measurement_fallback(c->continent) != rc) {
        continue;
      }
      stretch_rtts.push_back(stretch_model.baseline_rtt_ms(user, region));
      graph_rtts.push_back(graph_model.baseline_rtt_ms(user, region));
    }
  }
  ASSERT_GT(stretch_rtts.size(), 100u);
  // Strong rank agreement between the two models.
  EXPECT_GT(stats::pearson(stretch_rtts, graph_rtts), 0.85);
  // And no systematic blow-up: medians within 2x of each other.
  double s_sum = 0.0;
  double g_sum = 0.0;
  for (std::size_t i = 0; i < stretch_rtts.size(); ++i) {
    s_sum += stretch_rtts[i];
    g_sum += graph_rtts[i];
  }
  EXPECT_LT(g_sum / s_sum, 2.0);
  EXPECT_GT(g_sum / s_sum, 0.5);
}

TEST(Provider, NullProviderRestoresStretchModel) {
  net::LatencyModel model;
  const geo::Country* de = geo::find_country("DE");
  const net::Endpoint user{de->site, de->tier, net::AccessTechnology::kFibre};
  const topology::CloudRegion& region = *topology::all_regions().data();
  const double before = model.baseline_rtt_ms(user, region);
  const GraphPathProvider provider(TransportGraph::instance());
  model.set_path_provider(&provider);
  model.set_path_provider(nullptr);
  EXPECT_DOUBLE_EQ(model.baseline_rtt_ms(user, region), before);
}

}  // namespace
}  // namespace shears::route
