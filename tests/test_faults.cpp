// Tests for the fault-injection subsystem: schedule determinism, window
// scoping per fault kind, retry backoff, and the quarantine state machine.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_schedule.hpp"
#include "faults/resilience.hpp"

namespace shears::faults {
namespace {

FaultScheduleConfig busy_config() {
  FaultScheduleConfig config;
  config.seed = 99;
  config.region_outage_rate = 0.2;
  config.route_flap_rate = 0.2;
  config.storm_rate = 0.2;
  config.probe_hang_rate = 0.2;
  config.clock_skew_rate = 0.2;
  config.blackout_rate = 0.2;
  return config;
}

ProbeContext wireless_probe(std::uint32_t id = 7) {
  ProbeContext probe;
  probe.probe_id = id;
  probe.asn = 64500;
  probe.country_key = FaultSchedule::country_key("DE");
  probe.wireless = true;
  return probe;
}

TEST(FaultScheduleConfig, ValidatesRatesMeansAndSeverities) {
  FaultScheduleConfig config;
  EXPECT_NO_THROW(config.validate());

  config.storm_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.storm_rate = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.storm_rate = 0.0;

  config.epoch_ticks = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.epoch_ticks = 56;

  config.blackout_mean_ticks = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.blackout_mean_ticks = 4.0;

  config.route_flap_latency_multiplier = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.route_flap_latency_multiplier = 1.8;

  config.route_flap_extra_loss = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.route_flap_extra_loss = 0.02;

  config.storm_load_multiplier = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FaultSchedule, DefaultConstructedIsEmptyAndFaultFree) {
  const FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  const ProbeContext probe = wireless_probe();
  for (std::uint32_t tick = 0; tick < 200; ++tick) {
    const ProbeExposure pe = schedule.probe_exposure(probe, tick);
    EXPECT_EQ(pe.mask, 0);
    EXPECT_FALSE(pe.probe_down);
    EXPECT_FALSE(pe.blackout);
    const BurstExposure be = schedule.burst_exposure(probe, pe, 3, tick);
    EXPECT_EQ(be.mask, 0);
    EXPECT_FALSE(be.lost);
    EXPECT_EQ(be.latency_multiplier, 1.0);
    EXPECT_EQ(be.load_multiplier, 1.0);
    EXPECT_EQ(be.skew_ms, 0.0);
    EXPECT_EQ(be.extra_loss, 0.0);
  }
}

TEST(FaultSchedule, ZeroRatesProduceNoProceduralFaults) {
  // A config with no rates set behaves exactly like the empty schedule.
  const FaultSchedule schedule{FaultScheduleConfig{}};
  EXPECT_TRUE(schedule.empty());
}

TEST(FaultSchedule, ProceduralWindowsAreDeterministic) {
  const FaultSchedule a{busy_config()};
  const FaultSchedule b{busy_config()};
  EXPECT_FALSE(a.empty());
  const ProbeContext probe = wireless_probe();
  for (std::uint32_t tick = 0; tick < 500; ++tick) {
    const ProbeExposure pa = a.probe_exposure(probe, tick);
    const ProbeExposure pb = b.probe_exposure(probe, tick);
    EXPECT_EQ(pa.mask, pb.mask);
    EXPECT_EQ(pa.load_multiplier, pb.load_multiplier);
    EXPECT_EQ(pa.skew_ms, pb.skew_ms);
    const BurstExposure ba = a.burst_exposure(probe, pa, 11, tick);
    const BurstExposure bb = b.burst_exposure(probe, pb, 11, tick);
    EXPECT_EQ(ba.mask, bb.mask);
    EXPECT_EQ(ba.latency_multiplier, bb.latency_multiplier);
    EXPECT_EQ(ba.extra_loss, bb.extra_loss);
  }
}

TEST(FaultSchedule, SeedChangesTheSchedule) {
  FaultScheduleConfig other = busy_config();
  other.seed = 100;
  const FaultSchedule a{busy_config()};
  const FaultSchedule b{other};
  const ProbeContext probe = wireless_probe();
  std::size_t differing = 0;
  for (std::uint32_t tick = 0; tick < 500; ++tick) {
    if (a.probe_exposure(probe, tick).mask !=
        b.probe_exposure(probe, tick).mask) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultSchedule, ProceduralFaultsActuallyFire) {
  // With every rate at 0.2 and hundreds of (entity, epoch) pairs, each
  // fault class must fire somewhere.
  const FaultSchedule schedule{busy_config()};
  std::uint8_t seen = 0;
  for (std::uint32_t id = 0; id < 40; ++id) {
    ProbeContext probe = wireless_probe(id);
    probe.asn = 64500 + id;
    probe.country_key = FaultSchedule::country_key(id % 2 == 0 ? "DE" : "BR");
    for (std::uint32_t tick = 0; tick < 500; ++tick) {
      const ProbeExposure pe = schedule.probe_exposure(probe, tick);
      seen |= pe.mask;
      seen |= schedule
                  .burst_exposure(probe, pe, static_cast<std::uint16_t>(id),
                                  tick)
                  .mask;
    }
  }
  for (const FaultKind kind :
       {FaultKind::kRegionOutage, FaultKind::kRouteFlap,
        FaultKind::kCongestionStorm, FaultKind::kProbeHang,
        FaultKind::kClockSkew, FaultKind::kCountryBlackout}) {
    EXPECT_NE(seen & fault_bit(kind), 0) << to_string(kind);
  }
}

TEST(FaultSchedule, WirelessOnlyStormSparesWiredProbes) {
  FaultScheduleConfig config;
  config.storm_rate = 1.0;  // a storm in every (country, epoch)
  config.storm_wireless_only = true;
  const FaultSchedule schedule{config};
  ProbeContext wired = wireless_probe();
  wired.wireless = false;
  std::size_t storms = 0;
  for (std::uint32_t tick = 0; tick < 500; ++tick) {
    const ProbeExposure pe = schedule.probe_exposure(wireless_probe(), tick);
    storms += (pe.mask & fault_bit(FaultKind::kCongestionStorm)) != 0;
    EXPECT_EQ(schedule.probe_exposure(wired, tick).mask, 0) << tick;
  }
  EXPECT_GT(storms, 0u);
}

TEST(FaultSchedule, RejectsDegenerateEvents) {
  FaultSchedule schedule;
  FaultEvent event;
  event.start_tick = 5;
  event.end_tick = 5;
  EXPECT_THROW(schedule.add_event(event), std::invalid_argument);
}

TEST(FaultSchedule, EventMakesScheduleNonEmpty) {
  FaultSchedule schedule;
  FaultEvent event;
  event.kind = FaultKind::kCountryBlackout;
  event.start_tick = 0;
  event.end_tick = 4;
  schedule.add_event(event);
  EXPECT_FALSE(schedule.empty());
}

TEST(FaultSchedule, RegionOutageEventScopesToRegionAndWindow) {
  FaultSchedule schedule;
  FaultEvent event;
  event.kind = FaultKind::kRegionOutage;
  event.start_tick = 10;
  event.end_tick = 20;
  event.region_index = 3;
  schedule.add_event(event);
  const ProbeContext probe = wireless_probe();
  const ProbeExposure pe;
  EXPECT_FALSE(schedule.burst_exposure(probe, pe, 3, 9).lost);
  EXPECT_TRUE(schedule.burst_exposure(probe, pe, 3, 10).lost);
  EXPECT_TRUE(schedule.burst_exposure(probe, pe, 3, 19).lost);
  EXPECT_FALSE(schedule.burst_exposure(probe, pe, 3, 20).lost);
  EXPECT_FALSE(schedule.burst_exposure(probe, pe, 4, 15).lost);
  EXPECT_EQ(schedule.burst_exposure(probe, pe, 3, 15).mask,
            fault_bit(FaultKind::kRegionOutage));
}

TEST(FaultSchedule, RouteFlapEventScopesToAsAndSkipsUnattributed) {
  FaultSchedule schedule;
  FaultEvent event;
  event.kind = FaultKind::kRouteFlap;
  event.start_tick = 0;
  event.end_tick = 10;
  event.asn = 64500;
  event.latency_multiplier = 2.0;
  event.extra_loss = 0.1;
  schedule.add_event(event);
  const ProbeExposure pe;
  const BurstExposure hit =
      schedule.burst_exposure(wireless_probe(), pe, 0, 5);
  EXPECT_EQ(hit.mask, fault_bit(FaultKind::kRouteFlap));
  EXPECT_DOUBLE_EQ(hit.latency_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(hit.extra_loss, 0.1);

  ProbeContext other_as = wireless_probe();
  other_as.asn = 64501;
  EXPECT_EQ(schedule.burst_exposure(other_as, pe, 0, 5).mask, 0);

  ProbeContext unattributed = wireless_probe();
  unattributed.asn = 0;
  EXPECT_EQ(schedule.burst_exposure(unattributed, pe, 0, 5).mask, 0);
}

TEST(FaultSchedule, ProbeScopedEventsHitOnlyThatProbe) {
  FaultSchedule schedule;
  FaultEvent hang;
  hang.kind = FaultKind::kProbeHang;
  hang.start_tick = 0;
  hang.end_tick = 5;
  hang.probe_id = 7;
  schedule.add_event(hang);
  FaultEvent skew;
  skew.kind = FaultKind::kClockSkew;
  skew.start_tick = 0;
  skew.end_tick = 5;
  skew.probe_id = 8;
  skew.skew_ms = 25.0;
  schedule.add_event(skew);

  EXPECT_TRUE(schedule.probe_exposure(wireless_probe(7), 2).probe_down);
  EXPECT_FALSE(schedule.probe_exposure(wireless_probe(8), 2).probe_down);
  EXPECT_DOUBLE_EQ(schedule.probe_exposure(wireless_probe(8), 2).skew_ms,
                   25.0);
  EXPECT_DOUBLE_EQ(schedule.probe_exposure(wireless_probe(7), 2).skew_ms, 0.0);
  EXPECT_EQ(schedule.probe_exposure(wireless_probe(9), 2).mask, 0);
}

TEST(FaultSchedule, BlackoutEventScopesToCountryOrEveryone) {
  FaultSchedule schedule;
  FaultEvent event;
  event.kind = FaultKind::kCountryBlackout;
  event.start_tick = 0;
  event.end_tick = 4;
  event.country_key = FaultSchedule::country_key("BR");
  schedule.add_event(event);
  ProbeContext br = wireless_probe();
  br.country_key = FaultSchedule::country_key("BR");
  EXPECT_TRUE(schedule.probe_exposure(br, 1).blackout);
  EXPECT_FALSE(schedule.probe_exposure(wireless_probe(), 1).blackout);

  FaultEvent global;
  global.kind = FaultKind::kCountryBlackout;
  global.start_tick = 4;
  global.end_tick = 6;
  global.country_key = 0;  // every country
  schedule.add_event(global);
  EXPECT_TRUE(schedule.probe_exposure(wireless_probe(), 5).blackout);
}

TEST(RetryPolicy, BackoffDoublesUpToTheCap) {
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.backoff_cap_ticks = 8;
  EXPECT_EQ(retry_backoff_ticks(0, policy), 0u);
  EXPECT_EQ(retry_backoff_ticks(1, policy), 1u);
  EXPECT_EQ(retry_backoff_ticks(2, policy), 2u);
  EXPECT_EQ(retry_backoff_ticks(3, policy), 4u);
  EXPECT_EQ(retry_backoff_ticks(4, policy), 8u);
  EXPECT_EQ(retry_backoff_ticks(5, policy), 8u);   // capped
  EXPECT_EQ(retry_backoff_ticks(40, policy), 8u);  // no overflow
}

TEST(RetryPolicy, Validation) {
  RetryPolicy policy;
  EXPECT_NO_THROW(policy.validate());
  policy.max_retries = -1;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.max_retries = 2;
  policy.backoff_cap_ticks = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

TEST(QuarantinePolicy, Validation) {
  QuarantinePolicy policy;
  EXPECT_NO_THROW(policy.validate());  // disabled: knobs unchecked
  policy.enabled = true;
  EXPECT_NO_THROW(policy.validate());
  policy.window_bursts = 1;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.window_bursts = 65;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.window_bursts = 16;
  policy.loss_threshold = 0.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.loss_threshold = 1.1;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.loss_threshold = 0.5;
  policy.cooldown_ticks = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

TEST(QuarantineTracker, EntersOnBadWindowAndReleasesAfterCooldown) {
  QuarantinePolicy policy;
  policy.enabled = true;
  policy.window_bursts = 4;
  policy.loss_threshold = 0.5;
  policy.cooldown_ticks = 10;
  QuarantineTracker tracker(policy);

  // Window not yet full: no judgement even on all-bad bursts.
  tracker.record_burst(0, true, false);
  tracker.record_burst(1, true, false);
  tracker.record_burst(2, true, false);
  EXPECT_FALSE(tracker.quarantined(3));
  // Fourth burst fills the window: 4/4 bad >= 0.5 -> quarantine.
  tracker.record_burst(3, true, false);
  EXPECT_TRUE(tracker.quarantined(4));
  EXPECT_EQ(tracker.entries(), 1u);
  // Bursts observed while quarantined are ignored.
  tracker.record_burst(5, true, false);
  EXPECT_TRUE(tracker.quarantined(12));
  // Release at record tick 3 + cooldown 10 = 13, with a reset window.
  EXPECT_FALSE(tracker.quarantined(13));
  tracker.record_burst(13, true, false);
  tracker.record_burst(14, true, false);
  tracker.record_burst(15, true, false);
  EXPECT_FALSE(tracker.quarantined(16));  // window not refilled yet
  tracker.record_burst(16, true, false);
  EXPECT_TRUE(tracker.quarantined(17));
  EXPECT_EQ(tracker.entries(), 2u);
}

TEST(QuarantineTracker, HealthyProbesStayInService) {
  QuarantinePolicy policy;
  policy.enabled = true;
  policy.window_bursts = 4;
  policy.loss_threshold = 0.5;
  QuarantineTracker tracker(policy);
  for (std::uint32_t tick = 0; tick < 100; ++tick) {
    // One bad burst in four never reaches the 0.5 threshold.
    tracker.record_burst(tick, tick % 4 == 0, false);
    EXPECT_FALSE(tracker.quarantined(tick + 1));
  }
  EXPECT_EQ(tracker.entries(), 0u);
}

TEST(QuarantineTracker, SkewCountsToggle) {
  QuarantinePolicy counts;
  counts.enabled = true;
  counts.window_bursts = 2;
  counts.loss_threshold = 1.0;
  counts.skew_counts = true;
  QuarantineTracker with_skew(counts);
  with_skew.record_burst(0, false, true);
  with_skew.record_burst(1, false, true);
  EXPECT_TRUE(with_skew.quarantined(2));

  QuarantinePolicy ignores = counts;
  ignores.skew_counts = false;
  QuarantineTracker without_skew(ignores);
  without_skew.record_burst(0, false, true);
  without_skew.record_burst(1, false, true);
  EXPECT_FALSE(without_skew.quarantined(2));
}

TEST(FaultKindCounts, RecordSplitsMasksAndMergeAdds) {
  FaultKindCounts counts;
  EXPECT_EQ(counts.total(), 0u);
  // A burst can carry several kinds at once; each gets its own bump.
  counts.record(fault_bit(FaultKind::kRouteFlap) |
                fault_bit(FaultKind::kClockSkew));
  counts.record(fault_bit(FaultKind::kRouteFlap));
  EXPECT_EQ(counts.of(FaultKind::kRouteFlap), 2u);
  EXPECT_EQ(counts.of(FaultKind::kClockSkew), 1u);
  EXPECT_EQ(counts.of(FaultKind::kRegionOutage), 0u);
  EXPECT_EQ(counts.total(), 3u);

  FaultKindCounts other;
  other.record(fault_bit(FaultKind::kCountryBlackout));
  counts.merge(other);
  EXPECT_EQ(counts.of(FaultKind::kCountryBlackout), 1u);
  EXPECT_EQ(counts.total(), 4u);
}

}  // namespace
}  // namespace shears::faults
