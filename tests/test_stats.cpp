// Unit and property tests for the stats foundation: RNG determinism,
// distribution sanity, summaries, ECDFs, histograms, regression, bootstrap.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/distributions.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace shears::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BoundedRespectsBound) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, kDraws / kBound * 0.1);
  }
}

TEST(Rng, ForkedStreamsIndependent) {
  Xoshiro256 root(42);
  Xoshiro256 a = root.fork(1);
  Xoshiro256 b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Xoshiro256 root1(42);
  Xoshiro256 root2(42);
  Xoshiro256 a = root1.fork(17);
  Xoshiro256 b = root2.fork(17);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BernoulliEdgeCases) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, Fnv1aStableAndDistinct) {
  constexpr auto h1 = fnv1a64("DE", 2);
  constexpr auto h2 = fnv1a64("FR", 2);
  static_assert(h1 != h2);
  EXPECT_EQ(h1, fnv1a64("DE", 2));
}

TEST(Distributions, NormalMoments) {
  Xoshiro256 rng(21);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(sample_normal(rng, 5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Distributions, LognormalMedianParameterisation) {
  Xoshiro256 rng(22);
  std::vector<double> draws;
  draws.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    draws.push_back(sample_lognormal_median(rng, 30.0, 1.5));
  }
  EXPECT_NEAR(Ecdf(std::move(draws)).median(), 30.0, 0.7);
}

TEST(Distributions, LognormalSpreadOneIsDegenerate) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sample_lognormal_median(rng, 12.0, 1.0), 12.0);
  }
}

TEST(Distributions, ExponentialMean) {
  Xoshiro256 rng(24);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(sample_exponential(rng, 7.0));
  EXPECT_NEAR(s.mean(), 7.0, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Distributions, WeibullPositiveAndScales) {
  Xoshiro256 rng(25);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(sample_weibull(rng, 0.8, 100.0));
  EXPECT_GT(s.min(), 0.0);
  // Mean of Weibull(k=0.8, lambda=100) = 100 * Gamma(1 + 1/0.8) ~ 113.3.
  EXPECT_NEAR(s.mean(), 113.3, 5.0);
}

TEST(Distributions, ParetoSupport) {
  Xoshiro256 rng(26);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sample_pareto(rng, 5.0, 1.5), 5.0);
  }
}

TEST(Distributions, WeightedSamplingFollowsWeights) {
  Xoshiro256 rng(27);
  const double weights[3] = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sample_weighted(rng, weights, 3)];
  EXPECT_NEAR(counts[0], kDraws * 0.1, kDraws * 0.01);
  EXPECT_NEAR(counts[1], kDraws * 0.2, kDraws * 0.015);
  EXPECT_NEAR(counts[2], kDraws * 0.7, kDraws * 0.02);
}

TEST(Distributions, WeightedSamplingIgnoresNegativeWeights) {
  Xoshiro256 rng(28);
  const double weights[3] = {-5.0, 0.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sample_weighted(rng, weights, 3), 2u);
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_NEAR(s.sample_variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyIsSafe) {
  const Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesSequential) {
  Xoshiro256 rng(31);
  Summary whole;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = sample_normal(rng, 3.0, 1.5);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(2.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Ecdf, FractionsAndQuantiles) {
  const Ecdf ecdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.fraction_below(2.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(9.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(ecdf.median(), 2.5);
}

TEST(Ecdf, EmptyIsSafe) {
  const Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  // Empty quantiles/extremes are NaN, not 0.0 — a sentinel 0.0 would be
  // indistinguishable from a genuine 0 ms RTT sample.
  EXPECT_TRUE(std::isnan(ecdf.quantile(0.5)));
  EXPECT_TRUE(std::isnan(ecdf.min()));
  EXPECT_TRUE(std::isnan(ecdf.max()));
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(1.0), 0.0);
}

TEST(Ecdf, QuantileInterpolates) {
  const Ecdf ecdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(ecdf.percentile(75.0), 7.5);
}

TEST(Ecdf, CurveIsMonotone) {
  Xoshiro256 rng(41);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.uniform(0.0, 50.0));
  const Ecdf ecdf(std::move(sample));
  const auto curve = ecdf.curve(std::size_t{64});
  ASSERT_EQ(curve.size(), 64u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

// Property: for any sample, the interpolated (type-7) quantile satisfies
// F(quantile(q)) >= q - 1/n (an interpolated value can sit strictly below
// the next order statistic, costing at most one sample of mass).
class EcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProperty, QuantileFractionRoundTrip) {
  Xoshiro256 rng(GetParam());
  std::vector<double> sample;
  const std::size_t n = 1 + rng.bounded(500);
  for (std::size_t i = 0; i < n; ++i) {
    sample.push_back(sample_lognormal_median(rng, 20.0, 1.8));
  }
  const Ecdf ecdf(std::move(sample));
  const double slack = 1.0 / static_cast<double>(ecdf.size()) + 1e-9;
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_GE(ecdf.fraction_at_or_below(ecdf.quantile(q)), q - slack);
    // And the quantile always lies within the sample range.
    EXPECT_GE(ecdf.quantile(q), ecdf.min());
    EXPECT_LE(ecdf.quantile(q), ecdf.max());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 100.0, 10);
  h.add(-1.0);
  h.add(5.0);
  h.add(15.0);
  h.add(99.9);
  h.add(150.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, DecadeBins) {
  LogHistogram h(1.0, 1000.0, 1);
  h.add(2.0);
  h.add(20.0);
  h.add(200.0);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_NEAR(bins[0].lower, 1.0, 1e-9);
  EXPECT_NEAR(bins[2].upper, 1000.0, 1e-6);
}

TEST(Regression, RecoversLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(100.0), 203.0, 1e-9);
}

TEST(Regression, HandlesDegenerateInput) {
  EXPECT_THROW(fit_linear({1.0}, {}), std::invalid_argument);
  const LinearFit constant = fit_linear({1.0, 1.0}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(constant.slope, 0.0);
  EXPECT_DOUBLE_EQ(constant.intercept, 3.0);
}

TEST(Regression, PearsonSignAndRange) {
  std::vector<double> x;
  std::vector<double> up;
  std::vector<double> down;
  Xoshiro256 rng(55);
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    up.push_back(i + sample_normal(rng, 0.0, 5.0));
    down.push_back(-2.0 * i + sample_normal(rng, 0.0, 5.0));
  }
  EXPECT_GT(pearson(x, up), 0.9);
  EXPECT_LT(pearson(x, down), -0.9);
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(Regression, SpearmanHandlesMonotoneNonlinearity) {
  std::vector<double> x;
  std::vector<double> cubed;
  for (int i = 1; i <= 100; ++i) {
    x.push_back(i);
    cubed.push_back(static_cast<double>(i) * i * i);
  }
  // Perfect rank agreement even though the relation is nonlinear.
  EXPECT_NEAR(spearman(x, cubed), 1.0, 1e-12);
  std::vector<double> reversed(cubed.rbegin(), cubed.rend());
  EXPECT_NEAR(spearman(x, reversed), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(spearman({1.0}, {2.0}), 0.0);
}

TEST(Regression, SpearmanWithTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Bootstrap, MedianIntervalCoversTruth) {
  Xoshiro256 rng(61);
  std::vector<double> sample;
  for (int i = 0; i < 400; ++i) {
    sample.push_back(sample_lognormal_median(rng, 25.0, 1.4));
  }
  const auto median = [](const std::vector<double>& v) {
    return Ecdf(v).median();
  };
  const BootstrapInterval ci = bootstrap_ci(sample, median, 0.95, 500, rng);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_LT(ci.lower, 25.0);
  EXPECT_GT(ci.upper, 23.0);
}

TEST(Bootstrap, RatioIntervalNearTruth) {
  Xoshiro256 rng(62);
  std::vector<double> num;
  std::vector<double> den;
  for (int i = 0; i < 300; ++i) {
    num.push_back(sample_lognormal_median(rng, 50.0, 1.3));
    den.push_back(sample_lognormal_median(rng, 20.0, 1.3));
  }
  const auto median = [](const std::vector<double>& v) {
    return Ecdf(v).median();
  };
  const BootstrapInterval ci =
      bootstrap_ratio_ci(num, den, median, 0.95, 400, rng);
  EXPECT_NEAR(ci.point, 2.5, 0.3);
  EXPECT_LT(ci.lower, ci.upper);
}

TEST(Bootstrap, RejectsEmpty) {
  Xoshiro256 rng(63);
  const auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  EXPECT_THROW(bootstrap_ci({}, mean, 0.95, 10, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci({1.0}, mean, 0.95, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace shears::stats
