// The property runner itself: replay-spec parsing, the iterate → shrink →
// banner pipeline, and the acceptance criterion that a printed seed
// deterministically reproduces the same shrunk counterexample.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "check/gen.hpp"
#include "check/property.hpp"

namespace shears::check {
namespace {

TEST(ReplaySpec, ParsesHexSeedAndSize) {
  std::uint64_t seed = 0;
  int size = -1;
  ASSERT_TRUE(parse_replay_spec("0xdeadbeef:7", seed, size));
  EXPECT_EQ(seed, 0xdeadbeefULL);
  EXPECT_EQ(size, 7);

  ASSERT_TRUE(parse_replay_spec("DEAD:12", seed, size));
  EXPECT_EQ(seed, 0xdeadULL);
  EXPECT_EQ(size, 12);
}

TEST(ReplaySpec, SizeIsOptional) {
  std::uint64_t seed = 0;
  int size = 33;  // must be left untouched when the spec has no size part
  ASSERT_TRUE(parse_replay_spec("0xff", seed, size));
  EXPECT_EQ(seed, 0xffULL);
  EXPECT_EQ(size, 33);
}

TEST(ReplaySpec, RejectsMalformedInput) {
  std::uint64_t seed = 99;
  int size = 99;
  EXPECT_FALSE(parse_replay_spec("", seed, size));
  EXPECT_FALSE(parse_replay_spec("0x", seed, size));
  EXPECT_FALSE(parse_replay_spec("xyz", seed, size));
  EXPECT_FALSE(parse_replay_spec("12g4", seed, size));
  EXPECT_FALSE(parse_replay_spec("ab:", seed, size));
  EXPECT_FALSE(parse_replay_spec("ab:-3", seed, size));
  EXPECT_FALSE(parse_replay_spec("ab:4x", seed, size));
  // Outputs untouched on failure.
  EXPECT_EQ(seed, 99u);
  EXPECT_EQ(size, 99);
}

TEST(ReplaySpec, RoundTripsThroughTheBanner) {
  CheckConfig config;
  config.iterations = 8;
  config.max_size = 30;
  const CheckResult result = check(
      "round_trip", [](Gen& gen) { require(gen.size() < 12, "size >= 12"); },
      config);
  ASSERT_FALSE(result.passed);
  const std::string spec = result.replay_spec();
  ASSERT_TRUE(spec.rfind("SHEARS_CHECK_SEED=", 0) == 0);
  std::uint64_t seed = 0;
  int size = -1;
  ASSERT_TRUE(parse_replay_spec(
      spec.substr(std::string("SHEARS_CHECK_SEED=").size()), seed, size));
  EXPECT_EQ(seed, result.counterexample->seed);
  EXPECT_EQ(size, result.counterexample->size);
}

TEST(Check, PassingPropertyRunsAllIterations) {
  CheckConfig config;
  config.iterations = 10;
  const CheckResult result =
      check("always_passes", [](Gen&) {}, config);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(result.iterations_run, 10);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_TRUE(result.banner.empty());
  EXPECT_TRUE(result.replay_spec().empty());
}

TEST(Check, ShrinksToTheExactThreshold) {
  // A property failing iff size >= K must shrink to exactly K: greedy
  // shrinking accepts candidates down to K and at size K every candidate
  // (all < K) passes, so the loop stops.
  constexpr int kThreshold = 17;
  CheckConfig config;
  config.iterations = 12;
  config.max_size = 40;
  const CheckResult result = check(
      "threshold",
      [](Gen& gen) {
        require(gen.size() < kThreshold, "size crossed the threshold");
      },
      config);
  ASSERT_FALSE(result.passed);
  EXPECT_EQ(result.counterexample->size, kThreshold);
  EXPECT_GE(result.counterexample->original_size, kThreshold);
  EXPECT_EQ(result.counterexample->message, "size crossed the threshold");
  EXPECT_NE(result.banner.find("SHEARS_CHECK_SEED=0x"), std::string::npos);
  EXPECT_NE(result.banner.find("FAILED"), std::string::npos);
  EXPECT_NE(result.banner.find("size crossed the threshold"),
            std::string::npos);
}

TEST(Check, ReplaySeedReproducesTheSameShrunkCounterexample) {
  // The acceptance criterion: take the banner's (seed, size), force it
  // through replay mode, and land on the bit-identical counterexample.
  const auto property = [](Gen& gen) {
    // Value-dependent failure so the seed matters, not just the size.
    const int probes = gen.scaled(1);
    require(probes < 9, "fleet too large: " + std::to_string(probes));
  };
  CheckConfig config;
  config.iterations = 24;
  config.max_size = 40;
  const CheckResult first = check("replayed", property, config);
  ASSERT_FALSE(first.passed);

  CheckConfig replay;
  replay.replay_seed = first.counterexample->seed;
  replay.replay_size = first.counterexample->size;
  const CheckResult second = check("replayed", property, replay);
  ASSERT_FALSE(second.passed);
  EXPECT_EQ(second.counterexample->seed, first.counterexample->seed);
  EXPECT_EQ(second.counterexample->size, first.counterexample->size);
  EXPECT_EQ(second.counterexample->message, first.counterexample->message);
  // Already minimal: re-shrinking from the replayed case accepts nothing.
  EXPECT_EQ(second.counterexample->shrink_steps, 0);
}

TEST(Check, DeterministicAcrossRuns) {
  const auto property = [](Gen& gen) {
    require(gen.u64() % 97 != 13, "hit the magic residue");
  };
  CheckConfig config;
  config.iterations = 200;
  const CheckResult a = check("deterministic", property, config);
  const CheckResult b = check("deterministic", property, config);
  ASSERT_EQ(a.passed, b.passed);
  if (!a.passed) {
    EXPECT_EQ(a.counterexample->seed, b.counterexample->seed);
    EXPECT_EQ(a.counterexample->size, b.counterexample->size);
    EXPECT_EQ(a.banner, b.banner);
  }
}

TEST(Check, SiblingPropertiesExploreIndependentSeeds) {
  // The property name is mixed into the seed stream; two properties under
  // the same root must not see the same first case seed.
  std::uint64_t seed_a = 0;
  std::uint64_t seed_b = 0;
  CheckConfig config;
  config.iterations = 1;
  (void)check("name_a", [&](Gen& gen) { seed_a = gen.seed(); }, config);
  (void)check("name_b", [&](Gen& gen) { seed_b = gen.seed(); }, config);
  EXPECT_NE(seed_a, seed_b);
}

TEST(Check, UnexpectedExceptionIsAFailure) {
  CheckConfig config;
  config.iterations = 1;
  const CheckResult result = check(
      "throws_logic_error",
      [](Gen&) { throw std::logic_error("not a PropertyFailure"); }, config);
  ASSERT_FALSE(result.passed);
  EXPECT_NE(result.counterexample->message.find("unexpected exception"),
            std::string::npos);
  EXPECT_NE(result.counterexample->message.find("not a PropertyFailure"),
            std::string::npos);
}

TEST(Check, SizeRampCoversZeroToMax) {
  int min_size = 1 << 20;
  int max_size = -1;
  CheckConfig config;
  config.iterations = 9;
  config.max_size = 24;
  const CheckResult result = check(
      "ramp",
      [&](Gen& gen) {
        min_size = std::min(min_size, gen.size());
        max_size = std::max(max_size, gen.size());
      },
      config);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(min_size, 0);
  EXPECT_EQ(max_size, 24);
}

}  // namespace
}  // namespace shears::check
