// Tests for the Mann-Whitney U rank-sum test.
#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.hpp"
#include "stats/ranktest.hpp"
#include "stats/rng.hpp"

namespace shears::stats {
namespace {

TEST(MannWhitney, RejectsEmpty) {
  EXPECT_THROW((void)mann_whitney_u({}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)mann_whitney_u({1.0}, {}), std::invalid_argument);
}

TEST(MannWhitney, IdenticalSamplesShowNoEffect) {
  const std::vector<double> same(50, 3.0);
  const RankSumResult r = mann_whitney_u(same, same);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
  EXPECT_DOUBLE_EQ(r.effect_size, 0.5);
}

TEST(MannWhitney, DetectsClearShift) {
  Xoshiro256 rng(1);
  std::vector<double> slow;
  std::vector<double> fast;
  for (int i = 0; i < 400; ++i) {
    slow.push_back(sample_lognormal_median(rng, 35.0, 1.4));
    fast.push_back(sample_lognormal_median(rng, 14.0, 1.4));
  }
  const RankSumResult r = mann_whitney_u(slow, fast);
  EXPECT_LT(r.p_two_sided, 1e-6);
  EXPECT_GT(r.effect_size, 0.85);  // slow almost always exceeds fast
  EXPECT_GT(r.z_score, 5.0);
}

TEST(MannWhitney, SymmetricEffectSizes) {
  Xoshiro256 rng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(sample_lognormal_median(rng, 20.0, 1.3));
    b.push_back(sample_lognormal_median(rng, 30.0, 1.3));
  }
  const RankSumResult ab = mann_whitney_u(a, b);
  const RankSumResult ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.effect_size + ba.effect_size, 1.0, 1e-9);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-9);
}

TEST(MannWhitney, SameDistributionIsUsuallyInsignificant) {
  // Property over seeds: drawing both samples from one distribution
  // should rarely produce small p-values.
  int significant = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Xoshiro256 rng(seed);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 150; ++i) {
      a.push_back(sample_lognormal_median(rng, 22.0, 1.5));
      b.push_back(sample_lognormal_median(rng, 22.0, 1.5));
    }
    if (mann_whitney_u(a, b).p_two_sided < 0.05) ++significant;
  }
  EXPECT_LE(significant, 6);  // ~5% expected, allow slack
}

TEST(MannWhitney, HandlesHeavyTies) {
  const std::vector<double> a = {1, 1, 1, 2, 2, 3};
  const std::vector<double> b = {2, 2, 3, 3, 3, 4};
  const RankSumResult r = mann_whitney_u(a, b);
  EXPECT_LT(r.effect_size, 0.5);  // a tends smaller
  EXPECT_GT(r.p_two_sided, 0.0);
  EXPECT_LE(r.p_two_sided, 1.0);
}

TEST(KolmogorovSmirnov, RejectsEmpty) {
  EXPECT_THROW((void)kolmogorov_smirnov({}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)kolmogorov_smirnov({1.0}, {}), std::invalid_argument);
}

TEST(KolmogorovSmirnov, IdenticalSamplesAreIndistinguishable) {
  Xoshiro256 rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) {
    sample.push_back(sample_lognormal_median(rng, 20.0, 1.5));
  }
  const KsResult r = kolmogorov_smirnov(sample, sample);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(KolmogorovSmirnov, DetectsScaleDifferenceRankTestMisses) {
  // Same median, different spread: a location test sees nothing, KS does.
  Xoshiro256 rng(10);
  std::vector<double> narrow;
  std::vector<double> wide;
  for (int i = 0; i < 800; ++i) {
    narrow.push_back(sample_lognormal_median(rng, 20.0, 1.1));
    wide.push_back(sample_lognormal_median(rng, 20.0, 2.5));
  }
  const KsResult ks = kolmogorov_smirnov(narrow, wide);
  EXPECT_LT(ks.p_value, 0.001);
  const RankSumResult mw = mann_whitney_u(narrow, wide);
  EXPECT_GT(mw.p_two_sided, 0.01);  // medians agree
}

TEST(KolmogorovSmirnov, StatisticBoundsAndSymmetry) {
  Xoshiro256 rng(11);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(sample_lognormal_median(rng, 15.0, 1.4));
    b.push_back(sample_lognormal_median(rng, 25.0, 1.4));
  }
  const KsResult ab = kolmogorov_smirnov(a, b);
  const KsResult ba = kolmogorov_smirnov(b, a);
  EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic);
  EXPECT_GT(ab.statistic, 0.0);
  EXPECT_LE(ab.statistic, 1.0);
  // Disjoint supports -> statistic 1.
  const KsResult disjoint = kolmogorov_smirnov({1.0, 2.0}, {10.0, 11.0});
  EXPECT_DOUBLE_EQ(disjoint.statistic, 1.0);
}

TEST(KolmogorovSmirnov, SameDistributionIsUsuallyInsignificant) {
  int significant = 0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    Xoshiro256 rng(seed);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 200; ++i) {
      a.push_back(sample_lognormal_median(rng, 22.0, 1.5));
      b.push_back(sample_lognormal_median(rng, 22.0, 1.5));
    }
    if (kolmogorov_smirnov(a, b).p_value < 0.05) ++significant;
  }
  EXPECT_LE(significant, 6);
}

}  // namespace
}  // namespace shears::stats
