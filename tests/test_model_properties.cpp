// Property sweeps over the latency model: invariants that must hold for
// EVERY (tier, access, backbone, distance) combination, exercised via
// parameterized gtest.
#include <gtest/gtest.h>

#include <tuple>

#include "net/latency_model.hpp"
#include "net/segments.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "topology/registry.hpp"

namespace shears::net {
namespace {

using geo::ConnectivityTier;
using topology::BackboneClass;

constexpr ConnectivityTier kTiers[] = {
    ConnectivityTier::kTier1, ConnectivityTier::kTier2,
    ConnectivityTier::kTier3, ConnectivityTier::kTier4};

const topology::CloudRegion& some_region() {
  return *topology::all_regions().data();
}

// ---------------------------------------------------------------------
// Sweep 1: distance monotonicity for every tier x backbone.
class DistanceMonotone
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistanceMonotone, BasePathRttGrowsWithDistance) {
  const auto tier = kTiers[std::get<0>(GetParam())];
  const auto backbone = std::get<1>(GetParam()) == 0 ? BackboneClass::kPrivate
                                                     : BackboneClass::kPublic;
  const PathModelConfig config;
  const geo::GeoPoint origin{20.0, 10.0};
  double prev = 0.0;
  for (double dlon = 0.5; dlon < 160.0; dlon *= 1.7) {
    const geo::GeoPoint dst{20.0, 10.0 + dlon};
    const auto path = characterize_path(config, origin, tier, dst, backbone);
    EXPECT_GE(path.base_rtt_ms(), prev)
        << "tier " << static_cast<int>(tier) << " dlon " << dlon;
    prev = path.base_rtt_ms();
    // Routed distance at least geodesic, stretch bounded by the regional
    // value.
    EXPECT_GE(path.routed_km + 1e-9,
              std::min(path.geodesic_km, config.min_routed_km));
    EXPECT_LE(path.routed_km,
              std::max(path.geodesic_km, config.min_routed_km) *
                      stretch_for(config, tier, backbone) +
                  1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TierBackbone, DistanceMonotone,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 2)));

// ---------------------------------------------------------------------
// Sweep 2: tier degradation for every access technology.
class TierDegradation : public ::testing::TestWithParam<int> {};

TEST_P(TierDegradation, WorseTiersNeverImproveBaseline) {
  const auto access =
      kAllAccessTechnologies[static_cast<std::size_t>(GetParam())];
  const LatencyModel model;
  const geo::GeoPoint site{48.0, 10.0};
  double prev = 0.0;
  for (const ConnectivityTier tier : kTiers) {
    const Endpoint user{site, tier, access};
    const double rtt = model.baseline_rtt_ms(user, some_region());
    EXPECT_GT(rtt, prev) << to_string(access);
    prev = rtt;
  }
}

INSTANTIATE_TEST_SUITE_P(Access, TierDegradation, ::testing::Range(0, 7));

// ---------------------------------------------------------------------
// Sweep 3: sampling statistics per access technology.
class SamplingProperties : public ::testing::TestWithParam<int> {};

TEST_P(SamplingProperties, SamplesAreConsistentWithBaseline) {
  const auto access =
      kAllAccessTechnologies[static_cast<std::size_t>(GetParam())];
  const LatencyModel model;
  const Endpoint user{{48.0, 10.0}, ConnectivityTier::kTier2, access};
  const topology::CloudRegion& region = some_region();
  const double baseline = model.baseline_rtt_ms(user, region);
  const double floor = model.path_to(user, region).propagation_ms;

  stats::Xoshiro256 rng(7777 + static_cast<std::uint64_t>(GetParam()));
  stats::Summary summary;
  for (int i = 0; i < 30000; ++i) {
    const PingObservation obs = model.ping_once(user, region, rng);
    if (obs.lost) continue;
    summary.add(obs.rtt_ms);
    ASSERT_GE(obs.rtt_ms, floor);
  }
  ASSERT_GT(summary.count(), 25000u);
  // The distribution is right-skewed: mean above the congestion-free
  // baseline, but not absurdly so.
  EXPECT_GT(summary.mean(), baseline * 0.8) << to_string(access);
  EXPECT_LT(summary.mean(), baseline * 3.0 + 30.0) << to_string(access);
  EXPECT_GT(summary.max(), summary.mean());  // a real tail exists
}

INSTANTIATE_TEST_SUITE_P(Access, SamplingProperties, ::testing::Range(0, 7));

// ---------------------------------------------------------------------
// Sweep 4: segment decomposition consistency across random pairs.
class SegmentConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentConsistency, DecompositionAlwaysSumsAndStaysNonNegative) {
  stats::Xoshiro256 rng(GetParam());
  const LatencyModel model;
  const auto regions = topology::all_regions();
  const auto countries = geo::all_countries();
  for (int trial = 0; trial < 25; ++trial) {
    const geo::Country& country = countries[rng.bounded(countries.size())];
    const auto access = kAllAccessTechnologies[rng.bounded(7)];
    const topology::CloudRegion& region = regions[rng.bounded(regions.size())];
    const Endpoint user{country.site, country.tier, access};
    const SegmentBreakdown breakdown = decompose_path(model, user, region);
    double total = 0.0;
    for (const double v : breakdown.ms) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, model.baseline_rtt_ms(user, region), 1e-6)
        << country.name << " -> " << region.region_id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentConsistency,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------
// Sweep 5: the wireless what-if knob scales monotonically everywhere.
class WirelessKnob : public ::testing::TestWithParam<int> {};

TEST_P(WirelessKnob, SmallerScaleNeverRaisesWirelessBaseline) {
  const auto tier = kTiers[static_cast<std::size_t>(GetParam())];
  const Endpoint lte{{40.0, -3.0}, tier, AccessTechnology::kLte};
  double prev = 1e18;
  for (const double scale : {1.0, 0.7, 0.4, 0.2, 0.05}) {
    LatencyModelConfig config;
    config.wireless_latency_scale = scale;
    const LatencyModel model(config);
    const double rtt = model.baseline_rtt_ms(lte, some_region());
    EXPECT_LT(rtt, prev);
    prev = rtt;
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, WirelessKnob, ::testing::Range(0, 4));

}  // namespace
}  // namespace shears::net
