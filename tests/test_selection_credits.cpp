// Tests for the Atlas API layer: probe filters and the credit economy.
#include <gtest/gtest.h>

#include <algorithm>

#include "atlas/credits.hpp"
#include "atlas/selection.hpp"

namespace shears::atlas {
namespace {

const ProbeFleet& fleet() {
  static const ProbeFleet instance = ProbeFleet::generate({});
  return instance;
}

TEST(Selection, UnfilteredExcludesOnlyPrivileged) {
  const auto selected = select_probes(fleet(), {});
  std::size_t privileged = 0;
  for (const Probe& p : fleet().probes()) privileged += p.privileged();
  EXPECT_EQ(selected.size(), fleet().size() - privileged);
}

TEST(Selection, ContinentFilter) {
  ProbeFilter filter;
  filter.continent = geo::Continent::kAfrica;
  for (const Probe* p : select_probes(fleet(), filter)) {
    EXPECT_EQ(p->country->continent, geo::Continent::kAfrica);
  }
  EXPECT_GT(count_probes(fleet(), filter), 50u);
}

TEST(Selection, CountryFilter) {
  ProbeFilter filter;
  filter.country_iso2 = "DE";
  const auto selected = select_probes(fleet(), filter);
  EXPECT_GT(selected.size(), 100u);
  for (const Probe* p : selected) EXPECT_EQ(p->country->iso2, "DE");
}

TEST(Selection, TagFilters) {
  ProbeFilter wireless;
  wireless.require_tags = {"lte"};
  for (const Probe* p : select_probes(fleet(), wireless)) {
    EXPECT_NE(std::find(p->tags.begin(), p->tags.end(), "lte"),
              p->tags.end());
  }
  ProbeFilter not_home;
  not_home.exclude_tags = {"home"};
  for (const Probe* p : select_probes(fleet(), not_home)) {
    EXPECT_EQ(std::find(p->tags.begin(), p->tags.end(), "home"),
              p->tags.end());
  }
}

TEST(Selection, PrivilegedOptIn) {
  ProbeFilter filter;
  filter.exclude_privileged = false;
  filter.require_tags = {"datacentre"};
  EXPECT_GT(count_probes(fleet(), filter), 0u);
  filter.exclude_privileged = true;
  EXPECT_EQ(count_probes(fleet(), filter), 0u);
}

TEST(Selection, LimitIsStablePrefix) {
  ProbeFilter unlimited;
  unlimited.continent = geo::Continent::kEurope;
  ProbeFilter limited = unlimited;
  limited.limit = 10;
  const auto all = select_probes(fleet(), unlimited);
  const auto ten = select_probes(fleet(), limited);
  ASSERT_EQ(ten.size(), 10u);
  for (std::size_t i = 0; i < ten.size(); ++i) EXPECT_EQ(ten[i], all[i]);
  EXPECT_EQ(count_probes(fleet(), limited), 10u);
}

TEST(Credits, CampaignCostMatchesHandComputation) {
  const CreditPolicy policy;
  CampaignConfig config;
  config.duration_days = 10;     // 80 ticks at 3 h
  config.targets_per_tick = 1;
  config.packets_per_ping = 3;
  // 80 ticks * 1 target * 3 packets * 10 credits = 2400 credits per probe.
  EXPECT_DOUBLE_EQ(campaign_cost_credits(policy, config, 1), 2400.0);
  EXPECT_DOUBLE_EQ(campaign_cost_credits(policy, config, 3200),
                   2400.0 * 3200);
  config.probe_uptime = 0.5;
  EXPECT_DOUBLE_EQ(campaign_cost_credits(policy, config, 1), 1200.0);
}

TEST(Credits, PaperScaleCampaignNeedsRaisedQuota) {
  // The paper's schedule (3200 probes, 3 h pings) costs ~768k credits per
  // target per day — one rotating target per tick almost exhausts the
  // standard 1M daily cap, matching the acknowledgements' "increased
  // quota limits".
  const CreditPolicy policy;
  const int affordable = affordable_targets_per_tick(
      policy, policy.daily_spend_cap, 3200, 3, 3);
  EXPECT_EQ(affordable, 1);
  // Measuring every in-continent region each tick (~25 targets) would
  // need a far larger cap — the raised quota.
  CreditPolicy raised = policy;
  raised.daily_spend_cap = 25.0 * 768000.0;
  const int with_raised_quota = affordable_targets_per_tick(
      raised, raised.daily_spend_cap, 3200, 3, 3);
  EXPECT_GE(with_raised_quota, 25);
}

TEST(Credits, LedgerEnforcesBalanceAndDailyCap) {
  CreditPolicy policy;
  policy.cost_per_ping_packet = 10.0;
  policy.daily_spend_cap = 100.0;
  CreditLedger ledger(policy, /*initial_balance=*/1000.0);
  // Daily cap: 100 credits = 3 bursts of 3 packets (90), 4th refused.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ledger.charge_ping(3));
  EXPECT_FALSE(ledger.charge_ping(3));
  EXPECT_DOUBLE_EQ(ledger.balance(), 910.0);
  // A new day resets the cap and accrues hosting income.
  ledger.start_day(/*hosted_probes=*/1);
  EXPECT_DOUBLE_EQ(ledger.balance(), 910.0 + policy.daily_earn_per_hosted_probe);
  EXPECT_TRUE(ledger.charge_ping(3));
}

TEST(Credits, LedgerRefusesWhenBroke) {
  CreditPolicy policy;
  CreditLedger ledger(policy, 5.0);  // less than one packet
  EXPECT_FALSE(ledger.charge_ping(1));
  EXPECT_DOUBLE_EQ(ledger.balance(), 5.0);
}

TEST(Credits, AffordableTargetsDegenerateInputs) {
  const CreditPolicy policy;
  EXPECT_EQ(affordable_targets_per_tick(policy, 1e9, 0, 3, 3), 0);
  EXPECT_EQ(affordable_targets_per_tick(policy, 0.0, 3200, 3, 3), 0);
}

}  // namespace
}  // namespace shears::atlas
