// Tests for the network latency model: access profiles, path physics,
// end-to-end sampling invariants, and the published calibration anchors.
#include <gtest/gtest.h>

#include <vector>

#include "geo/country.hpp"
#include "net/access.hpp"
#include "net/endpoint.hpp"
#include "net/latency_model.hpp"
#include "net/path.hpp"
#include "stats/ecdf.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "topology/registry.hpp"

namespace shears::net {
namespace {

using geo::ConnectivityTier;

const topology::CloudRegion* region_by_id(std::string_view id) {
  for (const topology::CloudRegion& r : topology::all_regions()) {
    if (r.region_id == id) return &r;
  }
  return nullptr;
}

TEST(Access, WirelessClassification) {
  EXPECT_FALSE(is_wireless(AccessTechnology::kEthernet));
  EXPECT_FALSE(is_wireless(AccessTechnology::kFibre));
  EXPECT_FALSE(is_wireless(AccessTechnology::kCable));
  EXPECT_FALSE(is_wireless(AccessTechnology::kDsl));
  EXPECT_TRUE(is_wireless(AccessTechnology::kWifi));
  EXPECT_TRUE(is_wireless(AccessTechnology::kLte));
  EXPECT_TRUE(is_wireless(AccessTechnology::kFiveG));
}

TEST(Access, WiredFasterThanWirelessAtEveryTier) {
  for (const auto tier :
       {ConnectivityTier::kTier1, ConnectivityTier::kTier2,
        ConnectivityTier::kTier3, ConnectivityTier::kTier4}) {
    const double ethernet = profile_for(AccessTechnology::kEthernet, tier).median_ms;
    const double fibre = profile_for(AccessTechnology::kFibre, tier).median_ms;
    const double wifi = profile_for(AccessTechnology::kWifi, tier).median_ms;
    const double lte = profile_for(AccessTechnology::kLte, tier).median_ms;
    EXPECT_LT(ethernet, wifi);
    EXPECT_LT(fibre, wifi);
    EXPECT_LT(wifi, lte);
  }
}

TEST(Access, TierMonotonicallyDegrades) {
  for (const AccessTechnology t : kAllAccessTechnologies) {
    double prev = 0.0;
    for (const auto tier :
         {ConnectivityTier::kTier1, ConnectivityTier::kTier2,
          ConnectivityTier::kTier3, ConnectivityTier::kTier4}) {
      const AccessProfile p = profile_for(t, tier);
      EXPECT_GT(p.median_ms, prev) << to_string(t);
      prev = p.median_ms;
    }
  }
}

TEST(Access, LtePenaltyMatchesLiterature) {
  // The paper cites 10-40 ms of added last-mile latency on wireless.
  const double wired =
      profile_for(AccessTechnology::kCable, ConnectivityTier::kTier1).median_ms;
  const double lte =
      profile_for(AccessTechnology::kLte, ConnectivityTier::kTier1).median_ms;
  EXPECT_GE(lte - wired, 10.0);
  EXPECT_LE(lte - wired, 40.0);
}

TEST(Access, FiveGImprovesOnLteButMissesItuTarget) {
  // §5: early 5G is far from the 1 ms ITU target but better than LTE.
  const double lte =
      profile_for(AccessTechnology::kLte, ConnectivityTier::kTier1).median_ms;
  const double five_g =
      profile_for(AccessTechnology::kFiveG, ConnectivityTier::kTier1).median_ms;
  EXPECT_LT(five_g, lte);
  EXPECT_GT(five_g, 1.0);
}

TEST(Access, SamplesRespectFloorAndScatter) {
  stats::Xoshiro256 rng(5);
  const AccessProfile p =
      profile_for(AccessTechnology::kDsl, ConnectivityTier::kTier2);
  stats::Summary s;
  for (int i = 0; i < 20000; ++i) s.add(sample_access_latency(p, rng));
  EXPECT_GE(s.min(), 0.2);
  EXPECT_GT(s.max(), s.min() * 2);  // real scatter, not a constant
  // Median of samples near the profile median.
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(sample_access_latency(p, rng));
  EXPECT_NEAR(stats::Ecdf(std::move(sample)).median(), p.median_ms,
              p.median_ms * 0.15);
}

TEST(Access, BufferbloatCreatesHeavyTail) {
  stats::Xoshiro256 rng(6);
  const AccessProfile lte =
      profile_for(AccessTechnology::kLte, ConnectivityTier::kTier1);
  std::vector<double> sample;
  for (int i = 0; i < 100000; ++i) {
    sample.push_back(sample_access_latency(lte, rng));
  }
  const stats::Ecdf ecdf(std::move(sample));
  // §5: LTE "commonly experiences delays lasting several seconds due to
  // queue build-ups" — the extreme tail must reach hundreds of ms.
  EXPECT_GT(ecdf.quantile(0.9999), 300.0);
  EXPECT_LT(ecdf.median(), 60.0);
}

TEST(Path, PropagationScalesWithDistance) {
  const PathModelConfig config;
  const geo::GeoPoint frankfurt{50.11, 8.68};
  const geo::GeoPoint vienna{48.21, 16.37};
  const geo::GeoPoint tokyo{35.68, 139.69};
  const auto near = characterize_path(config, vienna,
                                      ConnectivityTier::kTier1, frankfurt,
                                      topology::BackboneClass::kPrivate);
  const auto far = characterize_path(config, tokyo, ConnectivityTier::kTier1,
                                     frankfurt,
                                     topology::BackboneClass::kPrivate);
  EXPECT_LT(near.propagation_ms, far.propagation_ms);
  EXPECT_GT(far.geodesic_km, 9000.0);
  EXPECT_GT(near.routed_km, near.geodesic_km);  // stretch > 1
}

TEST(Path, MetroFloorAppliesToTinyDistances) {
  const PathModelConfig config;
  const geo::GeoPoint a{50.11, 8.68};
  const geo::GeoPoint b{50.12, 8.69};
  const auto path = characterize_path(config, a, ConnectivityTier::kTier1, b,
                                      topology::BackboneClass::kPrivate);
  EXPECT_GE(path.routed_km, config.min_routed_km);
  EXPECT_GT(path.base_rtt_ms(), 0.5);
}

TEST(Path, TierWorsensStretch) {
  const PathModelConfig config;
  double prev = 0.0;
  for (const auto tier :
       {ConnectivityTier::kTier1, ConnectivityTier::kTier2,
        ConnectivityTier::kTier3, ConnectivityTier::kTier4}) {
    const double s =
        stretch_for(config, tier, topology::BackboneClass::kPrivate);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Path, PrivateBackboneBeatsPublicTransit) {
  const PathModelConfig config;
  for (const auto tier :
       {ConnectivityTier::kTier1, ConnectivityTier::kTier2,
        ConnectivityTier::kTier3, ConnectivityTier::kTier4}) {
    EXPECT_LT(stretch_for(config, tier, topology::BackboneClass::kPrivate),
              stretch_for(config, tier, topology::BackboneClass::kPublic));
  }
  // Public transit also crosses more AS boundaries.
  const geo::GeoPoint a{48.86, 2.35};
  const geo::GeoPoint b{50.11, 8.68};
  const auto private_path = characterize_path(
      config, a, ConnectivityTier::kTier1, b, topology::BackboneClass::kPrivate);
  const auto public_path = characterize_path(
      config, a, ConnectivityTier::kTier1, b, topology::BackboneClass::kPublic);
  EXPECT_LT(private_path.hop_count, public_path.hop_count);
  EXPECT_LT(private_path.base_rtt_ms(), public_path.base_rtt_ms());
}

TEST(Path, LongHaulStretchDecays) {
  const PathModelConfig config;
  const double regional = effective_stretch(
      config, ConnectivityTier::kTier3, topology::BackboneClass::kPrivate, 0.0);
  const double long_haul =
      effective_stretch(config, ConnectivityTier::kTier3,
                        topology::BackboneClass::kPrivate, 15000.0);
  EXPECT_DOUBLE_EQ(regional,
                   stretch_for(config, ConnectivityTier::kTier3,
                               topology::BackboneClass::kPrivate));
  EXPECT_LT(long_haul, regional);
  EXPECT_GT(long_haul, config.long_haul_stretch);
}

TEST(Path, FibrePaceMatchesPhysics) {
  // ~4.9 us/km one way -> a 1000 km routed path costs ~9.8 ms RTT.
  PathModelConfig config;
  config.stretch_private[0] = 1.0;
  config.min_routed_km = 0.0;
  const geo::GeoPoint a{0.0, 0.0};
  const geo::GeoPoint b{0.0, 8.9932};  // ~1000 km on the equator
  const auto path = characterize_path(config, a, ConnectivityTier::kTier1, b,
                                      topology::BackboneClass::kPrivate);
  EXPECT_NEAR(path.geodesic_km, 1000.0, 2.0);
  EXPECT_NEAR(path.propagation_ms, 9.8, 0.1);
}

TEST(LatencyModel, BaselineIsDeterministicAndPositive) {
  const LatencyModel model;
  const Endpoint src{{48.86, 2.35}, ConnectivityTier::kTier1,
                     AccessTechnology::kEthernet};
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  const double a = model.baseline_rtt_ms(src, *region);
  const double b = model.baseline_rtt_ms(src, *region);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.5);
  EXPECT_LT(a, 20.0);  // Paris probe to Paris region is metro-scale
}

TEST(LatencyModel, SamplesNeverBeatPhysics) {
  const LatencyModel model;
  const Endpoint src{{52.37, 4.90}, ConnectivityTier::kTier1,
                     AccessTechnology::kCable};
  const auto* region = region_by_id("eu-central-1");
  ASSERT_NE(region, nullptr);
  const double floor = model.path_to(src, *region).propagation_ms;
  stats::Xoshiro256 rng(77);
  for (int i = 0; i < 50000; ++i) {
    const PingObservation obs = model.ping_once(src, *region, rng);
    if (!obs.lost) {
      EXPECT_GE(obs.rtt_ms, floor);
    }
  }
}

TEST(LatencyModel, PingBurstAggregatesCorrectly) {
  const LatencyModel model;
  const Endpoint src{{51.51, -0.13}, ConnectivityTier::kTier1,
                     AccessTechnology::kFibre};
  const auto* region = region_by_id("eu-west-2");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(88);
  for (int i = 0; i < 2000; ++i) {
    const PingResult r = model.ping(src, *region, 3, rng);
    EXPECT_EQ(r.sent, 3);
    EXPECT_LE(r.received, 3);
    if (r.received > 0) {
      EXPECT_LE(r.min_ms, r.avg_ms);
      EXPECT_LE(r.avg_ms, r.max_ms);
      EXPECT_GT(r.min_ms, 0.0);
    }
  }
}

TEST(LatencyModel, LossRateIsSmallButNonzero) {
  LatencyModelConfig config;
  const LatencyModel model(config);
  const Endpoint src{{40.42, -3.70}, ConnectivityTier::kTier1,
                     AccessTechnology::kDsl};
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(99);
  int lost = 0;
  constexpr int kPings = 100000;
  for (int i = 0; i < kPings; ++i) {
    if (model.ping_once(src, *region, rng).lost) ++lost;
  }
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, kPings / 20);  // well under 5%
}

TEST(LatencyModel, WirelessScaleKnobOnlyAffectsWireless) {
  LatencyModelConfig improved;
  improved.wireless_latency_scale = 0.25;
  const LatencyModel base;
  const LatencyModel model(improved);
  const Endpoint wired{{48.21, 16.37}, ConnectivityTier::kTier1,
                       AccessTechnology::kEthernet};
  const Endpoint wireless{{48.21, 16.37}, ConnectivityTier::kTier1,
                          AccessTechnology::kLte};
  const auto* region = region_by_id("eu-central-1");
  ASSERT_NE(region, nullptr);
  EXPECT_DOUBLE_EQ(model.baseline_rtt_ms(wired, *region),
                   base.baseline_rtt_ms(wired, *region));
  EXPECT_LT(model.baseline_rtt_ms(wireless, *region),
            base.baseline_rtt_ms(wireless, *region));
}

TEST(LatencyModel, CalibrationAnchorIntraEurope) {
  // A well-connected German probe must reach Frankfurt in single-digit
  // milliseconds; an Austrian one in ~8-20 ms (Fig. 4's 10-20 ms band).
  const LatencyModel model;
  const auto* fra = region_by_id("eu-central-1");
  ASSERT_NE(fra, nullptr);
  const Endpoint de{{50.5, 8.9}, ConnectivityTier::kTier1,
                    AccessTechnology::kEthernet};
  const Endpoint at{{48.21, 16.37}, ConnectivityTier::kTier1,
                    AccessTechnology::kEthernet};
  EXPECT_LT(model.baseline_rtt_ms(de, *fra), 10.0);
  const double vienna = model.baseline_rtt_ms(at, *fra);
  EXPECT_GT(vienna, 8.0);
  EXPECT_LT(vienna, 20.0);
}

TEST(LatencyModel, CalibrationAnchorAfricaToEurope) {
  // §5: under-served countries see 150-200 ms; a tier-4 central-African
  // vantage point to Frankfurt must exceed the PL threshold.
  const LatencyModel model;
  const auto* fra = region_by_id("eu-central-1");
  ASSERT_NE(fra, nullptr);
  const geo::Country* td = geo::find_country("TD");
  ASSERT_NE(td, nullptr);
  const Endpoint chad{td->site, td->tier, AccessTechnology::kEthernet};
  const double rtt = model.baseline_rtt_ms(chad, *fra);
  EXPECT_GT(rtt, 100.0);
  EXPECT_LT(rtt, 250.0);
}

TEST(LatencyModel, DiurnalWeightShape) {
  // Peak at the peak hour, trough 12 hours away, symmetric, in [0, 1].
  EXPECT_DOUBLE_EQ(diurnal_weight(20.0, 20.0), 1.0);
  EXPECT_NEAR(diurnal_weight(8.0, 20.0), 0.0, 1e-12);
  EXPECT_NEAR(diurnal_weight(18.0, 20.0), diurnal_weight(22.0, 20.0), 1e-12);
  for (double h = 0.0; h < 24.0; h += 0.5) {
    const double w = diurnal_weight(h, 20.0);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(LatencyModel, LocalHourWrapsCorrectly) {
  EXPECT_DOUBLE_EQ(local_hour_at(12.0, 0.0), 12.0);
  EXPECT_DOUBLE_EQ(local_hour_at(12.0, 90.0), 18.0);   // +6h east
  EXPECT_DOUBLE_EQ(local_hour_at(12.0, -90.0), 6.0);   // -6h west
  EXPECT_DOUBLE_EQ(local_hour_at(23.0, 30.0), 1.0);    // wraps past 24
  EXPECT_DOUBLE_EQ(local_hour_at(1.0, -45.0), 22.0);   // wraps below 0
}

TEST(LatencyModel, EveningPingsAreSlowerThanNightPings) {
  const LatencyModel model;  // default diurnal amplitude
  const Endpoint src{{48.86, 2.35}, ConnectivityTier::kTier1,
                     AccessTechnology::kDsl};
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 rng(1234);
  // Paris is ~UTC; local evening ~ 20h UTC, deep night ~ 4h UTC.
  stats::Summary evening;
  stats::Summary night;
  for (int i = 0; i < 40000; ++i) {
    const PingObservation e = model.ping_once_at(src, *region, 20.0, rng);
    if (!e.lost) evening.add(e.rtt_ms);
    const PingObservation n = model.ping_once_at(src, *region, 4.0, rng);
    if (!n.lost) night.add(n.rtt_ms);
  }
  EXPECT_GT(evening.mean(), night.mean() * 1.05);
}

TEST(LatencyModel, ZeroAmplitudeDisablesDiurnal) {
  LatencyModelConfig config;
  config.diurnal_amplitude = 0.0;
  const LatencyModel model(config);
  const Endpoint src{{48.86, 2.35}, ConnectivityTier::kTier1,
                     AccessTechnology::kCable};
  const auto* region = region_by_id("eu-west-3");
  ASSERT_NE(region, nullptr);
  stats::Xoshiro256 a(7);
  stats::Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    const PingObservation peak = model.ping_once_at(src, *region, 20.0, a);
    const PingObservation off = model.ping_once(src, *region, b);
    EXPECT_EQ(peak.lost, off.lost);
    if (!peak.lost) {
      EXPECT_DOUBLE_EQ(peak.rtt_ms, off.rtt_ms);
    }
  }
}

TEST(LatencyModel, CalibrationAnchorFacebook40ms) {
  // Schlinker et al. (cited §5): wired users in served regions rarely see
  // more than ~40 ms to the cloud. Median wired sample for a tier-1
  // mid-distance European probe stays under 40 ms.
  const LatencyModel model;
  const auto* fra = region_by_id("eu-central-1");
  ASSERT_NE(fra, nullptr);
  const Endpoint probe{{45.46, 9.19}, ConnectivityTier::kTier1,
                       AccessTechnology::kCable};  // Milan
  stats::Xoshiro256 rng(123);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) {
    const PingObservation obs = model.ping_once(probe, *fra, rng);
    if (!obs.lost) sample.push_back(obs.rtt_ms);
  }
  EXPECT_LT(stats::Ecdf(std::move(sample)).median(), 40.0);
}

}  // namespace
}  // namespace shears::net
