file(REMOVE_RECURSE
  "CMakeFiles/bench_server_view.dir/bench_server_view.cpp.o"
  "CMakeFiles/bench_server_view.dir/bench_server_view.cpp.o.d"
  "bench_server_view"
  "bench_server_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
