# Empty dependencies file for bench_server_view.
# This may be replaced when dependencies are built.
