file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_stats.dir/bench_micro_stats.cpp.o"
  "CMakeFiles/bench_micro_stats.dir/bench_micro_stats.cpp.o.d"
  "bench_micro_stats"
  "bench_micro_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
