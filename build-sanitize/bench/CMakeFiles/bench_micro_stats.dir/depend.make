# Empty dependencies file for bench_micro_stats.
# This may be replaced when dependencies are built.
