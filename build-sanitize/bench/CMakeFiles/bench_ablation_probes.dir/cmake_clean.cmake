file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probes.dir/bench_ablation_probes.cpp.o"
  "CMakeFiles/bench_ablation_probes.dir/bench_ablation_probes.cpp.o.d"
  "bench_ablation_probes"
  "bench_ablation_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
