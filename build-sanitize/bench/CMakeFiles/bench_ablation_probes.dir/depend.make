# Empty dependencies file for bench_ablation_probes.
# This may be replaced when dependencies are built.
