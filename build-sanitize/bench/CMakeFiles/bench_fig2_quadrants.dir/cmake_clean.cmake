file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_quadrants.dir/bench_fig2_quadrants.cpp.o"
  "CMakeFiles/bench_fig2_quadrants.dir/bench_fig2_quadrants.cpp.o.d"
  "bench_fig2_quadrants"
  "bench_fig2_quadrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_quadrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
