# Empty dependencies file for bench_fig2_quadrants.
# This may be replaced when dependencies are built.
