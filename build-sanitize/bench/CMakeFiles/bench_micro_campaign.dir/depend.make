# Empty dependencies file for bench_micro_campaign.
# This may be replaced when dependencies are built.
