file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_campaign.dir/bench_micro_campaign.cpp.o"
  "CMakeFiles/bench_micro_campaign.dir/bench_micro_campaign.cpp.o.d"
  "bench_micro_campaign"
  "bench_micro_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
