file(REMOVE_RECURSE
  "CMakeFiles/bench_providers.dir/bench_providers.cpp.o"
  "CMakeFiles/bench_providers.dir/bench_providers.cpp.o.d"
  "bench_providers"
  "bench_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
