# Empty dependencies file for bench_providers.
# This may be replaced when dependencies are built.
