file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backbone.dir/bench_ablation_backbone.cpp.o"
  "CMakeFiles/bench_ablation_backbone.dir/bench_ablation_backbone.cpp.o.d"
  "bench_ablation_backbone"
  "bench_ablation_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
