# Empty dependencies file for bench_ablation_backbone.
# This may be replaced when dependencies are built.
