# Empty dependencies file for bench_fig6_all_cdf.
# This may be replaced when dependencies are built.
