
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_injection.cpp" "bench/CMakeFiles/bench_fault_injection.dir/bench_fault_injection.cpp.o" "gcc" "bench/CMakeFiles/bench_fault_injection.dir/bench_fault_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/core/CMakeFiles/shears_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/config/CMakeFiles/shears_config.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/edge/CMakeFiles/shears_edge.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/route/CMakeFiles/shears_route.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/atlas/CMakeFiles/shears_atlas.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/net/CMakeFiles/shears_net.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/topology/CMakeFiles/shears_topology.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/geo/CMakeFiles/shears_geo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/apps/CMakeFiles/shears_apps.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/stats/CMakeFiles/shears_stats.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/trends/CMakeFiles/shears_trends.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/report/CMakeFiles/shears_report.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/faults/CMakeFiles/shears_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
