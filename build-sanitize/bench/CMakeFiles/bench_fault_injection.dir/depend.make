# Empty dependencies file for bench_fault_injection.
# This may be replaced when dependencies are built.
