# Empty dependencies file for bench_delay_breakdown.
# This may be replaced when dependencies are built.
