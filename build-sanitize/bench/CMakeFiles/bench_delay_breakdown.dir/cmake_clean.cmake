file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_breakdown.dir/bench_delay_breakdown.cpp.o"
  "CMakeFiles/bench_delay_breakdown.dir/bench_delay_breakdown.cpp.o.d"
  "bench_delay_breakdown"
  "bench_delay_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
