file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_access_type.dir/bench_fig7_access_type.cpp.o"
  "CMakeFiles/bench_fig7_access_type.dir/bench_fig7_access_type.cpp.o.d"
  "bench_fig7_access_type"
  "bench_fig7_access_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_access_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
