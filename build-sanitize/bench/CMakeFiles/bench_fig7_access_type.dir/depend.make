# Empty dependencies file for bench_fig7_access_type.
# This may be replaced when dependencies are built.
