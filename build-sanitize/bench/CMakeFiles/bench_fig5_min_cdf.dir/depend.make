# Empty dependencies file for bench_fig5_min_cdf.
# This may be replaced when dependencies are built.
