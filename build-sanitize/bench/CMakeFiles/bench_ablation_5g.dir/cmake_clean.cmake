file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_5g.dir/bench_ablation_5g.cpp.o"
  "CMakeFiles/bench_ablation_5g.dir/bench_ablation_5g.cpp.o.d"
  "bench_ablation_5g"
  "bench_ablation_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
