# Empty dependencies file for bench_ablation_5g.
# This may be replaced when dependencies are built.
