# Empty dependencies file for bench_ablation_edge_gain.
# This may be replaced when dependencies are built.
