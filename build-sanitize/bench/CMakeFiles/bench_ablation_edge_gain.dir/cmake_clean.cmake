file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_edge_gain.dir/bench_ablation_edge_gain.cpp.o"
  "CMakeFiles/bench_ablation_edge_gain.dir/bench_ablation_edge_gain.cpp.o.d"
  "bench_ablation_edge_gain"
  "bench_ablation_edge_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_edge_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
