# Empty dependencies file for bench_tcp_vs_icmp.
# This may be replaced when dependencies are built.
