file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp_vs_icmp.dir/bench_tcp_vs_icmp.cpp.o"
  "CMakeFiles/bench_tcp_vs_icmp.dir/bench_tcp_vs_icmp.cpp.o.d"
  "bench_tcp_vs_icmp"
  "bench_tcp_vs_icmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_vs_icmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
