file(REMOVE_RECURSE
  "CMakeFiles/bench_isp_diversity.dir/bench_isp_diversity.cpp.o"
  "CMakeFiles/bench_isp_diversity.dir/bench_isp_diversity.cpp.o.d"
  "bench_isp_diversity"
  "bench_isp_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isp_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
