# Empty dependencies file for bench_isp_diversity.
# This may be replaced when dependencies are built.
