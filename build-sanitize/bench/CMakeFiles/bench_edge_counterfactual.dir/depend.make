# Empty dependencies file for bench_edge_counterfactual.
# This may be replaced when dependencies are built.
