file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_counterfactual.dir/bench_edge_counterfactual.cpp.o"
  "CMakeFiles/bench_edge_counterfactual.dir/bench_edge_counterfactual.cpp.o.d"
  "bench_edge_counterfactual"
  "bench_edge_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
