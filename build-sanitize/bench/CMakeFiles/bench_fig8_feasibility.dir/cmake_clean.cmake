file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_feasibility.dir/bench_fig8_feasibility.cpp.o"
  "CMakeFiles/bench_fig8_feasibility.dir/bench_fig8_feasibility.cpp.o.d"
  "bench_fig8_feasibility"
  "bench_fig8_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
