# Empty dependencies file for bench_fig8_feasibility.
# This may be replaced when dependencies are built.
