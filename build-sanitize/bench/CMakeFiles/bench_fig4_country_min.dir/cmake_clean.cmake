file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_country_min.dir/bench_fig4_country_min.cpp.o"
  "CMakeFiles/bench_fig4_country_min.dir/bench_fig4_country_min.cpp.o.d"
  "bench_fig4_country_min"
  "bench_fig4_country_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_country_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
