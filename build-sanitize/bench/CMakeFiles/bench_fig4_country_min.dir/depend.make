# Empty dependencies file for bench_fig4_country_min.
# This may be replaced when dependencies are built.
