# Empty dependencies file for bench_micro_latency_model.
# This may be replaced when dependencies are built.
