file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_expansion.dir/bench_ablation_expansion.cpp.o"
  "CMakeFiles/bench_ablation_expansion.dir/bench_ablation_expansion.cpp.o.d"
  "bench_ablation_expansion"
  "bench_ablation_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
