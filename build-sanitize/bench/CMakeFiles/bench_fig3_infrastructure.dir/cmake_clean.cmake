file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_infrastructure.dir/bench_fig3_infrastructure.cpp.o"
  "CMakeFiles/bench_fig3_infrastructure.dir/bench_fig3_infrastructure.cpp.o.d"
  "bench_fig3_infrastructure"
  "bench_fig3_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
