# Empty dependencies file for bench_fig3_infrastructure.
# This may be replaced when dependencies are built.
