# Empty dependencies file for full_reproduction.
# This may be replaced when dependencies are built.
