file(REMOVE_RECURSE
  "CMakeFiles/full_reproduction.dir/full_reproduction.cpp.o"
  "CMakeFiles/full_reproduction.dir/full_reproduction.cpp.o.d"
  "full_reproduction"
  "full_reproduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
