file(REMOVE_RECURSE
  "CMakeFiles/cloud_expansion_study.dir/cloud_expansion_study.cpp.o"
  "CMakeFiles/cloud_expansion_study.dir/cloud_expansion_study.cpp.o.d"
  "cloud_expansion_study"
  "cloud_expansion_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_expansion_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
