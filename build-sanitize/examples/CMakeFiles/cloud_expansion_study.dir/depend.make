# Empty dependencies file for cloud_expansion_study.
# This may be replaced when dependencies are built.
