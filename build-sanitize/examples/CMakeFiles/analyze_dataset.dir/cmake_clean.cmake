file(REMOVE_RECURSE
  "CMakeFiles/analyze_dataset.dir/analyze_dataset.cpp.o"
  "CMakeFiles/analyze_dataset.dir/analyze_dataset.cpp.o.d"
  "analyze_dataset"
  "analyze_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
