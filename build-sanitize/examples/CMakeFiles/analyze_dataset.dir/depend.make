# Empty dependencies file for analyze_dataset.
# This may be replaced when dependencies are built.
