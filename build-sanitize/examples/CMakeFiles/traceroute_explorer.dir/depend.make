# Empty dependencies file for traceroute_explorer.
# This may be replaced when dependencies are built.
