file(REMOVE_RECURSE
  "CMakeFiles/traceroute_explorer.dir/traceroute_explorer.cpp.o"
  "CMakeFiles/traceroute_explorer.dir/traceroute_explorer.cpp.o.d"
  "traceroute_explorer"
  "traceroute_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceroute_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
