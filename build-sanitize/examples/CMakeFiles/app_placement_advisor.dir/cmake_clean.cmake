file(REMOVE_RECURSE
  "CMakeFiles/app_placement_advisor.dir/app_placement_advisor.cpp.o"
  "CMakeFiles/app_placement_advisor.dir/app_placement_advisor.cpp.o.d"
  "app_placement_advisor"
  "app_placement_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_placement_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
