# Empty dependencies file for app_placement_advisor.
# This may be replaced when dependencies are built.
