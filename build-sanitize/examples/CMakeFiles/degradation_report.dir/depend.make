# Empty dependencies file for degradation_report.
# This may be replaced when dependencies are built.
