file(REMOVE_RECURSE
  "CMakeFiles/degradation_report.dir/degradation_report.cpp.o"
  "CMakeFiles/degradation_report.dir/degradation_report.cpp.o.d"
  "degradation_report"
  "degradation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degradation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
