# Empty dependencies file for export_geojson.
# This may be replaced when dependencies are built.
