file(REMOVE_RECURSE
  "CMakeFiles/export_geojson.dir/export_geojson.cpp.o"
  "CMakeFiles/export_geojson.dir/export_geojson.cpp.o.d"
  "export_geojson"
  "export_geojson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_geojson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
