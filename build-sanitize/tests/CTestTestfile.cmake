# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-sanitize/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-sanitize/tests/test_stats[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_geo[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_topology[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_net[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_apps[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_atlas[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_faults[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_quality[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_trends[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_report[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_core_analysis[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_core_feasibility[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_whatif[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_segments[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_tcp[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_edge[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_ranktest[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_route[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_svg[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_config[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_crawler[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_selection_credits[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_model_properties[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_steering[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_isp[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_p2_quantile[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_integration[1]_include.cmake")
