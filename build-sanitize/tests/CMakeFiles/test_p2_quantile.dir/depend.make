# Empty dependencies file for test_p2_quantile.
# This may be replaced when dependencies are built.
