file(REMOVE_RECURSE
  "CMakeFiles/test_p2_quantile.dir/test_p2_quantile.cpp.o"
  "CMakeFiles/test_p2_quantile.dir/test_p2_quantile.cpp.o.d"
  "test_p2_quantile"
  "test_p2_quantile.pdb"
  "test_p2_quantile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p2_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
