file(REMOVE_RECURSE
  "CMakeFiles/test_core_analysis.dir/test_core_analysis.cpp.o"
  "CMakeFiles/test_core_analysis.dir/test_core_analysis.cpp.o.d"
  "test_core_analysis"
  "test_core_analysis.pdb"
  "test_core_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
