file(REMOVE_RECURSE
  "CMakeFiles/test_ranktest.dir/test_ranktest.cpp.o"
  "CMakeFiles/test_ranktest.dir/test_ranktest.cpp.o.d"
  "test_ranktest"
  "test_ranktest.pdb"
  "test_ranktest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranktest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
