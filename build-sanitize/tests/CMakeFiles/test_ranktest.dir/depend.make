# Empty dependencies file for test_ranktest.
# This may be replaced when dependencies are built.
