file(REMOVE_RECURSE
  "CMakeFiles/test_core_feasibility.dir/test_core_feasibility.cpp.o"
  "CMakeFiles/test_core_feasibility.dir/test_core_feasibility.cpp.o.d"
  "test_core_feasibility"
  "test_core_feasibility.pdb"
  "test_core_feasibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
