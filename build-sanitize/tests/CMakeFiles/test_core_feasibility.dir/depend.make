# Empty dependencies file for test_core_feasibility.
# This may be replaced when dependencies are built.
