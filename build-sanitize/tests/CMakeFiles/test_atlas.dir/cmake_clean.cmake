file(REMOVE_RECURSE
  "CMakeFiles/test_atlas.dir/test_atlas.cpp.o"
  "CMakeFiles/test_atlas.dir/test_atlas.cpp.o.d"
  "test_atlas"
  "test_atlas.pdb"
  "test_atlas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
