file(REMOVE_RECURSE
  "CMakeFiles/test_segments.dir/test_segments.cpp.o"
  "CMakeFiles/test_segments.dir/test_segments.cpp.o.d"
  "test_segments"
  "test_segments.pdb"
  "test_segments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
