file(REMOVE_RECURSE
  "CMakeFiles/test_selection_credits.dir/test_selection_credits.cpp.o"
  "CMakeFiles/test_selection_credits.dir/test_selection_credits.cpp.o.d"
  "test_selection_credits"
  "test_selection_credits.pdb"
  "test_selection_credits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
