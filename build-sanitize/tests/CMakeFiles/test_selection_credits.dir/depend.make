# Empty dependencies file for test_selection_credits.
# This may be replaced when dependencies are built.
