file(REMOVE_RECURSE
  "CMakeFiles/shears_core.dir/access_comparison.cpp.o"
  "CMakeFiles/shears_core.dir/access_comparison.cpp.o.d"
  "CMakeFiles/shears_core.dir/analysis.cpp.o"
  "CMakeFiles/shears_core.dir/analysis.cpp.o.d"
  "CMakeFiles/shears_core.dir/feasibility.cpp.o"
  "CMakeFiles/shears_core.dir/feasibility.cpp.o.d"
  "CMakeFiles/shears_core.dir/quality.cpp.o"
  "CMakeFiles/shears_core.dir/quality.cpp.o.d"
  "CMakeFiles/shears_core.dir/whatif.cpp.o"
  "CMakeFiles/shears_core.dir/whatif.cpp.o.d"
  "libshears_core.a"
  "libshears_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
