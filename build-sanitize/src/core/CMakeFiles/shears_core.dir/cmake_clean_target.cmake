file(REMOVE_RECURSE
  "libshears_core.a"
)
