# Empty dependencies file for shears_core.
# This may be replaced when dependencies are built.
