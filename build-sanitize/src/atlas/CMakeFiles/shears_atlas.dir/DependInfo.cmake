
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atlas/campaign.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/campaign.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/campaign.cpp.o.d"
  "/root/repo/src/atlas/credits.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/credits.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/credits.cpp.o.d"
  "/root/repo/src/atlas/isp.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/isp.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/isp.cpp.o.d"
  "/root/repo/src/atlas/measurement.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/measurement.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/measurement.cpp.o.d"
  "/root/repo/src/atlas/placement.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/placement.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/placement.cpp.o.d"
  "/root/repo/src/atlas/selection.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/selection.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/selection.cpp.o.d"
  "/root/repo/src/atlas/tags.cpp" "src/atlas/CMakeFiles/shears_atlas.dir/tags.cpp.o" "gcc" "src/atlas/CMakeFiles/shears_atlas.dir/tags.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/geo/CMakeFiles/shears_geo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/net/CMakeFiles/shears_net.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/topology/CMakeFiles/shears_topology.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/stats/CMakeFiles/shears_stats.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/faults/CMakeFiles/shears_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
