# Empty dependencies file for shears_atlas.
# This may be replaced when dependencies are built.
