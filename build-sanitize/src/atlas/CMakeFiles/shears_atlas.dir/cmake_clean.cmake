file(REMOVE_RECURSE
  "CMakeFiles/shears_atlas.dir/campaign.cpp.o"
  "CMakeFiles/shears_atlas.dir/campaign.cpp.o.d"
  "CMakeFiles/shears_atlas.dir/credits.cpp.o"
  "CMakeFiles/shears_atlas.dir/credits.cpp.o.d"
  "CMakeFiles/shears_atlas.dir/isp.cpp.o"
  "CMakeFiles/shears_atlas.dir/isp.cpp.o.d"
  "CMakeFiles/shears_atlas.dir/measurement.cpp.o"
  "CMakeFiles/shears_atlas.dir/measurement.cpp.o.d"
  "CMakeFiles/shears_atlas.dir/placement.cpp.o"
  "CMakeFiles/shears_atlas.dir/placement.cpp.o.d"
  "CMakeFiles/shears_atlas.dir/selection.cpp.o"
  "CMakeFiles/shears_atlas.dir/selection.cpp.o.d"
  "CMakeFiles/shears_atlas.dir/tags.cpp.o"
  "CMakeFiles/shears_atlas.dir/tags.cpp.o.d"
  "libshears_atlas.a"
  "libshears_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
