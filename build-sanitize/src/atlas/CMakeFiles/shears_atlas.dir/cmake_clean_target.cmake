file(REMOVE_RECURSE
  "libshears_atlas.a"
)
