# Empty dependencies file for shears_apps.
# This may be replaced when dependencies are built.
