file(REMOVE_RECURSE
  "libshears_apps.a"
)
