file(REMOVE_RECURSE
  "CMakeFiles/shears_apps.dir/catalog.cpp.o"
  "CMakeFiles/shears_apps.dir/catalog.cpp.o.d"
  "libshears_apps.a"
  "libshears_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
