file(REMOVE_RECURSE
  "CMakeFiles/shears_net.dir/access.cpp.o"
  "CMakeFiles/shears_net.dir/access.cpp.o.d"
  "CMakeFiles/shears_net.dir/latency_model.cpp.o"
  "CMakeFiles/shears_net.dir/latency_model.cpp.o.d"
  "CMakeFiles/shears_net.dir/path.cpp.o"
  "CMakeFiles/shears_net.dir/path.cpp.o.d"
  "CMakeFiles/shears_net.dir/segments.cpp.o"
  "CMakeFiles/shears_net.dir/segments.cpp.o.d"
  "CMakeFiles/shears_net.dir/tcp.cpp.o"
  "CMakeFiles/shears_net.dir/tcp.cpp.o.d"
  "libshears_net.a"
  "libshears_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
