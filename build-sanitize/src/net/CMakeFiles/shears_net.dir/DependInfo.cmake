
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/access.cpp" "src/net/CMakeFiles/shears_net.dir/access.cpp.o" "gcc" "src/net/CMakeFiles/shears_net.dir/access.cpp.o.d"
  "/root/repo/src/net/latency_model.cpp" "src/net/CMakeFiles/shears_net.dir/latency_model.cpp.o" "gcc" "src/net/CMakeFiles/shears_net.dir/latency_model.cpp.o.d"
  "/root/repo/src/net/path.cpp" "src/net/CMakeFiles/shears_net.dir/path.cpp.o" "gcc" "src/net/CMakeFiles/shears_net.dir/path.cpp.o.d"
  "/root/repo/src/net/segments.cpp" "src/net/CMakeFiles/shears_net.dir/segments.cpp.o" "gcc" "src/net/CMakeFiles/shears_net.dir/segments.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/shears_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/shears_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/geo/CMakeFiles/shears_geo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/topology/CMakeFiles/shears_topology.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/stats/CMakeFiles/shears_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
