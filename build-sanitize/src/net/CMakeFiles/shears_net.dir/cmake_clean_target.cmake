file(REMOVE_RECURSE
  "libshears_net.a"
)
