# Empty dependencies file for shears_net.
# This may be replaced when dependencies are built.
