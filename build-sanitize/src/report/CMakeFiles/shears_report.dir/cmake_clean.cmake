file(REMOVE_RECURSE
  "CMakeFiles/shears_report.dir/plot.cpp.o"
  "CMakeFiles/shears_report.dir/plot.cpp.o.d"
  "CMakeFiles/shears_report.dir/resilience.cpp.o"
  "CMakeFiles/shears_report.dir/resilience.cpp.o.d"
  "CMakeFiles/shears_report.dir/svg.cpp.o"
  "CMakeFiles/shears_report.dir/svg.cpp.o.d"
  "CMakeFiles/shears_report.dir/table.cpp.o"
  "CMakeFiles/shears_report.dir/table.cpp.o.d"
  "libshears_report.a"
  "libshears_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
