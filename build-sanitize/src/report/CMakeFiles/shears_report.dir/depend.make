# Empty dependencies file for shears_report.
# This may be replaced when dependencies are built.
