file(REMOVE_RECURSE
  "libshears_report.a"
)
