file(REMOVE_RECURSE
  "libshears_edge.a"
)
