# Empty dependencies file for shears_edge.
# This may be replaced when dependencies are built.
