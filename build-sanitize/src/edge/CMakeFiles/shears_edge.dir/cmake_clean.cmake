file(REMOVE_RECURSE
  "CMakeFiles/shears_edge.dir/deployment.cpp.o"
  "CMakeFiles/shears_edge.dir/deployment.cpp.o.d"
  "libshears_edge.a"
  "libshears_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
