# Empty dependencies file for shears_route.
# This may be replaced when dependencies are built.
