file(REMOVE_RECURSE
  "CMakeFiles/shears_route.dir/graph.cpp.o"
  "CMakeFiles/shears_route.dir/graph.cpp.o.d"
  "CMakeFiles/shears_route.dir/node_data.cpp.o"
  "CMakeFiles/shears_route.dir/node_data.cpp.o.d"
  "CMakeFiles/shears_route.dir/steering.cpp.o"
  "CMakeFiles/shears_route.dir/steering.cpp.o.d"
  "libshears_route.a"
  "libshears_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
