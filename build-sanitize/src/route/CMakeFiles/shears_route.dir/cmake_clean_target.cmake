file(REMOVE_RECURSE
  "libshears_route.a"
)
