
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/graph.cpp" "src/route/CMakeFiles/shears_route.dir/graph.cpp.o" "gcc" "src/route/CMakeFiles/shears_route.dir/graph.cpp.o.d"
  "/root/repo/src/route/node_data.cpp" "src/route/CMakeFiles/shears_route.dir/node_data.cpp.o" "gcc" "src/route/CMakeFiles/shears_route.dir/node_data.cpp.o.d"
  "/root/repo/src/route/steering.cpp" "src/route/CMakeFiles/shears_route.dir/steering.cpp.o" "gcc" "src/route/CMakeFiles/shears_route.dir/steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/geo/CMakeFiles/shears_geo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/net/CMakeFiles/shears_net.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/topology/CMakeFiles/shears_topology.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/stats/CMakeFiles/shears_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
