file(REMOVE_RECURSE
  "libshears_config.a"
)
