file(REMOVE_RECURSE
  "CMakeFiles/shears_config.dir/ini.cpp.o"
  "CMakeFiles/shears_config.dir/ini.cpp.o.d"
  "CMakeFiles/shears_config.dir/scenario.cpp.o"
  "CMakeFiles/shears_config.dir/scenario.cpp.o.d"
  "libshears_config.a"
  "libshears_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
