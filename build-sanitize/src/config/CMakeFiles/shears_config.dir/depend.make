# Empty dependencies file for shears_config.
# This may be replaced when dependencies are built.
