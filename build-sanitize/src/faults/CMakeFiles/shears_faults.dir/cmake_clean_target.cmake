file(REMOVE_RECURSE
  "libshears_faults.a"
)
