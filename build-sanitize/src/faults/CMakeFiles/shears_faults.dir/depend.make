# Empty dependencies file for shears_faults.
# This may be replaced when dependencies are built.
