file(REMOVE_RECURSE
  "CMakeFiles/shears_faults.dir/fault_schedule.cpp.o"
  "CMakeFiles/shears_faults.dir/fault_schedule.cpp.o.d"
  "CMakeFiles/shears_faults.dir/resilience.cpp.o"
  "CMakeFiles/shears_faults.dir/resilience.cpp.o.d"
  "libshears_faults.a"
  "libshears_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
