# Empty dependencies file for shears_stats.
# This may be replaced when dependencies are built.
