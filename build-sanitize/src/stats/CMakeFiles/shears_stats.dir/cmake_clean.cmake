file(REMOVE_RECURSE
  "CMakeFiles/shears_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/shears_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/shears_stats.dir/distributions.cpp.o"
  "CMakeFiles/shears_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/shears_stats.dir/ecdf.cpp.o"
  "CMakeFiles/shears_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/shears_stats.dir/histogram.cpp.o"
  "CMakeFiles/shears_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/shears_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/shears_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/shears_stats.dir/ranktest.cpp.o"
  "CMakeFiles/shears_stats.dir/ranktest.cpp.o.d"
  "CMakeFiles/shears_stats.dir/regression.cpp.o"
  "CMakeFiles/shears_stats.dir/regression.cpp.o.d"
  "CMakeFiles/shears_stats.dir/rng.cpp.o"
  "CMakeFiles/shears_stats.dir/rng.cpp.o.d"
  "CMakeFiles/shears_stats.dir/summary.cpp.o"
  "CMakeFiles/shears_stats.dir/summary.cpp.o.d"
  "libshears_stats.a"
  "libshears_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
