
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/shears_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/shears_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/shears_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/shears_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/p2_quantile.cpp" "src/stats/CMakeFiles/shears_stats.dir/p2_quantile.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/p2_quantile.cpp.o.d"
  "/root/repo/src/stats/ranktest.cpp" "src/stats/CMakeFiles/shears_stats.dir/ranktest.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/ranktest.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/shears_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/shears_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/shears_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/shears_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
