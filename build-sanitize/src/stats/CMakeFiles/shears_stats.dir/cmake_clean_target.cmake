file(REMOVE_RECURSE
  "libshears_stats.a"
)
