# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-sanitize/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("geo")
subdirs("topology")
subdirs("net")
subdirs("faults")
subdirs("apps")
subdirs("edge")
subdirs("route")
subdirs("config")
subdirs("atlas")
subdirs("trends")
subdirs("core")
subdirs("report")
