
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/region_data.cpp" "src/topology/CMakeFiles/shears_topology.dir/region_data.cpp.o" "gcc" "src/topology/CMakeFiles/shears_topology.dir/region_data.cpp.o.d"
  "/root/repo/src/topology/registry.cpp" "src/topology/CMakeFiles/shears_topology.dir/registry.cpp.o" "gcc" "src/topology/CMakeFiles/shears_topology.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/geo/CMakeFiles/shears_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
