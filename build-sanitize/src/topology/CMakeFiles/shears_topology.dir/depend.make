# Empty dependencies file for shears_topology.
# This may be replaced when dependencies are built.
