file(REMOVE_RECURSE
  "libshears_topology.a"
)
