file(REMOVE_RECURSE
  "CMakeFiles/shears_topology.dir/region_data.cpp.o"
  "CMakeFiles/shears_topology.dir/region_data.cpp.o.d"
  "CMakeFiles/shears_topology.dir/registry.cpp.o"
  "CMakeFiles/shears_topology.dir/registry.cpp.o.d"
  "libshears_topology.a"
  "libshears_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
