# Empty dependencies file for shears_geo.
# This may be replaced when dependencies are built.
