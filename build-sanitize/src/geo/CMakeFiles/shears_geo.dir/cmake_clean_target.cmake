file(REMOVE_RECURSE
  "libshears_geo.a"
)
