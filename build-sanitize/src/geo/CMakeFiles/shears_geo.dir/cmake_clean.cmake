file(REMOVE_RECURSE
  "CMakeFiles/shears_geo.dir/city_data.cpp.o"
  "CMakeFiles/shears_geo.dir/city_data.cpp.o.d"
  "CMakeFiles/shears_geo.dir/coordinates.cpp.o"
  "CMakeFiles/shears_geo.dir/coordinates.cpp.o.d"
  "CMakeFiles/shears_geo.dir/country_data.cpp.o"
  "CMakeFiles/shears_geo.dir/country_data.cpp.o.d"
  "libshears_geo.a"
  "libshears_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
