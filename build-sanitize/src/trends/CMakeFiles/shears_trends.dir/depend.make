# Empty dependencies file for shears_trends.
# This may be replaced when dependencies are built.
