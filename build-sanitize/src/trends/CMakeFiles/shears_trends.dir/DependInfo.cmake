
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trends/crawler.cpp" "src/trends/CMakeFiles/shears_trends.dir/crawler.cpp.o" "gcc" "src/trends/CMakeFiles/shears_trends.dir/crawler.cpp.o.d"
  "/root/repo/src/trends/trends.cpp" "src/trends/CMakeFiles/shears_trends.dir/trends.cpp.o" "gcc" "src/trends/CMakeFiles/shears_trends.dir/trends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/stats/CMakeFiles/shears_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
