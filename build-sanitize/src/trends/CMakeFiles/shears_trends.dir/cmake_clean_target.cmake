file(REMOVE_RECURSE
  "libshears_trends.a"
)
