file(REMOVE_RECURSE
  "CMakeFiles/shears_trends.dir/crawler.cpp.o"
  "CMakeFiles/shears_trends.dir/crawler.cpp.o.d"
  "CMakeFiles/shears_trends.dir/trends.cpp.o"
  "CMakeFiles/shears_trends.dir/trends.cpp.o.d"
  "libshears_trends.a"
  "libshears_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shears_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
